//! LO-FAT vs. software attestation overhead across the workload corpus (§6.1).
//!
//! ```text
//! cargo run --example overhead_comparison
//! ```
//!
//! For every workload in the catalogue the example runs three configurations —
//! un-attested, LO-FAT-attested and C-FLAT-style software-attested — and prints the
//! processor cycles of each.  LO-FAT's column always equals the un-attested one
//! (zero overhead, the paper's headline claim), while the software baseline's
//! overhead grows with the number of control-flow events.

use lofat::{attest_program, EngineConfig};
use lofat_cflat::CflatAttestor;
use lofat_rv32::Cpu;
use lofat_workloads::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "workload", "events", "baseline", "LO-FAT", "C-FLAT", "C-FLAT ovh"
    );
    println!("{}", "-".repeat(76));

    for workload in catalog::all() {
        let program = workload.program()?;
        let input = &workload.default_input;

        let load = |cpu: &mut Cpu| -> Result<(), Box<dyn std::error::Error>> {
            if !input.is_empty() {
                let addr = program.symbol("input").expect("input symbol");
                let bytes: Vec<u8> = input.iter().flat_map(|w| w.to_le_bytes()).collect();
                cpu.memory_mut().poke_bytes(addr, &bytes)?;
                if let Some(len) = program.symbol("input_len") {
                    cpu.memory_mut().poke_bytes(len, &(input.len() as u32).to_le_bytes())?;
                }
            }
            Ok(())
        };

        // Un-attested baseline.
        let mut cpu = Cpu::new(&program)?;
        load(&mut cpu)?;
        let baseline = cpu.run(10_000_000)?;

        // LO-FAT: attach the engine to the trace port; input-free path uses the
        // convenience helper, otherwise drive the CPU manually.
        let lofat_cycles = if input.is_empty() {
            attest_program(&program, EngineConfig::default(), 10_000_000)?.1.cycles
        } else {
            let mut engine = lofat::LofatEngine::for_program(&program, EngineConfig::default())?;
            let mut cpu = Cpu::new(&program)?;
            load(&mut cpu)?;
            let exit = cpu.run_traced(10_000_000, &mut engine)?;
            engine.finalize()?;
            exit.cycles
        };

        // C-FLAT-style software attestation.
        let mut cpu = Cpu::new(&program)?;
        load(&mut cpu)?;
        let cflat = CflatAttestor::new().attest_cpu(&mut cpu, 10_000_000)?;

        println!(
            "{:<16} {:>8} {:>12} {:>12} {:>12} {:>9.0}%",
            workload.name,
            cflat.events,
            baseline.cycles,
            lofat_cycles,
            cflat.instrumented_cycles(),
            cflat.overhead_ratio() * 100.0
        );
    }
    println!();
    println!("LO-FAT == baseline on every row: the engine observes the trace port in parallel");
    println!("and never stalls the pipeline; the software baseline pays per control-flow event.");
    Ok(())
}

//! Attack-detection matrix: all three run-time attack classes of Fig. 1.
//!
//! ```text
//! cargo run --example attack_detection
//! ```
//!
//! Runs every attack class against its target workload and prints whether the
//! verifier detects it — reproducing §6.3's security argument:
//!
//! * class ① non-control-data attack (decision variable corruption)  → detected
//! * class ② loop-counter manipulation                               → detected
//! * class ③ code-pointer overwrite (table hijack and ROP-style)     → detected
//! * pure data-oriented manipulation (no control-flow change)        → not detected

use lofat::protocol::run_attestation_with_adversary;
use lofat::{LofatError, Prover, Verifier};
use lofat_crypto::DeviceKey;
use lofat_workloads::attack::{self, Fault};
use lofat_workloads::catalog;

struct Scenario {
    name: &'static str,
    workload: &'static str,
    input: Vec<u32>,
    expect_detected: bool,
    build_fault: Box<dyn Fn(&lofat_rv32::Program) -> Fault>,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "① non-control-data (decision variable)",
            workload: "fig4-loop",
            input: vec![4],
            expect_detected: true,
            build_fault: Box::new(|program| {
                let input = program.symbol("input").expect("input");
                attack::non_control_data_attack(input, 9)
            }),
        },
        Scenario {
            name: "② loop-counter manipulation (syringe pump)",
            workload: "syringe-pump",
            input: vec![3],
            expect_detected: true,
            build_fault: Box::new(|program| {
                let input = program.symbol("input").expect("input");
                attack::loop_counter_attack(input, 40)
            }),
        },
        Scenario {
            name: "③ code-pointer overwrite (dispatch table)",
            workload: "dispatch",
            input: vec![0, 0, 2, 1],
            expect_detected: true,
            build_fault: Box::new(|program| {
                let table = program.symbol("table").expect("table");
                let clear = program.symbol("op_clear").expect("op_clear");
                attack::code_pointer_attack(table, 0, clear)
            }),
        },
        Scenario {
            name: "③ code-pointer overwrite (ROP-style return hijack)",
            workload: "return-victim",
            input: vec![21],
            expect_detected: true,
            build_fault: Box::new(|program| {
                let process = program.symbol("process").expect("process");
                let privileged = program.symbol("privileged").expect("privileged");
                attack::return_address_attack(process + 8, 12, privileged)
            }),
        },
        Scenario {
            name: "pure data-oriented manipulation (no CF change)",
            workload: "syringe-pump",
            input: vec![3],
            expect_detected: false,
            build_fault: Box::new(|program| {
                let pulses = program.symbol("motor_pulses").expect("motor_pulses");
                attack::data_only_attack(pulses, 9999)
            }),
        },
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{:<55} {:<12} {:<12}", "attack", "expected", "observed");
    println!("{}", "-".repeat(82));
    for scenario in scenarios() {
        let workload = catalog::by_name(scenario.workload).expect("workload");
        let program = workload.program()?;
        let key = DeviceKey::from_seed("attack-demo-device");
        let mut prover = Prover::new(program.clone(), workload.name, key.clone());
        let mut verifier = Verifier::new(program.clone(), workload.name, key.verification_key())?;
        let mut fault = (scenario.build_fault)(&program);

        let observed = match run_attestation_with_adversary(
            &mut verifier,
            &mut prover,
            scenario.input.clone(),
            &mut fault,
        ) {
            Ok(_) => "accepted",
            Err(LofatError::Rejected(_)) => "REJECTED",
            Err(other) => return Err(other.into()),
        };
        let expected = if scenario.expect_detected { "REJECTED" } else { "accepted" };
        let marker = if observed == expected { "✓" } else { "✗" };
        println!("{:<55} {:<12} {:<12} {marker}", scenario.name, expected, observed);
    }
    Ok(())
}

//! Publicly verifiable attestation reports and precomputed measurement databases.
//!
//! ```text
//! cargo run --example public_verifiability
//! ```
//!
//! The paper's protocol uses a generic `sign(·; sk)` primitive.  This example shows
//! two deployment variants built on the reproduction's crypto substrate:
//!
//! 1. a **hash-based one-time signature** (Lamport over SHA-3) so that *any* party —
//!    not just the holder of the shared device key — can check the report's
//!    authenticity; and
//! 2. a **measurement database**: the verifier precomputes the expected
//!    (authenticator, metadata) pairs for the device's command set offline and later
//!    validates reports by lookup, without re-running the simulator.

use lofat::{EngineConfig, MeasurementDatabase, Prover, Verifier};
use lofat_crypto::{DeviceKey, LamportKeyPair, Nonce, SignatureVerifier, Signer};
use lofat_workloads::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = catalog::by_name("syringe-pump").expect("catalogue entry");
    let program = workload.program()?;

    // ----- variant 1: publicly verifiable report signature --------------------------
    // The device additionally holds a Lamport one-time key; its public key is
    // published (e.g. in the device certificate).
    let device_key = DeviceKey::from_seed("pump-device");
    let mut prover = Prover::new(program.clone(), workload.name, device_key.clone());
    let mut one_time_key = LamportKeyPair::from_seed(b"pump-device-ots-key-001");
    let public_key = one_time_key.public_key();

    let nonce = Nonce::from_counter(42);
    let run = prover.attest(&[3], nonce)?;
    // Sign the very same payload the HMAC covers, but with the one-time key.
    let public_signature = one_time_key.sign(&run.report.payload())?;
    println!("one-time (Lamport) signature:");
    println!("  payload bytes   : {}", run.report.payload().len());
    println!("  signature bytes : {}", public_signature.len());
    println!(
        "  third-party check: {}",
        if public_key.verify(&run.report.payload(), &public_signature).is_ok() {
            "VALID"
        } else {
            "INVALID"
        }
    );
    // A second signature with the same one-time key is refused.
    println!(
        "  key reuse        : {}",
        match one_time_key.sign(b"another report") {
            Err(_) => "rejected (one-time key already used)",
            Ok(_) => "unexpectedly allowed",
        }
    );

    // ----- variant 2: measurement database ------------------------------------------
    let verifier = Verifier::new(program, workload.name, device_key.verification_key())?;
    let command_set: Vec<Vec<u32>> = (1..=10u32).map(|units| vec![units]).collect();
    let database = MeasurementDatabase::build(&verifier, EngineConfig::default(), command_set)?;
    println!();
    println!("measurement database:");
    println!("  precomputed entries : {}", database.len());

    let run = prover.attest(&[7], Nonce::from_counter(43))?;
    match database.check(&[7], &run.report) {
        Ok(reference) => println!(
            "  lookup for input 7  : MATCH (expected result {} units dispensed)",
            reference.expected_result
        ),
        Err(e) => println!("  lookup for input 7  : MISMATCH ({e})"),
    }
    // A report for a different command does not match the stored reference.
    let other = prover.attest(&[9], Nonce::from_counter(44))?;
    match database.check(&[7], &other.report) {
        Ok(_) => println!("  cross-check          : unexpectedly matched"),
        Err(_) => println!(
            "  cross-check          : report for input 9 correctly rejected against reference 7"
        ),
    }
    Ok(())
}

//! The paper's motivating scenario: attesting a syringe-pump controller.
//!
//! ```text
//! cargo run --example syringe_pump
//! ```
//!
//! A medical syringe pump dispenses the requested number of units by pulsing a motor
//! in a nested loop.  A loop-counter manipulation (attack class ② of Fig. 1) makes
//! the pump dispense far more liquid than requested — a purely data-driven attack
//! that static (binary) attestation cannot see.  LO-FAT's loop metadata records the
//! iteration counts, so the verifier detects the deviation.

use lofat::protocol::{run_attestation, run_attestation_with_adversary};
use lofat::{LofatError, Prover, Verifier};
use lofat_crypto::DeviceKey;
use lofat_workloads::attack;
use lofat_workloads::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = catalog::by_name("syringe-pump").expect("catalogue entry");
    let program = workload.program()?;
    let device_key = DeviceKey::from_seed("syringe-pump-device");

    let mut prover = Prover::new(program.clone(), workload.name, device_key.clone());
    let mut verifier =
        Verifier::new(program.clone(), workload.name, device_key.verification_key())?;

    // --- Benign run: the clinician requests 3 units. --------------------------------
    let outcome = run_attestation(&mut verifier, &mut prover, vec![3])?;
    println!("benign run:");
    println!("  dispensed units          : {}", outcome.prover_run.exit.register_a0);
    println!("  loop records in metadata : {}", outcome.prover_run.report.metadata.loop_count());
    println!(
        "  total loop iterations    : {}",
        outcome.prover_run.report.metadata.total_iterations()
    );
    println!("  verdict                  : ACCEPTED");

    // --- Attack: the adversary rewrites the requested volume in memory. -------------
    let input_addr = program.symbol("input").expect("input symbol");
    let mut fault = attack::loop_counter_attack(input_addr, 50);
    println!();
    println!("loop-counter attack (requested 3, adversary forces 50):");
    match run_attestation_with_adversary(&mut verifier, &mut prover, vec![3], &mut fault) {
        Ok(_) => println!("  verdict                  : ACCEPTED (unexpected!)"),
        Err(LofatError::Rejected(reason)) => {
            println!("  verdict                  : REJECTED — {reason}");
        }
        Err(other) => return Err(other.into()),
    }

    // --- For contrast: a pure data-only manipulation is not detected. ---------------
    let pulses_addr = program.symbol("motor_pulses").expect("motor_pulses symbol");
    let mut fault = attack::data_only_attack(pulses_addr, 9999);
    println!();
    println!("data-only attack (corrupting the pulse log, control flow unchanged):");
    match run_attestation_with_adversary(&mut verifier, &mut prover, vec![3], &mut fault) {
        Ok(_) => println!(
            "  verdict                  : ACCEPTED — control-flow attestation cannot see it (paper §3)"
        ),
        Err(LofatError::Rejected(reason)) => println!("  verdict                  : REJECTED — {reason}"),
        Err(other) => return Err(other.into()),
    }
    Ok(())
}

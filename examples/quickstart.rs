//! Quickstart: attest a small embedded program end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The example walks through the full Fig. 2 protocol of the paper: the verifier
//! derives the CFG offline, issues a challenge (input + nonce), the prover executes
//! the program under the LO-FAT engine, signs the measurement, and the verifier
//! checks signature, loop-path plausibility and the golden-replay measurement.

use lofat::protocol::run_attestation;
use lofat::{Prover, Verifier};
use lofat_crypto::DeviceKey;
use lofat_rv32::asm::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small program: sum the numbers 1..=input[0] with a loop.
    let program = assemble(
        r#"
        .data
        input:
            .space 8
        .text
        main:
            la   t0, input
            lw   t1, 0(t0)       # n
            li   a0, 0
            beqz t1, done
        sum_loop:
            add  a0, a0, t1
            addi t1, t1, -1
            bnez t1, sum_loop
        done:
            ecall
        "#,
    )?;

    // Device provisioning: the prover holds the device key in a hardware-protected
    // register; the verifier holds the matching verification key.
    let device_key = DeviceKey::from_seed("quickstart-device");
    let mut prover = Prover::new(program.clone(), "sum-1-to-n", device_key.clone());
    let mut verifier = Verifier::new(program, "sum-1-to-n", device_key.verification_key())?;

    // One challenge-response round trip with input n = 10.
    let outcome = run_attestation(&mut verifier, &mut prover, vec![10])?;

    let stats = &outcome.prover_run.stats;
    let report = &outcome.prover_run.report;
    println!("program result (a0)        : {}", outcome.prover_run.exit.register_a0);
    println!("CPU cycles                 : {}", outcome.prover_run.exit.cycles);
    println!(
        "processor overhead         : {} cycles (LO-FAT observes in parallel)",
        stats.processor_overhead_cycles
    );
    println!("control-flow events        : {}", stats.branch_events);
    println!("loops tracked              : {}", stats.loops_entered);
    println!("iterations compressed      : {}", stats.iterations_counted);
    println!("pairs hashed / compressed  : {} / {}", stats.pairs_hashed, stats.pairs_compressed);
    println!("engine latency (internal)  : {} cycles", stats.internal_latency_cycles);
    println!("authenticator A            : {}", report.authenticator);
    println!(
        "metadata L                 : {} loop record(s), {} bytes",
        report.metadata.loop_count(),
        report.metadata.size_bytes()
    );
    println!("report wire size           : {} bytes", report.wire_size());
    println!(
        "verifier verdict           : ACCEPTED (replay a0 = {})",
        outcome.verdict.replay_exit.register_a0
    );
    Ok(())
}

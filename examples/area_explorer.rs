//! Area/memory design-space explorer (§5.2, §6.2).
//!
//! ```text
//! cargo run --example area_explorer
//! ```
//!
//! Sweeps the configurable LO-FAT parameters — ℓ (branches per loop path), n (bits
//! per indirect-branch target) and the nested-loop capacity — and prints the
//! resulting on-chip memory, BRAM count, logic overhead and clock estimate from the
//! analytical area model.  The paper's prototype point (ℓ = 16, n = 4, depth 3)
//! reproduces the reported ≈1.5 Mbit / 49 BRAMs / ≈20 % logic / 80 MHz figures.

use lofat::{AreaModel, EngineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = AreaModel::new();

    println!("sweep of ℓ (branches per loop path), n = 4, depth = 3");
    println!(
        "{:>4} {:>14} {:>12} {:>12} {:>10} {:>9}",
        "ℓ", "bits/loop", "total bits", "BRAMs", "logic", "Fmax"
    );
    for max_path_bits in [8u32, 10, 12, 14, 16, 18] {
        let config = EngineConfig::builder().max_path_bits(max_path_bits).build()?;
        let estimate = model.estimate(&config);
        println!(
            "{:>4} {:>14} {:>12} {:>12} {:>9.1}% {:>7.0}MHz",
            max_path_bits,
            estimate.path_memory_bits_per_loop,
            estimate.total_loop_memory_bits,
            estimate.total_brams,
            estimate.logic_overhead * 100.0,
            estimate.max_clock_mhz,
        );
    }

    println!();
    println!("sweep of nested-loop capacity, ℓ = 16, n = 4");
    println!("{:>6} {:>12} {:>12} {:>10}", "depth", "total bits", "BRAMs", "logic");
    for depth in 1..=4usize {
        let config = EngineConfig::builder().max_nesting_depth(depth).build()?;
        let estimate = model.estimate(&config);
        println!(
            "{:>6} {:>12} {:>12} {:>9.1}%",
            depth,
            estimate.total_loop_memory_bits,
            estimate.total_brams,
            estimate.logic_overhead * 100.0,
        );
    }

    println!();
    let paper = model.estimate(&EngineConfig::paper_prototype());
    println!("paper prototype (ℓ = 16, n = 4, depth 3):");
    println!("  loop memory      : {} bits (paper: ≈1.5 Mbit)", paper.total_loop_memory_bits);
    println!("  block RAMs       : {} (paper: 49 × 36 Kbit)", paper.total_brams);
    println!("  logic overhead   : {:.0}% (paper: ≈20 %)", paper.logic_overhead * 100.0);
    println!(
        "  registers / LUTs : {:.0}% / {:.0}% (paper: 4 % / 6 %)",
        paper.register_utilisation * 100.0,
        paper.lut_utilisation * 100.0
    );
    println!(
        "  max clock        : {:.0} MHz (paper: 80 MHz, 150 MHz hash engine)",
        paper.max_clock_mhz
    );
    Ok(())
}

//! Length-prefixed framing of [`lofat::wire::Envelope`] bytes over a stream.
//!
//! TCP is a byte stream; the envelope codec wants discrete byte strings.  The
//! frame layer delimits them with a 4-byte little-endian payload length:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length n (little-endian u32)
//! 4       n     payload: one encoded `Envelope`
//! ```
//!
//! Properties the rest of the crate relies on:
//!
//! * **Partial reads and short writes are handled here.**  [`read_frame`]
//!   loops until the frame is complete (or the peer closes / the socket
//!   deadline fires); [`write_frame`] uses `write_all`.
//! * **Hostile length prefixes cannot allocate.**  A length above the
//!   configured maximum is rejected *before* any buffer is sized from it
//!   ([`NetError::FrameTooLarge`]) — an attacker announcing a 4 GiB frame
//!   costs the server 4 bytes of reading, not 4 GiB of memory.
//! * **Clean close is distinguishable from truncation.**  End-of-stream on a
//!   frame boundary returns `Ok(None)`; end-of-stream inside a frame is
//!   [`NetError::ClosedMidFrame`].

use crate::error::NetError;
use std::io::{ErrorKind, Read, Write};

/// Size of the frame header (the payload length prefix).
pub const FRAME_HEADER_BYTES: usize = 4;

/// Default maximum payload accepted per frame (1 MiB — a whole evidence
/// envelope for the largest catalogue workload is a few KiB).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Writes one frame (length prefix + payload), handling short writes.
///
/// # Errors
///
/// Returns [`NetError::FrameTooLarge`] if `payload` exceeds `max_bytes` (the
/// local maximum — never put a frame on the wire the peer's mirror-image
/// limit would refuse) and [`NetError::Io`]/[`NetError::Timeout`] on socket
/// failures.
pub fn write_frame(
    writer: &mut impl Write,
    payload: &[u8],
    max_bytes: usize,
) -> Result<(), NetError> {
    if payload.len() > max_bytes {
        return Err(NetError::FrameTooLarge { len: payload.len(), max: max_bytes });
    }
    let len = u32::try_from(payload.len())
        .map_err(|_| NetError::FrameTooLarge { len: payload.len(), max: max_bytes })?;
    // One buffer, one write: header and payload must not go out as two tiny
    // packets (a Nagle-delayed second packet costs a delayed-ACK round trip
    // per frame on platforms that pair the two — ~40 ms of pure idle).
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    writer
        .write_all(&frame)
        .and_then(|()| writer.flush())
        .map_err(|e| NetError::from_io(e, "writing a frame"))
}

/// Reads one frame's payload, handling partial reads.
///
/// Returns `Ok(None)` when the peer closed cleanly on a frame boundary.
///
/// # Errors
///
/// Returns [`NetError::FrameTooLarge`] for a hostile length prefix (before
/// allocating), [`NetError::ClosedMidFrame`] when the stream ends inside a
/// frame, and [`NetError::Timeout`]/[`NetError::Io`] for socket failures.
pub fn read_frame(reader: &mut impl Read, max_bytes: usize) -> Result<Option<Vec<u8>>, NetError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    match read_exact_or_eof(reader, &mut header)? {
        Progress::CleanEof => return Ok(None),
        Progress::Partial(got) => {
            return Err(NetError::ClosedMidFrame { got, wanted: FRAME_HEADER_BYTES });
        }
        Progress::Complete => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max_bytes {
        return Err(NetError::FrameTooLarge { len, max: max_bytes });
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(reader, &mut payload)? {
        Progress::Complete => Ok(Some(payload)),
        Progress::CleanEof if len == 0 => Ok(Some(payload)),
        Progress::CleanEof => Err(NetError::ClosedMidFrame { got: 0, wanted: len }),
        Progress::Partial(got) => Err(NetError::ClosedMidFrame { got, wanted: len }),
    }
}

enum Progress {
    /// The buffer was filled.
    Complete,
    /// The stream ended before the first byte.
    CleanEof,
    /// The stream ended after `0 < n < buf.len()` bytes.
    Partial(usize),
}

/// Like `read_exact`, but reports *how far* the stream got before ending, so
/// the caller can tell a clean close from a truncated frame.
fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> Result<Progress, NetError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Progress::CleanEof
                } else {
                    Progress::Partial(filled)
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::from_io(e, "reading a frame")),
        }
    }
    Ok(Progress::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(payload);
        bytes
    }

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello", 64).unwrap();
        write_frame(&mut wire, b"", 64).unwrap();
        let mut reader = Cursor::new(wire);
        assert_eq!(read_frame(&mut reader, 64).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut reader, 64).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut reader, 64).unwrap(), None, "clean EOF on the boundary");
    }

    /// A reader that hands out one byte per call: the loop must assemble the
    /// frame from arbitrarily small reads.
    struct OneByte(Cursor<Vec<u8>>);
    impl Read for OneByte {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let take = buf.len().min(1);
            self.0.read(&mut buf[..take])
        }
    }

    #[test]
    fn partial_reads_are_assembled() {
        let mut reader = OneByte(Cursor::new(frame(b"stuttered")));
        assert_eq!(read_frame(&mut reader, 64).unwrap(), Some(b"stuttered".to_vec()));
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut wire = u32::MAX.to_le_bytes().to_vec();
        wire.extend_from_slice(b"body never arrives");
        let err = read_frame(&mut Cursor::new(wire), 1 << 20).unwrap_err();
        assert!(matches!(err, NetError::FrameTooLarge { len, .. } if len == u32::MAX as usize));
    }

    #[test]
    fn truncation_is_distinguished_from_clean_close() {
        // Header announces 10 bytes, only 3 arrive.
        let mut wire = 10u32.to_le_bytes().to_vec();
        wire.extend_from_slice(b"abc");
        let err = read_frame(&mut Cursor::new(wire), 64).unwrap_err();
        assert!(matches!(err, NetError::ClosedMidFrame { got: 3, wanted: 10 }));

        // The header itself is cut short.
        let err = read_frame(&mut Cursor::new(vec![7u8, 0]), 64).unwrap_err();
        assert!(matches!(err, NetError::ClosedMidFrame { got: 2, wanted: FRAME_HEADER_BYTES }));
    }

    #[test]
    fn writes_refuse_frames_the_peer_would_drop() {
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, &[0u8; 65], 64).unwrap_err();
        assert!(matches!(err, NetError::FrameTooLarge { len: 65, max: 64 }));
        assert!(wire.is_empty(), "nothing was put on the wire");
    }
}

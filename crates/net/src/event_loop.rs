//! `EventLoopServer` — the readiness-driven transport: 10k+ concurrent
//! connections on one event-loop thread.
//!
//! The blocking [`crate::VerifierServer`] spends a thread (and its stack) per
//! connection — fine for hundreds of devices, not for the long tail of a
//! production attestation fleet where most connections are idle most of the
//! time.  This server holds every connection in a single epoll-driven loop:
//!
//! * **nonblocking accept** with the same bounded-connection discipline (past
//!   `max_connections` the listener is deregistered until a slot frees);
//! * **per-connection [`Connection`] machines** — the *same* sans-I/O state
//!   machine the blocking transport drives, so framing, session
//!   multiplexing, close reasons and accounting are shared by construction,
//!   and `tests/e14_network.rs` proves both transports byte-identical
//!   against the in-process path;
//! * **write-interest management**: replies are written greedily; when the
//!   socket refuses bytes the connection's staged output waits for
//!   `EPOLLOUT`, so a slow reader backpressures into its own buffer instead
//!   of blocking the loop;
//! * **a deadline wheel** (256 slots × 25 ms) enforcing the
//!   [`NetLimits::read_timeout`] inactivity deadline and
//!   [`NetLimits::write_timeout`] stall deadline lazily — slow-loris
//!   connections are swept in O(due) per tick, not O(connections);
//! * **verification off-loop**: evidence frames are submitted to the
//!   [`ParallelVerifier`] pool; a completion-pump thread awaits tickets in
//!   submission order and hands finished verdicts back to the loop through a
//!   wake channel.  Each connection keeps an ordered reply queue, so
//!   pipelined frames are answered strictly in arrival order even though
//!   verification itself is parallel;
//! * **graceful drain on shutdown**: accepting stops, reads stop, in-flight
//!   verdicts are delivered and staged replies flushed (bounded by the write
//!   deadline) before connections close.
//!
//! The epoll interface is hand-rolled over three `extern "C"` syscalls (the
//! workspace has no crates.io access); on non-Linux hosts the same public
//! API is served by delegating to the blocking transport, so portable code
//! can default to `EventLoopServer` everywhere.
//!
//! # Example
//!
//! ```
//! use lofat::service::{ServiceConfig, VerifierService};
//! use lofat::{EngineConfig, MeasurementDatabase, Prover, Verifier};
//! use lofat_crypto::DeviceKey;
//! use lofat_net::{EventLoopServer, ProverClient, ServerConfig};
//! use lofat_rv32::asm::assemble;
//! use std::sync::Arc;
//!
//! let program = assemble(
//!     ".text\nmain:\n    li t0, 4\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ecall\n",
//! )?;
//! let key = DeviceKey::from_seed("fleet");
//! let mut prover = Prover::new(program.clone(), "demo", key.clone());
//! let verifier = Verifier::new(program, "demo", key.verification_key())?;
//! let db = MeasurementDatabase::build(&verifier, EngineConfig::default(), vec![vec![]])?;
//! let service = Arc::new(VerifierService::new(
//!     db,
//!     key.verification_key(),
//!     ServiceConfig::default(),
//! ));
//!
//! // Same config type, same client — only the transport differs.
//! let server =
//!     EventLoopServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())?;
//! let mut client = ProverClient::connect(server.local_addr())?;
//! let outcome = client.attest(&mut prover, vec![])?;
//! assert!(outcome.verdict.accepted);
//! drop(client);
//! server.shutdown();
//! assert_eq!(service.stats().accepted, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#[cfg(target_os = "linux")]
use crate::conn::{
    session_limit_refusal, session_request_reply, Admission, CloseReason, Connection,
};
use crate::error::NetError;
#[cfg(target_os = "linux")]
use crate::limits::NetLimits;
#[cfg(target_os = "linux")]
use crate::server::EventLog;
use crate::server::ServerConfig;
#[cfg(not(target_os = "linux"))]
use crate::server::VerifierServer;
#[cfg(target_os = "linux")]
use lofat::pool::{ParallelVerifier, VerdictTicket};
#[cfg(target_os = "linux")]
use lofat::service::ServiceError;
use lofat::service::VerifierService;
#[cfg(target_os = "linux")]
use lofat::wire::{Envelope, Message, SessionId};
#[cfg(target_os = "linux")]
use std::collections::{HashMap, VecDeque};
#[cfg(target_os = "linux")]
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, ToSocketAddrs};
#[cfg(target_os = "linux")]
use std::net::{TcpListener, TcpStream};
#[cfg(target_os = "linux")]
use std::os::fd::AsRawFd;
#[cfg(target_os = "linux")]
use std::os::unix::net::UnixStream;
#[cfg(target_os = "linux")]
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(target_os = "linux"))]
use std::sync::Arc;
#[cfg(target_os = "linux")]
use std::sync::{mpsc, Arc, Mutex};
#[cfg(target_os = "linux")]
use std::thread::JoinHandle;
#[cfg(target_os = "linux")]
use std::time::{Duration, Instant};

/// Raises this process's soft open-file limit to at least `target`
/// descriptors (needed to *hold* 10k+ sockets, not just accept them) and
/// returns the resulting soft limit.  Raising beyond the hard limit needs
/// privileges; on failure the current limit is returned unchanged, so
/// callers clamp their connection budget to the return value.  On platforms
/// without `setrlimit` the limit is reported as unbounded.
#[must_use]
pub fn raise_nofile_limit(target: u64) -> u64 {
    rlimit::raise_nofile(target)
}

#[cfg(unix)]
mod rlimit {
    //! `getrlimit`/`setrlimit` over `RLIMIT_NOFILE`, declared directly (no
    //! crates.io access) — the only other unsafe code in the crate is the
    //! epoll shim below, and both are confined to their sys modules.
    #![allow(unsafe_code)]

    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;

    #[repr(C)]
    struct RLimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    pub(super) fn raise_nofile(target: u64) -> u64 {
        let mut current = RLimit { rlim_cur: 0, rlim_max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut current) } != 0 {
            return 0;
        }
        if current.rlim_cur >= target {
            return current.rlim_cur;
        }
        // First try raising both limits (works for privileged processes),
        // then settle for the hard limit.
        for wanted in [
            RLimit { rlim_cur: target, rlim_max: target.max(current.rlim_max) },
            RLimit { rlim_cur: target.min(current.rlim_max), rlim_max: current.rlim_max },
        ] {
            if unsafe { setrlimit(RLIMIT_NOFILE, &wanted) } == 0 {
                return wanted.rlim_cur;
            }
        }
        current.rlim_cur
    }
}

#[cfg(not(unix))]
mod rlimit {
    pub(super) fn raise_nofile(_target: u64) -> u64 {
        u64::MAX
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! The epoll surface, declared directly against the C ABI (no crates.io
    //! access).  Three syscalls, one `#[repr(C)]` struct; the epoll
    //! descriptor is an [`OwnedFd`] so it closes on drop.
    #![allow(unsafe_code)]

    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

    /// Readable (or a peer on the kernel accept queue).
    pub const EPOLLIN: u32 = 0x001;
    /// Writable without blocking.
    pub const EPOLLOUT: u32 = 0x004;
    /// Error condition (delivered even when not requested).
    pub const EPOLLERR: u32 = 0x008;
    /// Hang-up (delivered even when not requested).
    pub const EPOLLHUP: u32 = 0x010;
    /// Peer shut down its write half (half-close detection).
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o200_0000;

    /// One readiness event.  x86 keeps the kernel's 12-byte packed layout.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// Readiness bits (`EPOLL*`).
        pub events: u32,
        /// The caller's token for the registered descriptor.
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    /// An owned epoll instance.
    pub struct Epoll {
        fd: OwnedFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 has no memory preconditions; the returned
            // descriptor (checked valid) is owned exactly once.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `fd` is a freshly created, valid descriptor we own.
            Ok(Self { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
        }

        fn ctl(&self, op: i32, fd: RawFd, event: *mut EpollEvent) -> io::Result<()> {
            // SAFETY: `event` is either null (DEL) or points to a live
            // EpollEvent on the caller's stack for the duration of the call.
            if unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, event) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            let mut event = EpollEvent { events, data: token };
            self.ctl(EPOLL_CTL_ADD, fd, &mut event)
        }

        pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            let mut event = EpollEvent { events, data: token };
            self.ctl(EPOLL_CTL_MOD, fd, &mut event)
        }

        pub fn del(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, std::ptr::null_mut())
        }

        /// Waits for readiness, retrying on `EINTR`; returns the number of
        /// events filled at the front of `events`.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                // SAFETY: `events` is a live, writable slice; maxevents is
                // its exact length.
                let rc = unsafe {
                    epoll_wait(
                        self.fd.as_raw_fd(),
                        events.as_mut_ptr(),
                        i32::try_from(events.len()).unwrap_or(i32::MAX),
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let error = io::Error::last_os_error();
                if error.kind() != io::ErrorKind::Interrupted {
                    return Err(error);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Linux: the real event loop.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
const TOKEN_LISTENER: u64 = u64::MAX;
#[cfg(target_os = "linux")]
const TOKEN_WAKE: u64 = u64::MAX - 1;
#[cfg(target_os = "linux")]
const WHEEL_SLOTS: usize = 256;
#[cfg(target_os = "linux")]
const WHEEL_GRANULARITY_MS: u64 = 25;
#[cfg(target_os = "linux")]
const READ_CHUNK: usize = 16 * 1024;
#[cfg(target_os = "linux")]
const DEFAULT_DRAIN_CAP: Duration = Duration::from_secs(5);

/// A verifier service on a TCP socket, serving every connection from one
/// readiness-driven loop thread (see the [module docs](self)).
///
/// The public surface is identical to the blocking
/// [`crate::VerifierServer`] — same [`ServerConfig`], same accessors, same
/// graceful [`EventLoopServer::shutdown`] — so the two transports are
/// drop-in replacements for each other.  On non-Linux hosts this type
/// delegates to the blocking transport behind the same API.
#[cfg(target_os = "linux")]
pub struct EventLoopServer {
    shared: Arc<LoopShared>,
    local_addr: SocketAddr,
    driver: Option<JoinHandle<()>>,
}

/// A verdict reply as the pool produces it (or the error it died with).
#[cfg(target_os = "linux")]
type Reply = Result<Vec<u8>, ServiceError>;

#[cfg(target_os = "linux")]
struct LoopShared {
    service: Arc<VerifierService>,
    log: EventLog,
    shutting_down: AtomicBool,
    connections_served: AtomicU64,
    frames_served: AtomicU64,
    active: AtomicUsize,
    /// Finished verdicts from the pump thread: `(connection, seq, reply)`.
    completed: Mutex<Vec<(u64, u64, Reply)>>,
    wake_tx: Mutex<UnixStream>,
}

#[cfg(target_os = "linux")]
impl LoopShared {
    fn wake(&self) {
        // Recover the sender even if a waker panicked mid-write: the stream
        // handle itself is still coherent, and losing the wake channel would
        // leave completed verdicts sitting until the next deadline tick.
        let mut tx = self.wake_tx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            match tx.write(&[1]) {
                Ok(_) => return,
                // A full pipe means a wake-up is already pending — which is
                // everything this byte could have achieved.
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    drop(tx);
                    // A real transport failure on the wake channel is worth
                    // surfacing: the loop now only advances on socket
                    // readiness and deadline ticks.
                    self.log.push(format!("wake channel write failed: {e}"));
                    return;
                }
            }
        }
    }

    /// The completion queue, recovered from poisoning if a thread panicked
    /// while holding it (the payload is a plain `Vec` — always coherent) and
    /// logged so the recovery is observable, instead of cascading the panic
    /// into a dead server.
    fn completed_lock(&self) -> std::sync::MutexGuard<'_, Vec<(u64, u64, Reply)>> {
        self.completed.lock().unwrap_or_else(|poisoned| {
            self.log.push("completion lock poisoned by a panicked thread; recovered".into());
            poisoned.into_inner()
        })
    }
}

#[cfg(target_os = "linux")]
impl std::fmt::Debug for EventLoopServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLoopServer")
            .field("local_addr", &self.local_addr)
            .field("connections_served", &self.connections_served())
            .field("frames_served", &self.frames_served())
            .finish()
    }
}

#[cfg(target_os = "linux")]
impl EventLoopServer {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port), spawns
    /// the verification pool, the completion pump and the loop thread, and
    /// starts serving.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the listener, the epoll instance or the
    /// wake channel cannot be created.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<VerifierService>,
        config: ServerConfig,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let pool = ParallelVerifier::spawn(Arc::clone(&service), config.pool);
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let (ticket_tx, ticket_rx) = mpsc::channel();
        let shared = Arc::new(LoopShared {
            service,
            log: EventLog::new(config.log_path.as_ref()),
            shutting_down: AtomicBool::new(false),
            connections_served: AtomicU64::new(0),
            frames_served: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            completed: Mutex::new(Vec::new()),
            wake_tx: Mutex::new(wake_tx),
        });
        shared.log.push(format!(
            "listen addr={local_addr} program={} workers={} max_connections={} transport=event-loop",
            shared.service.program_id(),
            pool.worker_count(),
            config.max_connections.max(1),
        ));
        let driver = Driver::new(
            listener,
            Arc::clone(&shared),
            config.limits,
            config.max_connections.max(1),
            pool,
            ticket_tx,
            wake_rx,
        )
        .map_err(NetError::Io)?;
        let pump = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lofat-net-pump".into())
                .spawn(move || pump_completions(&ticket_rx, &shared))
                .expect("spawn completion pump")
        };
        let driver = std::thread::Builder::new()
            .name("lofat-net-loop".into())
            .spawn(move || driver.run(pump))
            .expect("spawn event loop");
        Ok(Self { shared, local_addr, driver: Some(driver) })
    }

    /// The bound address (with the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<VerifierService> {
        &self.shared.service
    }

    /// Connections accepted over the server lifetime.
    pub fn connections_served(&self) -> u64 {
        self.shared.connections_served.load(Ordering::Relaxed)
    }

    /// Frames answered over the server lifetime.
    pub fn frames_served(&self) -> u64 {
        self.shared.frames_served.load(Ordering::Relaxed)
    }

    /// Connections currently held by the loop.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// A snapshot of the in-memory event log (the most recent few thousand
    /// events; the full history goes to [`ServerConfig::log_path`] when set).
    pub fn events(&self) -> Vec<String> {
        self.shared.log.snapshot()
    }

    /// Gracefully shuts the server down: stop accepting, stop reading,
    /// deliver in-flight verdicts and flush staged replies (bounded by the
    /// write deadline), then drain the verification pool.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// [`EventLoopServer::shutdown`], then drain the quiesced service into a
    /// durable snapshot at `path` (written atomically, with `reserve` future
    /// sessions added to every issuance watermark — see
    /// [`lofat::service::VerifierService::write_snapshot`]).  Taken after the
    /// graceful shutdown, so every delivered verdict is in the books it
    /// captures.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the snapshot cannot be encoded or written;
    /// the shutdown itself has already completed either way.
    pub fn shutdown_to_snapshot(
        mut self,
        path: impl AsRef<std::path::Path>,
        reserve: u64,
    ) -> Result<(), NetError> {
        self.stop();
        self.shared
            .service
            .write_snapshot(path, reserve)
            .map_err(|e| NetError::Io(std::io::Error::other(e.to_string())))
    }

    fn stop(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.log.push("shutdown requested".into());
        self.shared.wake();
        if let Some(driver) = self.driver.take() {
            let _ = driver.join();
        }
        self.shared.log.push(format!(
            "shutdown complete connections={} frames={}",
            self.connections_served(),
            self.frames_served(),
        ));
    }
}

#[cfg(target_os = "linux")]
impl Drop for EventLoopServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Awaits verdict tickets strictly in submission order (preserving each
/// connection's reply order) and hands results back to the loop.
#[cfg(target_os = "linux")]
fn pump_completions(
    ticket_rx: &mpsc::Receiver<(u64, u64, VerdictTicket)>,
    shared: &Arc<LoopShared>,
) {
    while let Ok((conn, seq, ticket)) = ticket_rx.recv() {
        let reply = ticket.wait().reply;
        shared.completed_lock().push((conn, seq, reply));
        shared.wake();
    }
}

/// One connection as the loop sees it: the sans-I/O machine plus the loop's
/// own bookkeeping (ordered reply queue, epoll interest, wheel slot).
#[cfg(target_os = "linux")]
struct ConnState {
    stream: TcpStream,
    machine: Connection,
    /// Replies in frame order; `None` payloads are still verifying on the
    /// pool.  Only the longest filled prefix is ever staged for writing.
    pending: VecDeque<(u64, Option<Reply>)>,
    next_seq: u64,
    frames: u64,
    /// No more reads: flush what is owed, then close.
    draining: bool,
    close_reason: Option<CloseReason>,
    /// A final frame (the oversized-announcement verdict) written after all
    /// owed replies, outside the frames-served count — mirroring the
    /// blocking transport.
    farewell: Option<Vec<u8>>,
    interest: u32,
    scheduled: bool,
}

#[cfg(target_os = "linux")]
enum WheelVerdict {
    Defer,
    Close(CloseReason),
    Rearm(Option<u64>),
}

/// The lazy deadline wheel: 256 slots × 25 ms.  Each live connection has at
/// most one entry; an entry popped before its connection's real deadline
/// (activity moved it) is simply rescheduled, so sweeping costs O(due) per
/// tick instead of O(connections).
#[cfg(target_os = "linux")]
struct DeadlineWheel {
    slots: Vec<Vec<(u64, u64)>>,
    cursor: u64,
    entries: usize,
}

#[cfg(target_os = "linux")]
impl DeadlineWheel {
    fn new() -> Self {
        Self { slots: vec![Vec::new(); WHEEL_SLOTS], cursor: 0, entries: 0 }
    }

    fn is_empty(&self) -> bool {
        self.entries == 0
    }

    fn schedule(&mut self, id: u64, deadline_ms: u64) {
        // Fire on the first tick strictly after the deadline, never behind
        // the cursor.
        let tick = (deadline_ms / WHEEL_GRANULARITY_MS + 1).max(self.cursor);
        let slot = usize::try_from(tick % WHEEL_SLOTS as u64).expect("slot fits usize");
        self.slots[slot].push((id, tick));
        self.entries += 1;
    }

    fn due(&mut self, now_ms: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let target = now_ms / WHEEL_GRANULARITY_MS;
        if self.entries == 0 {
            self.cursor = self.cursor.max(target + 1);
            return out;
        }
        while self.cursor <= target {
            let cursor = self.cursor;
            let slot = usize::try_from(cursor % WHEEL_SLOTS as u64).expect("slot fits usize");
            let mut removed = 0usize;
            self.slots[slot].retain(|&(id, tick)| {
                if tick <= cursor {
                    out.push(id);
                    removed += 1;
                    false
                } else {
                    true
                }
            });
            self.entries -= removed;
            self.cursor += 1;
        }
        out
    }
}

#[cfg(target_os = "linux")]
struct Driver {
    epoll: sys::Epoll,
    listener: Option<TcpListener>,
    accepting: bool,
    conns: HashMap<u64, ConnState>,
    next_id: u64,
    shared: Arc<LoopShared>,
    limits: NetLimits,
    max_connections: usize,
    pool: ParallelVerifier,
    ticket_tx: mpsc::Sender<(u64, u64, VerdictTicket)>,
    wake_rx: UnixStream,
    wheel: DeadlineWheel,
    start: Instant,
    drain_deadline: Option<Instant>,
}

#[cfg(target_os = "linux")]
impl Driver {
    #[allow(clippy::too_many_arguments)]
    fn new(
        listener: TcpListener,
        shared: Arc<LoopShared>,
        limits: NetLimits,
        max_connections: usize,
        pool: ParallelVerifier,
        ticket_tx: mpsc::Sender<(u64, u64, VerdictTicket)>,
        wake_rx: UnixStream,
    ) -> std::io::Result<Self> {
        let epoll = sys::Epoll::new()?;
        epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, sys::EPOLLIN)?;
        epoll.add(wake_rx.as_raw_fd(), TOKEN_WAKE, sys::EPOLLIN)?;
        Ok(Self {
            epoll,
            listener: Some(listener),
            accepting: true,
            conns: HashMap::new(),
            next_id: 0,
            shared,
            limits,
            max_connections,
            pool,
            ticket_tx,
            wake_rx,
            wheel: DeadlineWheel::new(),
            start: Instant::now(),
            drain_deadline: None,
        })
    }

    fn now_ms(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn run(mut self, pump: JoinHandle<()>) {
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 1024];
        loop {
            if self.shared.shutting_down.load(Ordering::SeqCst) && self.drain_deadline.is_none() {
                self.begin_shutdown();
            }
            if self.drain_deadline.is_some() {
                if self.conns.is_empty() {
                    break;
                }
                if self.drain_deadline.is_some_and(|deadline| Instant::now() >= deadline) {
                    self.force_close_all();
                    break;
                }
            }
            let timeout = self.poll_timeout();
            let filled = match self.epoll.wait(&mut events, timeout) {
                Ok(filled) => filled,
                Err(e) => {
                    self.shared.log.push(format!("epoll_wait failed: {e}"));
                    break;
                }
            };
            for event in &events[..filled] {
                // Copy out of the packed struct before use.
                let token = event.data;
                let bits = event.events;
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake(),
                    id => self.conn_event(id, bits),
                }
            }
            self.process_completions();
            self.advance_wheel();
        }
        // Teardown: closing the ticket channel and draining the pool lets the
        // pump finish every in-flight ticket, then exit.
        let Driver { pool, ticket_tx, .. } = self;
        drop(ticket_tx);
        drop(pool);
        let _ = pump.join();
    }

    fn poll_timeout(&self) -> i32 {
        if self.drain_deadline.is_some() {
            50
        } else if self.wheel.is_empty() {
            -1
        } else {
            i32::try_from(WHEEL_GRANULARITY_MS).expect("granularity fits i32")
        }
    }

    // -- shutdown ----------------------------------------------------------

    fn begin_shutdown(&mut self) {
        let cap = self.limits.write_timeout.unwrap_or(DEFAULT_DRAIN_CAP);
        self.drain_deadline = Some(Instant::now() + cap);
        self.pause_accepting();
        self.listener = None;
        let now = self.now_ms();
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            if let Some(state) = self.conns.get_mut(&id) {
                state.draining = true;
                if state.close_reason.is_none() {
                    state.close_reason = Some(CloseReason::Shutdown);
                }
            }
            self.flush_and_update(id, now);
        }
    }

    fn force_close_all(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let reason = self
                .conns
                .get_mut(&id)
                .and_then(|state| state.close_reason.take())
                .unwrap_or(CloseReason::Shutdown);
            self.finalize_close(id, &reason);
        }
    }

    // -- accepting ---------------------------------------------------------

    fn pause_accepting(&mut self) {
        if self.accepting {
            if let Some(listener) = &self.listener {
                let _ = self.epoll.del(listener.as_raw_fd());
            }
            self.accepting = false;
        }
    }

    fn resume_accepting(&mut self) {
        if !self.accepting && self.drain_deadline.is_none() {
            if let Some(listener) = &self.listener {
                if self.epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, sys::EPOLLIN).is_ok() {
                    self.accepting = true;
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            // Bounded accept: past the cap the listener leaves the interest
            // set; the kernel backlog (and then the peers) absorb the flood.
            if self.conns.len() >= self.max_connections {
                self.pause_accepting();
                return;
            }
            let accepted = match self.listener.as_ref() {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, peer)) => {
                    if self.shared.shutting_down.load(Ordering::SeqCst) {
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.next_id += 1;
                    let id = self.next_id;
                    let interest = sys::EPOLLIN | sys::EPOLLRDHUP;
                    if let Err(e) = self.epoll.add(stream.as_raw_fd(), id, interest) {
                        self.shared.log.push(format!("register id={id} failed: {e}"));
                        continue;
                    }
                    let now = self.now_ms();
                    let machine = Connection::new(&self.limits, now);
                    let mut state = ConnState {
                        stream,
                        machine,
                        pending: VecDeque::new(),
                        next_seq: 0,
                        frames: 0,
                        draining: false,
                        close_reason: None,
                        farewell: None,
                        interest,
                        scheduled: false,
                    };
                    if let Some(deadline) = state.machine.next_deadline_ms() {
                        self.wheel.schedule(id, deadline);
                        state.scheduled = true;
                    }
                    self.conns.insert(id, state);
                    self.shared.connections_served.fetch_add(1, Ordering::Relaxed);
                    self.shared.active.store(self.conns.len(), Ordering::Relaxed);
                    self.shared.log.push(format!("accept id={id} peer={peer}"));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    self.shared.log.push(format!("accept error: {e}"));
                    return;
                }
            }
        }
    }

    // -- per-connection events --------------------------------------------

    fn conn_event(&mut self, id: u64, bits: u32) {
        let now = self.now_ms();
        if bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.readable(id, now);
        }
        if self.conns.contains_key(&id) && bits & sys::EPOLLOUT != 0 {
            self.flush_and_update(id, now);
        }
    }

    fn readable(&mut self, id: u64, now: u64) {
        let mut eof = false;
        {
            let Some(state) = self.conns.get_mut(&id) else { return };
            if state.draining {
                return;
            }
            let mut buf = [0u8; READ_CHUNK];
            loop {
                match state.stream.read(&mut buf) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        state.machine.bytes_in(&buf[..n], now);
                        if n < READ_CHUNK {
                            // Level-triggered: anything left refires the event.
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        let reason = CloseReason::ReadError(e.to_string());
                        self.finalize_close(id, &reason);
                        return;
                    }
                }
            }
        }
        if let Err(reason) = self.pump_frames(id) {
            self.mark_close(id, reason);
        } else if eof {
            // Only after draining complete frames: a fully buffered frame is
            // never misread as truncation.
            let reason = match self.conns.get(&id) {
                Some(state) => state.machine.peer_closed(),
                None => return,
            };
            self.mark_close(id, reason);
        }
        self.flush_and_update(id, now);
    }

    /// Extracts and dispatches every complete frame buffered on `id`.
    fn pump_frames(&mut self, id: u64) -> Result<(), CloseReason> {
        loop {
            let frame = {
                let Some(state) = self.conns.get_mut(&id) else { return Ok(()) };
                match state.machine.next_frame() {
                    Ok(Some(frame)) => frame,
                    Ok(None) => return Ok(()),
                    Err(reason) => return Err(reason),
                }
            };
            self.dispatch(id, frame);
        }
    }

    /// Dispatches one frame per its [`Admission`]: session requests inline,
    /// evidence to the pool, over-cap sessions refused — always through the
    /// connection's ordered reply queue, so pipelined frames answer in
    /// arrival order.
    fn dispatch(&mut self, id: u64, frame: Vec<u8>) {
        let Some(state) = self.conns.get_mut(&id) else { return };
        let seq = state.next_seq;
        state.next_seq += 1;
        match state.machine.admit(&frame) {
            Admission::SessionRequest => {
                let reply = match Envelope::decode(&frame) {
                    Ok(Envelope { message: Message::SessionRequest(request), .. }) => {
                        session_request_reply(&self.shared.service, &request)
                    }
                    // The peek was optimistic; let the service classify
                    // whatever this really is.
                    _ => self.shared.service.handle_bytes(&frame),
                };
                state.pending.push_back((seq, Some(reply)));
            }
            Admission::SessionLimit { session } => {
                let reply = session_limit_refusal(session, self.limits.max_sessions_per_connection);
                state.pending.push_back((seq, Some(reply)));
            }
            Admission::Verify => {
                let ticket = self.pool.submit(frame);
                state.pending.push_back((seq, None));
                let _ = self.ticket_tx.send((id, seq, ticket));
            }
        }
    }

    /// Stages the longest filled prefix of the reply queue onto the wire
    /// buffer, counting each frame as served the moment its reply is staged.
    fn drain_ready(&mut self, id: u64) -> Result<(), CloseReason> {
        let Some(state) = self.conns.get_mut(&id) else { return Ok(()) };
        while matches!(state.pending.front(), Some((_, Some(_)))) {
            let (_, reply) = state.pending.pop_front().expect("front checked");
            match reply.expect("filled checked") {
                Ok(bytes) => {
                    state.frames += 1;
                    self.shared.frames_served.fetch_add(1, Ordering::Relaxed);
                    state.machine.frame_out(&bytes)?;
                }
                Err(e) => return Err(CloseReason::ServiceError(e.to_string())),
            }
        }
        Ok(())
    }

    /// Records that `id` must close (accounting for framing-level rejections
    /// through the shared [`CloseReason::wire_error`] mapping) and lets the
    /// flush path deliver whatever is still owed first.
    fn mark_close(&mut self, id: u64, reason: CloseReason) {
        let mut farewell = None;
        if let Some(wire_error) = reason.wire_error() {
            // A truncated or oversized frame enters the books exactly like it
            // does in-process; an oversized announcement is also answered
            // (the peer is still there to read the verdict).
            match self.shared.service.reject_unparseable(SessionId(0), &wire_error) {
                Ok(reply) if reason.answers_peer() => farewell = Some(reply),
                _ => {}
            }
        }
        let Some(state) = self.conns.get_mut(&id) else { return };
        state.draining = true;
        if state.close_reason.is_none() {
            state.close_reason = Some(reason);
        }
        if farewell.is_some() {
            state.farewell = farewell;
        }
    }

    /// The write/finish path: stage ready replies, flush, manage `EPOLLOUT`
    /// interest, arm the deadline wheel, and complete a draining close once
    /// nothing is owed.
    fn flush_and_update(&mut self, id: u64, now: u64) {
        if let Err(reason) = self.drain_ready(id) {
            self.mark_close(id, reason);
        }
        let Some(state) = self.conns.get_mut(&id) else { return };
        if state.draining && state.pending.is_empty() {
            if let Some(bytes) = state.farewell.take() {
                let _ = state.machine.frame_out(&bytes);
            }
        }
        if let Err(reason) = try_flush_stream(state, now) {
            self.finalize_close(id, &reason);
            return;
        }
        let Some(state) = self.conns.get_mut(&id) else { return };
        if state.draining
            && state.pending.is_empty()
            && state.farewell.is_none()
            && !state.machine.wants_write()
        {
            let reason = state.close_reason.take().unwrap_or(CloseReason::PeerClosed);
            self.finalize_close(id, &reason);
            return;
        }
        let mut want = 0u32;
        if !state.draining {
            want |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if state.machine.wants_write() {
            want |= sys::EPOLLOUT;
        }
        if want != state.interest && self.epoll.modify(state.stream.as_raw_fd(), id, want).is_ok() {
            state.interest = want;
        }
        if !state.scheduled {
            if let Some(deadline) = state.machine.next_deadline_ms() {
                self.wheel.schedule(id, deadline);
                state.scheduled = true;
            }
        }
    }

    fn finalize_close(&mut self, id: u64, reason: &CloseReason) {
        let Some(state) = self.conns.remove(&id) else { return };
        let _ = self.epoll.del(state.stream.as_raw_fd());
        self.shared.active.store(self.conns.len(), Ordering::Relaxed);
        self.shared.log.push(format!("close id={id} frames={} ({reason})", state.frames));
        if self.conns.len() < self.max_connections {
            self.resume_accepting();
        }
        // Replies still verifying on the pool arrive later and are dropped —
        // the books were already written when `handle_bytes` ran.
    }

    // -- completions and deadlines ----------------------------------------

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.wake_rx.read(&mut buf), Ok(n) if n > 0) {}
    }

    fn process_completions(&mut self) {
        let completed = std::mem::take(&mut *self.shared.completed_lock());
        let now = self.now_ms();
        for (id, seq, reply) in completed {
            let Some(state) = self.conns.get_mut(&id) else { continue };
            if let Some(entry) =
                state.pending.iter_mut().find(|(s, filled)| *s == seq && filled.is_none())
            {
                entry.1 = Some(reply);
            }
            self.flush_and_update(id, now);
        }
    }

    fn advance_wheel(&mut self) {
        let now = self.now_ms();
        for id in self.wheel.due(now) {
            let verdict = {
                let Some(state) = self.conns.get_mut(&id) else { continue };
                state.scheduled = false;
                if !state.pending.is_empty() {
                    // The peer is waiting on *us* (verdicts outstanding);
                    // hold its deadline and recheck shortly.
                    WheelVerdict::Defer
                } else {
                    match state.machine.tick(now) {
                        Some(reason) => WheelVerdict::Close(reason),
                        None => WheelVerdict::Rearm(state.machine.next_deadline_ms()),
                    }
                }
            };
            match verdict {
                WheelVerdict::Defer => {
                    self.wheel.schedule(id, now + WHEEL_GRANULARITY_MS);
                    if let Some(state) = self.conns.get_mut(&id) {
                        state.scheduled = true;
                    }
                }
                WheelVerdict::Close(reason) => self.finalize_close(id, &reason),
                WheelVerdict::Rearm(Some(deadline)) => {
                    self.wheel.schedule(id, deadline);
                    if let Some(state) = self.conns.get_mut(&id) {
                        state.scheduled = true;
                    }
                }
                WheelVerdict::Rearm(None) => {}
            }
        }
    }
}

/// Writes as much of the staged output as the socket will take right now.
#[cfg(target_os = "linux")]
fn try_flush_stream(state: &mut ConnState, now: u64) -> Result<(), CloseReason> {
    while state.machine.wants_write() {
        match state.stream.write(state.machine.bytes_out()) {
            Ok(0) => return Err(CloseReason::WriteFailed("socket accepted no bytes".into())),
            Ok(n) => state.machine.consume_out(n),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                state.machine.write_blocked(now);
                break;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(CloseReason::WriteFailed(e.to_string())),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Non-Linux: the same API served by the blocking transport, so portable code
// can default to `EventLoopServer` everywhere (fleet manifests stay
// host-independent).
// ---------------------------------------------------------------------------

/// A verifier service on a TCP socket behind the readiness-driven transport
/// API.  This host has no epoll; the same public surface is served by the
/// blocking [`VerifierServer`], so behaviour (and the differential suites)
/// are identical — only the concurrency ceiling differs.
#[cfg(not(target_os = "linux"))]
#[derive(Debug)]
pub struct EventLoopServer {
    inner: VerifierServer,
}

#[cfg(not(target_os = "linux"))]
impl EventLoopServer {
    /// Binds a listener on `addr` and starts serving (see
    /// [`VerifierServer::bind`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the listener cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<VerifierService>,
        config: ServerConfig,
    ) -> Result<Self, NetError> {
        Ok(Self { inner: VerifierServer::bind(addr, service, config)? })
    }

    /// The bound address (with the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<VerifierService> {
        self.inner.service()
    }

    /// Connections accepted over the server lifetime.
    pub fn connections_served(&self) -> u64 {
        self.inner.connections_served()
    }

    /// Frames answered over the server lifetime.
    pub fn frames_served(&self) -> u64 {
        self.inner.frames_served()
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.inner.active_connections()
    }

    /// A snapshot of the in-memory event log.
    pub fn events(&self) -> Vec<String> {
        self.inner.events()
    }

    /// Gracefully shuts the server down (see [`VerifierServer::shutdown`]).
    pub fn shutdown(self) {
        self.inner.shutdown();
    }

    /// Shuts down, then drains the quiesced service into a durable snapshot
    /// (see [`VerifierServer::shutdown_to_snapshot`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the snapshot cannot be encoded or written.
    pub fn shutdown_to_snapshot(
        self,
        path: impl AsRef<std::path::Path>,
        reserve: u64,
    ) -> Result<(), NetError> {
        self.inner.shutdown_to_snapshot(path, reserve)
    }
}

#[cfg(test)]
mod tests {
    #[cfg(target_os = "linux")]
    #[test]
    fn wheel_pops_entries_lazily_and_once() {
        use super::{DeadlineWheel, WHEEL_GRANULARITY_MS, WHEEL_SLOTS};
        let mut wheel = DeadlineWheel::new();
        assert!(wheel.is_empty());
        wheel.schedule(1, 100);
        wheel.schedule(2, 10_000);
        assert!(!wheel.is_empty());
        assert_eq!(wheel.due(99), Vec::<u64>::new());
        assert_eq!(wheel.due(100 + WHEEL_GRANULARITY_MS), vec![1]);
        assert_eq!(wheel.due(9_999), Vec::<u64>::new(), "far entry waits");
        assert_eq!(wheel.due(10_000 + WHEEL_GRANULARITY_MS), vec![2]);
        assert!(wheel.is_empty());

        // A deadline beyond one wheel revolution stays put while the cursor
        // sweeps past its slot early, and fires on the right revolution.
        let horizon = WHEEL_SLOTS as u64 * WHEEL_GRANULARITY_MS;
        wheel.schedule(3, 2 * horizon);
        assert_eq!(wheel.due(horizon), Vec::<u64>::new(), "wrapped entry holds");
        assert_eq!(wheel.due(2 * horizon + WHEEL_GRANULARITY_MS), vec![3]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn nofile_limit_reports_a_usable_budget() {
        let current = super::raise_nofile_limit(64);
        assert!(current >= 64 || current == 0, "either raised/held above 64 or unreadable");
    }
}

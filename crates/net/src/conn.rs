//! `Connection` — the sans-I/O per-connection state machine both transports
//! drive.
//!
//! The machine owns everything about one connection that is *not* I/O:
//!
//! ```text
//!             bytes_in ──▶ ┌────────────────────┐ ──▶ next_frame
//!                          │     Connection      │      │ admit
//!             bytes_out ◀── │  read buffer        │      ▼
//!            (+ consume)   │  write buffer       │   SessionRequest /
//!                          │  session-id set     │   Verify / SessionLimit
//!              tick ──▶    │  deadline clocks    │
//!                          └────────────────────┘ ◀── frame_out
//! ```
//!
//! * **`bytes_in` → frames**: incremental reassembly of length-prefixed
//!   frames with exactly the semantics of [`crate::frame::read_frame`] — an
//!   oversized length prefix is refused before any buffer is sized from it,
//!   and end-of-stream inside a frame is distinguished from a clean close
//!   with the same `got`/`wanted` accounting.
//! * **frames (`frame_out`) → `bytes_out`**: replies are staged in a write
//!   buffer the driver drains at whatever pace the socket accepts, so
//!   backpressure is the driver's concern and ordering is the machine's.
//! * **deadline ticks**: the machine tracks last-activity and write-stall
//!   clocks in driver-supplied milliseconds; [`Connection::tick`] says when a
//!   deadline has passed.  The blocking transport gets the same policy for
//!   free from `SO_RCVTIMEO`/`SO_SNDTIMEO`, which restart per byte exactly
//!   like the activity clock.
//! * **typed close reasons**: every way a connection ends is a
//!   [`CloseReason`]; [`CloseReason::wire_error`] maps the reasons that must
//!   enter the service's books onto the [`WireError`] the driver feeds
//!   [`lofat::service::VerifierService::reject_unparseable`], so the two
//!   transports cannot drift in their accounting.
//!
//! Session multiplexing lives here too: [`Connection::admit`] classifies each
//! complete frame for dispatch and tracks the distinct session ids a
//! connection addresses, refusing ids past
//! [`crate::NetLimits::max_sessions_per_connection`] without touching the
//! service.

use crate::error::NetError;
use crate::frame::FRAME_HEADER_BYTES;
use crate::limits::NetLimits;
use lofat::service::{ServiceError, VerifierService};
use lofat::wire::{
    code, Envelope, Message, SessionId, SessionRequestMsg, VerdictMsg, WireError, HEADER_BYTES,
    WIRE_MAGIC, WIRE_VERSION,
};
use std::collections::HashSet;

/// Read-buffer offset past which consumed bytes are compacted away.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Why a connection ended (or must end), as observed by the state machine.
///
/// Drivers log the reason verbatim and use [`CloseReason::wire_error`] /
/// [`CloseReason::answers_peer`] to decide what enters the service's books
/// and whether a final verdict frame goes out first.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CloseReason {
    /// The peer closed cleanly on a frame boundary.
    PeerClosed,
    /// The peer announced a frame larger than the configured maximum.  The
    /// stream cannot be resynchronised; the driver answers the rejecting
    /// verdict, then closes.
    FrameTooLarge {
        /// The announced payload length.
        len: usize,
        /// The maximum this endpoint accepts.
        max: usize,
    },
    /// The peer closed in the middle of a frame (same `got`/`wanted`
    /// accounting as [`NetError::ClosedMidFrame`]).
    TruncatedFrame {
        /// Bytes of the frame that did arrive.
        got: usize,
        /// Bytes the frame announced.
        wanted: usize,
    },
    /// No byte arrived within the read deadline.
    ReadDeadline,
    /// The write buffer sat undrained past the write deadline.
    WriteDeadline,
    /// The socket read failed.
    ReadError(String),
    /// The socket write failed.
    WriteFailed(String),
    /// The service refused to produce a reply (poisoned shard or similar).
    ServiceError(String),
    /// The server is shutting down.
    Shutdown,
}

impl CloseReason {
    /// The framing-level [`WireError`] this close must record through
    /// [`VerifierService::reject_unparseable`], if any.  Only the two reasons
    /// where hostile bytes arrived but no complete byte string ever existed
    /// enter the books; everything else either already went through
    /// `handle_bytes` or spent nothing.
    #[must_use]
    pub fn wire_error(&self) -> Option<WireError> {
        match self {
            CloseReason::FrameTooLarge { len, .. } => Some(WireError::Oversized { len: *len }),
            CloseReason::TruncatedFrame { got, wanted } => {
                Some(WireError::Truncated { needed: *wanted, have: *got })
            }
            _ => None,
        }
    }

    /// Whether the peer is still there to receive the rejecting verdict
    /// before the close (true only for an oversized announcement — a
    /// truncating peer is gone by definition).
    #[must_use]
    pub fn answers_peer(&self) -> bool {
        matches!(self, CloseReason::FrameTooLarge { .. })
    }
}

impl std::fmt::Display for CloseReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloseReason::PeerClosed => write!(f, "peer closed"),
            CloseReason::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds {max}")
            }
            CloseReason::TruncatedFrame { got, wanted } => {
                write!(f, "mid-frame EOF {got}/{wanted}")
            }
            CloseReason::ReadDeadline => write!(f, "read deadline"),
            CloseReason::WriteDeadline => write!(f, "write deadline"),
            CloseReason::ReadError(e) => write!(f, "read error: {e}"),
            CloseReason::WriteFailed(e) => write!(f, "write failed: {e}"),
            CloseReason::ServiceError(e) => write!(f, "service error: {e}"),
            CloseReason::Shutdown => write!(f, "shutdown"),
        }
    }
}

/// How a complete inbound frame must be dispatched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// A session-request envelope: decoded and answered inline (opening a
    /// session is cheap and must not queue behind evidence verification).
    SessionRequest,
    /// Everything else — evidence, replays, misdirected kinds, malformed
    /// bytes: verified / classified through `handle_bytes`, usually on the
    /// worker pool.
    Verify,
    /// Evidence addressing a fresh session id past the connection's
    /// multiplex cap: answered with an [`code::AT_CAPACITY`] verdict without
    /// touching the service.
    SessionLimit {
        /// The raw session id the frame addressed.
        session: u64,
    },
}

/// The sans-I/O state machine for one framed connection.
///
/// See the [module docs](self) for the full picture.  The driver contract,
/// in the order one readiness cycle runs it:
///
/// 1. socket read → [`Connection::bytes_in`];
/// 2. drain [`Connection::next_frame`] until `Ok(None)`, dispatching each
///    frame per [`Connection::admit`] and staging each reply with
///    [`Connection::frame_out`] (on `Err`, close with that reason after
///    honouring [`CloseReason::answers_peer`]);
/// 3. on end-of-stream, close with [`Connection::peer_closed`] — only after
///    step 2, so a complete buffered frame is never misread as truncation;
/// 4. socket write from [`Connection::bytes_out`] →
///    [`Connection::consume_out`] (or [`Connection::write_blocked`] when the
///    socket refuses bytes);
/// 5. periodically, [`Connection::tick`].
pub struct Connection {
    max_frame_bytes: usize,
    max_sessions: usize,
    read_timeout_ms: Option<u64>,
    write_timeout_ms: Option<u64>,
    read_buf: Vec<u8>,
    read_start: usize,
    write_buf: Vec<u8>,
    write_start: usize,
    sessions: HashSet<u64>,
    last_activity_ms: u64,
    write_blocked_since_ms: Option<u64>,
    poisoned: bool,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("buffered_in", &(self.read_buf.len() - self.read_start))
            .field("buffered_out", &(self.write_buf.len() - self.write_start))
            .field("sessions", &self.sessions.len())
            .finish()
    }
}

impl Connection {
    /// A fresh machine enforcing `limits`, with its activity clock starting
    /// at `now_ms` (driver-supplied milliseconds on any monotonic scale).
    #[must_use]
    pub fn new(limits: &NetLimits, now_ms: u64) -> Self {
        let to_ms = |d: Option<std::time::Duration>| {
            d.map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        };
        Self {
            max_frame_bytes: limits.max_frame_bytes,
            max_sessions: limits.max_sessions_per_connection.max(1),
            read_timeout_ms: to_ms(limits.read_timeout),
            write_timeout_ms: to_ms(limits.write_timeout),
            read_buf: Vec::new(),
            read_start: 0,
            write_buf: Vec::new(),
            write_start: 0,
            sessions: HashSet::new(),
            last_activity_ms: now_ms,
            write_blocked_since_ms: None,
            poisoned: false,
        }
    }

    /// Feeds bytes read from the socket into the reassembly buffer and
    /// restarts the activity clock.
    pub fn bytes_in(&mut self, bytes: &[u8], now_ms: u64) {
        if self.read_start > 0
            && (self.read_start == self.read_buf.len() || self.read_start > COMPACT_THRESHOLD)
        {
            self.read_buf.drain(..self.read_start);
            self.read_start = 0;
        }
        self.read_buf.extend_from_slice(bytes);
        self.last_activity_ms = now_ms;
    }

    /// Extracts the next complete frame, or `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`CloseReason::FrameTooLarge`] when the buffered length prefix exceeds
    /// the maximum — refused before any buffer is sized from it, and the
    /// machine is poisoned (no further frames come out; the stream cannot be
    /// resynchronised).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, CloseReason> {
        if self.poisoned {
            return Ok(None);
        }
        let buffered = self.read_buf.len() - self.read_start;
        if buffered < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let header: [u8; FRAME_HEADER_BYTES] = self.read_buf
            [self.read_start..self.read_start + FRAME_HEADER_BYTES]
            .try_into()
            .expect("slice length is FRAME_HEADER_BYTES");
        let len = u32::from_le_bytes(header) as usize;
        if len > self.max_frame_bytes {
            self.poisoned = true;
            return Err(CloseReason::FrameTooLarge { len, max: self.max_frame_bytes });
        }
        if buffered < FRAME_HEADER_BYTES + len {
            return Ok(None);
        }
        let start = self.read_start + FRAME_HEADER_BYTES;
        let frame = self.read_buf[start..start + len].to_vec();
        self.read_start = start + len;
        Ok(Some(frame))
    }

    /// The close reason for an end-of-stream observed *after* draining
    /// [`Connection::next_frame`]: clean on a frame boundary, truncation
    /// (with [`crate::frame::read_frame`]'s exact `got`/`wanted` accounting)
    /// inside one.
    #[must_use]
    pub fn peer_closed(&self) -> CloseReason {
        let buffered = self.read_buf.len() - self.read_start;
        if buffered == 0 {
            return CloseReason::PeerClosed;
        }
        if buffered < FRAME_HEADER_BYTES {
            return CloseReason::TruncatedFrame { got: buffered, wanted: FRAME_HEADER_BYTES };
        }
        let header: [u8; FRAME_HEADER_BYTES] = self.read_buf
            [self.read_start..self.read_start + FRAME_HEADER_BYTES]
            .try_into()
            .expect("slice length is FRAME_HEADER_BYTES");
        let wanted = u32::from_le_bytes(header) as usize;
        CloseReason::TruncatedFrame { got: buffered - FRAME_HEADER_BYTES, wanted }
    }

    /// Classifies a complete frame for dispatch and tracks the session ids
    /// this connection multiplexes (see [`Admission`]).
    pub fn admit(&mut self, frame: &[u8]) -> Admission {
        if is_session_request_frame(frame) {
            return Admission::SessionRequest;
        }
        // Only envelope-shaped frames can address a session; everything else
        // is classified (and rejected) by the service without spending one.
        if frame.len() >= HEADER_BYTES
            && frame[..4] == WIRE_MAGIC
            && frame[4..6] == WIRE_VERSION.to_le_bytes()
        {
            let session = u64::from_le_bytes(frame[6..14].try_into().expect("slice length is 8"));
            if session != 0 && !self.sessions.contains(&session) {
                if self.sessions.len() >= self.max_sessions {
                    return Admission::SessionLimit { session };
                }
                self.sessions.insert(session);
            }
        }
        Admission::Verify
    }

    /// Distinct session ids this connection has addressed so far.
    #[must_use]
    pub fn sessions_multiplexed(&self) -> usize {
        self.sessions.len()
    }

    /// Stages one reply frame (length prefix + payload) for writing.
    ///
    /// # Errors
    ///
    /// [`CloseReason::ServiceError`] if the payload exceeds the frame bound —
    /// never put a frame on the wire the peer's mirror-image limit would
    /// refuse (cannot happen for the protocol's own replies, which are
    /// orders of magnitude below the bound).
    pub fn frame_out(&mut self, payload: &[u8]) -> Result<(), CloseReason> {
        if payload.len() > self.max_frame_bytes {
            return Err(CloseReason::ServiceError(
                NetError::FrameTooLarge { len: payload.len(), max: self.max_frame_bytes }
                    .to_string(),
            ));
        }
        let len = u32::try_from(payload.len()).map_err(|_| {
            CloseReason::ServiceError(format!(
                "reply of {} bytes overflows the frame header",
                payload.len()
            ))
        })?;
        if self.write_start > 0 && self.write_start == self.write_buf.len() {
            self.write_buf.clear();
            self.write_start = 0;
        }
        self.write_buf.extend_from_slice(&len.to_le_bytes());
        self.write_buf.extend_from_slice(payload);
        Ok(())
    }

    /// The staged bytes not yet accepted by the socket.
    #[must_use]
    pub fn bytes_out(&self) -> &[u8] {
        &self.write_buf[self.write_start..]
    }

    /// Whether any staged bytes are waiting (the driver's write-interest
    /// signal).
    #[must_use]
    pub fn wants_write(&self) -> bool {
        self.write_start < self.write_buf.len()
    }

    /// Records that the socket accepted `n` bytes of [`Connection::bytes_out`];
    /// progress clears the write-stall clock.
    pub fn consume_out(&mut self, n: usize) {
        self.write_start = (self.write_start + n).min(self.write_buf.len());
        if self.write_start == self.write_buf.len() {
            self.write_buf.clear();
            self.write_start = 0;
        }
        self.write_blocked_since_ms = None;
    }

    /// Records that the socket refused bytes while the buffer is non-empty,
    /// starting the write-stall clock if it is not already running.
    pub fn write_blocked(&mut self, now_ms: u64) {
        if self.wants_write() && self.write_blocked_since_ms.is_none() {
            self.write_blocked_since_ms = Some(now_ms);
        }
    }

    /// Checks the deadline clocks: `Some(reason)` when the connection has
    /// been inactive past the read deadline or write-stalled past the write
    /// deadline.
    #[must_use]
    pub fn tick(&self, now_ms: u64) -> Option<CloseReason> {
        if let Some(timeout) = self.read_timeout_ms {
            if now_ms.saturating_sub(self.last_activity_ms) >= timeout {
                return Some(CloseReason::ReadDeadline);
            }
        }
        if let (Some(timeout), Some(since)) = (self.write_timeout_ms, self.write_blocked_since_ms) {
            if now_ms.saturating_sub(since) >= timeout {
                return Some(CloseReason::WriteDeadline);
            }
        }
        None
    }

    /// The earliest future instant (same millisecond scale as the driver's
    /// ticks) at which [`Connection::tick`] could fire, for deadline-wheel
    /// scheduling.  `None` when no deadline is armed.
    #[must_use]
    pub fn next_deadline_ms(&self) -> Option<u64> {
        let read = self.read_timeout_ms.map(|t| self.last_activity_ms.saturating_add(t));
        let write = match (self.write_timeout_ms, self.write_blocked_since_ms) {
            (Some(t), Some(since)) => Some(since.saturating_add(t)),
            _ => None,
        };
        match (read, write) {
            (Some(r), Some(w)) => Some(r.min(w)),
            (r, w) => r.or(w),
        }
    }
}

/// The serde variant index of [`Message::SessionRequest`] (pinned by the
/// wire-format tests in `lofat::wire`): declaration order `Challenge` = 0,
/// `Evidence` = 1, `Verdict` = 2, `SessionRequest` = 3.
const SESSION_REQUEST_VARIANT: [u8; 4] = 3u32.to_le_bytes();

/// Cheap structural peek: does this frame *look like* a current-version
/// session-request envelope?  Avoids fully decoding evidence bodies (the
/// largest message in the protocol) on the ingest thread just to learn the
/// message kind — evidence goes to the pool, which decodes exactly once.  A
/// false positive merely costs one inline decode; a false negative is
/// impossible for well-formed frames (the fields checked here are fixed
/// offsets of the envelope header).  Shared with the fan-out front, which
/// routes session requests round-robin (they name no session yet) and
/// everything else by the session id at the same fixed offsets.
pub(crate) fn is_session_request_frame(frame: &[u8]) -> bool {
    frame.len() >= HEADER_BYTES + 4
        && frame[..4] == WIRE_MAGIC
        && frame[4..6] == WIRE_VERSION.to_le_bytes()
        && frame[HEADER_BYTES..HEADER_BYTES + 4] == SESSION_REQUEST_VARIANT
}

/// Answers a [`Message::SessionRequest`]: the challenge envelope on success,
/// a refusing verdict otherwise.  Refusals mirror the typed
/// [`VerifierService::open_session`] errors, which do not touch statistics —
/// an unopened session has nothing to conserve.  Shared by both transports so
/// their refusal bytes cannot drift.
pub(crate) fn session_request_reply(
    service: &VerifierService,
    request: &SessionRequestMsg,
) -> Result<Vec<u8>, ServiceError> {
    let refusal = if request.program_id != service.program_id() {
        VerdictMsg::rejected(
            code::PROGRAM_ID_MISMATCH,
            format!(
                "this verifier attests `{}`, not `{}`",
                service.program_id(),
                request.program_id
            ),
        )
    } else {
        match service.open_session(request.input.clone()) {
            Ok(id) => {
                return service.challenge_envelope(id)?.encode().map_err(ServiceError::Wire);
            }
            Err(ServiceError::UnknownInput { input }) => VerdictMsg::rejected(
                code::UNKNOWN_INPUT,
                format!("no reference measurement precomputed for input {input:?}"),
            ),
            Err(ServiceError::AtCapacity { live, max }) => VerdictMsg::rejected(
                code::AT_CAPACITY,
                format!("live-session limit reached ({live}/{max}), try again later"),
            ),
            Err(other) => VerdictMsg::rejected(code::INTERNAL_ERROR, other.to_string()),
        }
    };
    Envelope::new(SessionId(0), Message::Verdict(refusal)).encode().map_err(ServiceError::Wire)
}

/// The refusing verdict for evidence past the per-connection multiplex cap
/// ([`Admission::SessionLimit`]).  Addressed to the offending session id;
/// like a session-request refusal it touches no counters — nothing was
/// opened or spent.
pub(crate) fn session_limit_refusal(
    session: u64,
    max_sessions: usize,
) -> Result<Vec<u8>, ServiceError> {
    let refusal = VerdictMsg::rejected(
        code::AT_CAPACITY,
        format!("connection multiplex limit reached ({max_sessions} sessions on one connection)"),
    );
    Envelope::new(SessionId(session), Message::Verdict(refusal))
        .encode()
        .map_err(ServiceError::Wire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn limits() -> NetLimits {
        NetLimits::server().with_max_frame_bytes(64)
    }

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut bytes = (u32::try_from(payload.len()).unwrap()).to_le_bytes().to_vec();
        bytes.extend_from_slice(payload);
        bytes
    }

    #[test]
    fn frames_are_reassembled_from_one_byte_feeds() {
        let mut conn = Connection::new(&limits(), 0);
        let wire = framed(b"stuttered");
        for (i, byte) in wire.iter().enumerate() {
            assert_eq!(conn.next_frame().unwrap(), None, "frame complete after byte {i}?");
            conn.bytes_in(&[*byte], i as u64);
        }
        assert_eq!(conn.next_frame().unwrap(), Some(b"stuttered".to_vec()));
        assert_eq!(conn.next_frame().unwrap(), None);
    }

    #[test]
    fn pipelined_frames_come_out_in_order() {
        let mut conn = Connection::new(&limits(), 0);
        let mut wire = framed(b"first");
        wire.extend_from_slice(&framed(b""));
        wire.extend_from_slice(&framed(b"third"));
        conn.bytes_in(&wire, 0);
        assert_eq!(conn.next_frame().unwrap(), Some(b"first".to_vec()));
        assert_eq!(conn.next_frame().unwrap(), Some(Vec::new()), "zero-length frames are legal");
        assert_eq!(conn.next_frame().unwrap(), Some(b"third".to_vec()));
        assert_eq!(conn.peer_closed(), CloseReason::PeerClosed, "boundary close is clean");
    }

    #[test]
    fn oversized_prefix_is_refused_and_poisons_the_machine() {
        let mut conn = Connection::new(&limits(), 0);
        let mut wire = u32::MAX.to_le_bytes().to_vec();
        wire.extend_from_slice(b"body never arrives");
        conn.bytes_in(&wire, 0);
        let err = conn.next_frame().unwrap_err();
        assert_eq!(err, CloseReason::FrameTooLarge { len: u32::MAX as usize, max: 64 });
        assert_eq!(err.wire_error(), Some(WireError::Oversized { len: u32::MAX as usize }));
        assert!(err.answers_peer());
        assert_eq!(conn.next_frame().unwrap(), None, "poisoned: no resynchronisation");
    }

    #[test]
    fn truncation_accounting_matches_read_frame() {
        // Header announces 10 bytes, only 3 arrive.
        let mut conn = Connection::new(&limits(), 0);
        let mut wire = 10u32.to_le_bytes().to_vec();
        wire.extend_from_slice(b"abc");
        conn.bytes_in(&wire, 0);
        assert_eq!(conn.next_frame().unwrap(), None);
        let reason = conn.peer_closed();
        assert_eq!(reason, CloseReason::TruncatedFrame { got: 3, wanted: 10 });
        assert_eq!(reason.wire_error(), Some(WireError::Truncated { needed: 10, have: 3 }));
        assert!(!reason.answers_peer(), "a truncating peer is gone");

        // The header itself is cut short.
        let mut conn = Connection::new(&limits(), 0);
        conn.bytes_in(&[7u8, 0], 0);
        assert_eq!(
            conn.peer_closed(),
            CloseReason::TruncatedFrame { got: 2, wanted: FRAME_HEADER_BYTES }
        );
    }

    #[test]
    fn write_buffer_drains_across_partial_consumes() {
        let mut conn = Connection::new(&limits(), 0);
        conn.frame_out(b"reply-a").unwrap();
        conn.frame_out(b"reply-b").unwrap();
        assert!(conn.wants_write());
        let total = conn.bytes_out().len();
        assert_eq!(total, 2 * FRAME_HEADER_BYTES + 14);
        conn.consume_out(5);
        assert_eq!(conn.bytes_out().len(), total - 5);
        conn.consume_out(total - 5);
        assert!(!conn.wants_write());
        assert!(conn.bytes_out().is_empty());
    }

    #[test]
    fn oversized_replies_are_refused_before_staging() {
        let mut conn = Connection::new(&limits(), 0);
        assert!(conn.frame_out(&[0u8; 65]).is_err());
        assert!(!conn.wants_write(), "nothing was staged");
    }

    #[test]
    fn deadlines_fire_on_inactivity_and_write_stall() {
        let limits = NetLimits::server()
            .with_read_timeout(Some(Duration::from_millis(100)))
            .with_write_timeout(Some(Duration::from_millis(50)));
        let mut conn = Connection::new(&limits, 0);
        assert_eq!(conn.tick(99), None);
        assert_eq!(conn.tick(100), Some(CloseReason::ReadDeadline));
        conn.bytes_in(b"x", 90);
        assert_eq!(conn.tick(100), None, "activity restarts the clock");
        assert_eq!(conn.next_deadline_ms(), Some(190));

        conn.frame_out(b"stuck").unwrap();
        conn.write_blocked(100);
        assert_eq!(conn.next_deadline_ms(), Some(150), "write stall is now the nearer deadline");
        assert_eq!(conn.tick(149), None);
        assert_eq!(conn.tick(150), Some(CloseReason::WriteDeadline));
        conn.consume_out(conn.bytes_out().len());
        assert_eq!(conn.tick(150), None, "draining clears the stall clock");
    }

    #[test]
    fn no_deadlines_means_no_ticks() {
        let limits = NetLimits::server().with_read_timeout(None).with_write_timeout(None);
        let conn = Connection::new(&limits, 0);
        assert_eq!(conn.tick(u64::MAX), None);
        assert_eq!(conn.next_deadline_ms(), None);
    }

    #[test]
    fn admission_tracks_sessions_and_enforces_the_multiplex_cap() {
        let limits = NetLimits::server().with_max_sessions_per_connection(2);
        let mut conn = Connection::new(&limits, 0);

        let envelope = |session: u64| {
            let mut frame = WIRE_MAGIC.to_vec();
            frame.extend_from_slice(&WIRE_VERSION.to_le_bytes());
            frame.extend_from_slice(&session.to_le_bytes());
            frame.extend_from_slice(&8u32.to_le_bytes()); // body length
            frame.extend_from_slice(&1u32.to_le_bytes()); // Evidence variant
            frame.extend_from_slice(&[0u8; 4]);
            frame
        };

        assert_eq!(conn.admit(&envelope(1)), Admission::Verify);
        assert_eq!(conn.admit(&envelope(1)), Admission::Verify, "replays are not fresh sessions");
        assert_eq!(conn.admit(&envelope(2)), Admission::Verify);
        assert_eq!(conn.sessions_multiplexed(), 2);
        assert_eq!(conn.admit(&envelope(3)), Admission::SessionLimit { session: 3 });
        assert_eq!(conn.sessions_multiplexed(), 2, "refused ids are not tracked");
        assert_eq!(conn.admit(&envelope(0)), Admission::Verify, "id 0 is never a real session");
        assert_eq!(conn.admit(b"garbage"), Admission::Verify, "non-envelopes go to the service");

        // A session request is classified before any session accounting.
        let mut request = WIRE_MAGIC.to_vec();
        request.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        request.extend_from_slice(&0u64.to_le_bytes());
        request.extend_from_slice(&4u32.to_le_bytes());
        request.extend_from_slice(&SESSION_REQUEST_VARIANT);
        assert_eq!(conn.admit(&request), Admission::SessionRequest);
    }
}

//! `NetLimits` — the deadline and size knobs shared by every transport.
//!
//! Both transports (the blocking [`crate::VerifierServer`], the
//! readiness-driven [`crate::EventLoopServer`]) and the [`crate::ProverClient`]
//! enforce the same four limits; before this type existed each config struct
//! carried its own copy of the fields.  `NetLimits` is the single place those
//! knobs live: [`crate::ServerConfig`] and [`crate::ClientConfig`] both embed
//! one in their `limits` field.
//!
//! Migration from the pre-`NetLimits` field names (`config.read_timeout` and
//! friends): the fields moved verbatim into `config.limits`, so
//! `ServerConfig { read_timeout: t, .. }` becomes
//! `ServerConfig { limits: NetLimits::server().with_read_timeout(t), .. }`.

use crate::frame::DEFAULT_MAX_FRAME_BYTES;
use std::time::Duration;

/// Default cap on distinct sessions multiplexed over one connection.
///
/// Generous on purpose: a device legitimately runs many attestation rounds
/// back to back over one connection, and the per-service
/// `max_live_sessions` bound is the real capacity control.  This cap only
/// stops a single connection from addressing an unbounded set of session ids
/// (each tracked id costs the connection 8 bytes of memory).
pub const DEFAULT_MAX_SESSIONS_PER_CONNECTION: usize = 4096;

/// Deadline and size limits shared by both transports and the client.
///
/// Construct with [`NetLimits::server`] or [`NetLimits::client`] (they differ
/// only in default deadlines) and adjust with the `with_*` builders:
///
/// ```
/// use lofat_net::NetLimits;
/// use std::time::Duration;
///
/// let limits = NetLimits::server()
///     .with_read_timeout(Some(Duration::from_secs(5)))
///     .with_max_frame_bytes(1 << 16);
/// assert_eq!(limits.max_frame_bytes, 1 << 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct NetLimits {
    /// Maximum accepted frame payload, in bytes (hostile length prefixes
    /// above this are refused before any buffer is sized from them).
    pub max_frame_bytes: usize,
    /// Read deadline (`None` waits forever).  On the blocking transport this
    /// is the socket read timeout; on the event loop it is the inactivity
    /// deadline — a connection that has not delivered a byte for this long is
    /// closed.  The two coincide: a socket read with `SO_RCVTIMEO` also
    /// restarts its clock on every byte received.
    pub read_timeout: Option<Duration>,
    /// Write deadline (`None` waits forever).  On the event loop this bounds
    /// how long a connection's write buffer may sit undrained before the
    /// connection is dropped as stalled.
    pub write_timeout: Option<Duration>,
    /// Maximum distinct [`lofat::wire::SessionId`]s one connection may
    /// address.  Past the cap, evidence for a fresh session id is answered
    /// with an [`lofat::wire::code::AT_CAPACITY`] verdict without touching
    /// the service (like a session-request refusal, it spends nothing).
    pub max_sessions_per_connection: usize,
}

impl NetLimits {
    /// Server-side defaults: 10 s read/write deadlines (finite so half-open
    /// peers and slow-loris writers cannot pin a connection, and so shutdown
    /// never blocks on an idle peer), 1 MiB frames,
    /// [`DEFAULT_MAX_SESSIONS_PER_CONNECTION`] sessions per connection.
    #[must_use]
    pub fn server() -> Self {
        Self {
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            max_sessions_per_connection: DEFAULT_MAX_SESSIONS_PER_CONNECTION,
        }
    }

    /// Client-side defaults: like [`NetLimits::server`] but with 30 s
    /// deadlines (the client waits on verification work, not just I/O).
    #[must_use]
    pub fn client() -> Self {
        Self {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            ..Self::server()
        }
    }

    /// Replaces the maximum frame payload size.
    #[must_use]
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Replaces the read deadline (`None` waits forever).
    #[must_use]
    pub fn with_read_timeout(mut self, read_timeout: Option<Duration>) -> Self {
        self.read_timeout = read_timeout;
        self
    }

    /// Replaces the write deadline (`None` waits forever).
    #[must_use]
    pub fn with_write_timeout(mut self, write_timeout: Option<Duration>) -> Self {
        self.write_timeout = write_timeout;
        self
    }

    /// Replaces the per-connection session cap.
    #[must_use]
    pub fn with_max_sessions_per_connection(mut self, max_sessions: usize) -> Self {
        self.max_sessions_per_connection = max_sessions.max(1);
        self
    }
}

impl Default for NetLimits {
    /// The server-side defaults ([`NetLimits::server`]).
    fn default() -> Self {
        Self::server()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_replace_exactly_one_knob() {
        let base = NetLimits::server();
        let tweaked = base.clone().with_max_frame_bytes(64);
        assert_eq!(tweaked.max_frame_bytes, 64);
        assert_eq!(tweaked.read_timeout, base.read_timeout);
        assert_eq!(tweaked.write_timeout, base.write_timeout);
        assert_eq!(tweaked.max_sessions_per_connection, base.max_sessions_per_connection);

        let no_deadline = base.clone().with_read_timeout(None).with_write_timeout(None);
        assert_eq!(no_deadline.read_timeout, None);
        assert_eq!(no_deadline.write_timeout, None);

        assert_eq!(base.clone().with_max_sessions_per_connection(0).max_sessions_per_connection, 1);
    }

    #[test]
    fn client_and_server_defaults_differ_only_in_deadlines() {
        let server = NetLimits::server();
        let client = NetLimits::client();
        assert_eq!(server.max_frame_bytes, client.max_frame_bytes);
        assert_eq!(server.max_sessions_per_connection, client.max_sessions_per_connection);
        assert_eq!(server.read_timeout, Some(Duration::from_secs(10)));
        assert_eq!(client.read_timeout, Some(Duration::from_secs(30)));
    }
}

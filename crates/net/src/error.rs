//! Typed errors for the TCP transport.

use lofat::wire::{code, WireError};
use lofat::LofatError;
use std::fmt;
use std::io;

/// Errors produced by the `lofat-net` transport layer.
///
/// Every variant that corresponds to a wire-level rejection maps onto the
/// stable numeric reason codes of [`lofat::wire::code`] via
/// [`NetError::reason_code`], so a caller can treat a refusal received over
/// the socket and one produced locally uniformly.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// An I/O failure on the socket (connect, read or write).
    Io(io::Error),
    /// A read or write missed its per-connection deadline.
    Timeout {
        /// What the connection was doing when the deadline passed.
        during: &'static str,
    },
    /// The peer announced a frame larger than the negotiated maximum.
    FrameTooLarge {
        /// The announced payload length.
        len: usize,
        /// The maximum this endpoint accepts.
        max: usize,
    },
    /// The peer closed the connection in the middle of a frame.
    ClosedMidFrame {
        /// Bytes of the frame that did arrive.
        got: usize,
        /// Bytes the frame announced.
        wanted: usize,
    },
    /// The peer closed the connection where a reply frame was expected.
    Closed,
    /// A received frame failed wire-level decoding.
    Wire(WireError),
    /// The peer answered with a message kind the protocol step cannot accept.
    UnexpectedMessage {
        /// The kind this step was waiting for.
        expected: &'static str,
        /// The kind found in the envelope.
        found: &'static str,
    },
    /// The verifier refused to open a session, answering a rejecting verdict
    /// where a challenge was expected.
    Refused {
        /// Stable numeric reason ([`lofat::wire::code`]).
        code: u16,
        /// Human-readable detail from the verdict.
        detail: String,
    },
    /// The local prover failed to answer the challenge (execution or signing
    /// error, or a challenge naming a program this prover does not attest).
    Attest(Box<LofatError>),
}

impl NetError {
    /// The stable [`lofat::wire::code`] reason this error corresponds to, when
    /// there is one.  Transport-only failures (I/O, timeouts, clean closes)
    /// have no wire code and return `None`.
    pub fn reason_code(&self) -> Option<u16> {
        match self {
            NetError::Wire(e) => Some(e.code()),
            NetError::FrameTooLarge { .. } => Some(code::MALFORMED),
            NetError::ClosedMidFrame { .. } => Some(code::MALFORMED),
            NetError::UnexpectedMessage { .. } => Some(code::UNEXPECTED_MESSAGE),
            NetError::Refused { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// Classifies an [`io::Error`] from a socket with deadlines configured:
    /// `WouldBlock`/`TimedOut` become [`NetError::Timeout`], everything else
    /// stays an I/O error.
    pub(crate) fn from_io(error: io::Error, during: &'static str) -> Self {
        match error.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => NetError::Timeout { during },
            _ => NetError::Io(error),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket i/o failure: {e}"),
            NetError::Timeout { during } => write!(f, "deadline passed while {during}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "peer announced a {len}-byte frame (maximum {max})")
            }
            NetError::ClosedMidFrame { got, wanted } => {
                write!(f, "peer closed mid-frame ({got} of {wanted} bytes arrived)")
            }
            NetError::Closed => write!(f, "peer closed where a reply was expected"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::UnexpectedMessage { expected, found } => {
                write!(f, "expected a {expected} message, found a {found} message")
            }
            NetError::Refused { code, detail } => {
                write!(f, "verifier refused the session (code {code}): {detail}")
            }
            NetError::Attest(e) => write!(f, "prover failed to answer: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            NetError::Attest(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_codes_map_to_the_wire_contract() {
        assert_eq!(NetError::FrameTooLarge { len: 9, max: 4 }.reason_code(), Some(code::MALFORMED));
        assert_eq!(
            NetError::Wire(WireError::UnsupportedVersion { found: 9 }).reason_code(),
            Some(code::UNSUPPORTED_VERSION)
        );
        assert_eq!(
            NetError::Refused { code: code::AT_CAPACITY, detail: String::new() }.reason_code(),
            Some(code::AT_CAPACITY)
        );
        assert_eq!(NetError::Closed.reason_code(), None);
        assert_eq!(NetError::Timeout { during: "reading" }.reason_code(), None);
    }

    #[test]
    fn timeouts_are_classified_from_io_kinds() {
        let timeout = io::Error::new(io::ErrorKind::WouldBlock, "slow");
        assert!(matches!(NetError::from_io(timeout, "reading"), NetError::Timeout { .. }));
        let broken = io::Error::new(io::ErrorKind::BrokenPipe, "gone");
        assert!(matches!(NetError::from_io(broken, "writing"), NetError::Io(_)));
    }
}

//! `ProverClient` — the prover side of the attestation protocol over TCP.
//!
//! The client is a thin transport around the sans-I/O [`ProverSession`]: it
//! moves the session's bytes over a [`TcpStream`] with the framing of
//! [`crate::frame`] and maps wire-level refusals onto typed [`NetError`]s
//! carrying the stable [`lofat::wire::code`] reason codes.  The attested
//! execution itself is exactly the in-process one — the network adds no
//! semantics, which is what `tests/e14_network.rs` proves differentially.
//!
//! The typed methods ([`ProverClient::request_challenge`],
//! [`ProverClient::submit_evidence`], [`ProverClient::attest`]) keep the
//! connection in a strict request/reply rhythm.  Code that needs to put
//! arbitrary bytes on the wire — the fuzz suites, pipelined benchmarks —
//! takes the [`RawFrameIo`] handle via [`ProverClient::raw`]; the borrow
//! makes the escape hatch explicit and keeps raw and typed traffic from
//! interleaving by accident.

use crate::error::NetError;
use crate::frame::{read_frame, write_frame};
use crate::limits::NetLimits;
use lofat::prover::{Adversary, NoAdversary, Prover};
use lofat::session::ProverSession;
use lofat::wire::{Envelope, Message, SessionId, SessionRequestMsg, VerdictMsg};
use std::net::{TcpStream, ToSocketAddrs};

/// Tunables of a [`ProverClient`].
///
/// The deadline and size knobs moved into [`ClientConfig::limits`] when
/// [`NetLimits`] unified them across transports (`config.read_timeout` →
/// `config.limits.read_timeout`, and so on).
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Socket deadlines and frame bound — see [`NetLimits`].  Defaults to
    /// [`NetLimits::client`] (30 s deadlines: the client waits on
    /// verification work, not just I/O).
    #[doc(alias = "read_timeout")]
    #[doc(alias = "write_timeout")]
    #[doc(alias = "max_frame_bytes")]
    pub limits: NetLimits,
}

impl ClientConfig {
    /// A config with explicit limits (`ClientConfig { limits }` spelled as a
    /// builder).
    #[must_use]
    pub fn with_limits(limits: NetLimits) -> Self {
        Self { limits }
    }
}

impl Default for ClientConfig {
    /// The client-side limits ([`NetLimits::client`]).
    fn default() -> Self {
        Self { limits: NetLimits::client() }
    }
}

/// Everything one networked attestation round trip produces on the client.
#[derive(Debug, Clone)]
pub struct NetAttestation {
    /// The session the verifier opened for this round trip.
    pub session: SessionId,
    /// The challenge envelope exactly as it arrived on the wire.
    pub challenge_bytes: Vec<u8>,
    /// The evidence envelope exactly as it was sent on the wire.
    pub evidence_bytes: Vec<u8>,
    /// The verifier's decision.
    pub verdict: VerdictMsg,
}

/// A connection to a remote [`crate::VerifierServer`] or
/// [`crate::EventLoopServer`].
///
/// One client connection may run any number of sessions back to back — or
/// interleaved, when driven through [`ProverClient::raw`]; see
/// [`crate::VerifierServer`] for a complete round-trip example.
#[derive(Debug)]
pub struct ProverClient {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl ProverClient {
    /// Connects with the default [`ClientConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit deadlines and frame bound.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the connection cannot be established.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(config.limits.read_timeout)?;
        stream.set_write_timeout(config.limits.write_timeout)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, max_frame_bytes: config.limits.max_frame_bytes })
    }

    /// The raw-frame escape hatch: send and receive arbitrary frame payloads
    /// on this connection (the fuzz suites put hostile bytes on the wire
    /// through this; pipelined drivers send several frames before reading).
    ///
    /// While the returned handle lives, the typed methods are unborrowable —
    /// raw and typed traffic cannot interleave by accident.
    pub fn raw(&mut self) -> RawFrameIo<'_> {
        RawFrameIo { client: self }
    }

    fn send_frame(&mut self, payload: &[u8]) -> Result<(), NetError> {
        write_frame(&mut self.stream, payload, self.max_frame_bytes)
    }

    fn recv_frame(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        read_frame(&mut self.stream, self.max_frame_bytes)
    }

    /// Asks the verifier to open a session for `(program_id, input)` and
    /// returns the decoded challenge envelope together with its exact wire
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Refused`] (carrying the verifier's stable reason
    /// code) when the server answers a rejecting verdict instead of a
    /// challenge, and transport errors otherwise.
    pub fn request_challenge(
        &mut self,
        program_id: &str,
        input: Vec<u32>,
    ) -> Result<(Envelope, Vec<u8>), NetError> {
        let request = Envelope::new(
            SessionId(0),
            Message::SessionRequest(SessionRequestMsg {
                program_id: program_id.to_string(),
                input,
            }),
        );
        self.send_frame(&request.encode().map_err(NetError::Wire)?)?;
        let reply = self.recv_frame()?.ok_or(NetError::Closed)?;
        let envelope = Envelope::decode(&reply).map_err(NetError::Wire)?;
        match &envelope.message {
            Message::Challenge(_) => Ok((envelope, reply)),
            Message::Verdict(verdict) => {
                Err(NetError::Refused { code: verdict.reason_code, detail: verdict.detail.clone() })
            }
            other => {
                Err(NetError::UnexpectedMessage { expected: "challenge", found: other.kind() })
            }
        }
    }

    /// Submits already-encoded evidence envelope bytes and returns the
    /// verifier's verdict (and the session it addressed).
    ///
    /// # Errors
    ///
    /// Returns transport errors, or [`NetError::UnexpectedMessage`] if the
    /// server answers something other than a verdict.
    pub fn submit_evidence(
        &mut self,
        evidence: &[u8],
    ) -> Result<(SessionId, VerdictMsg), NetError> {
        self.send_frame(evidence)?;
        let reply = self.recv_frame()?.ok_or(NetError::Closed)?;
        let envelope = Envelope::decode(&reply).map_err(NetError::Wire)?;
        match envelope.message {
            Message::Verdict(verdict) => Ok((envelope.session, verdict)),
            other => Err(NetError::UnexpectedMessage { expected: "verdict", found: other.kind() }),
        }
    }

    /// One full round trip: request a challenge for `input`, run the attested
    /// execution on `prover`, submit the evidence, return the verdict.
    ///
    /// # Errors
    ///
    /// Everything [`ProverClient::request_challenge`] and
    /// [`ProverClient::submit_evidence`] can return, plus
    /// [`NetError::Attest`] when the local attested execution fails.
    pub fn attest(
        &mut self,
        prover: &mut Prover,
        input: Vec<u32>,
    ) -> Result<NetAttestation, NetError> {
        self.attest_with_adversary(prover, input, &mut NoAdversary)
    }

    /// Like [`ProverClient::attest`], with a run-time [`Adversary`]
    /// corrupting data memory during the attested execution (the stock
    /// attack classes of `lofat-workloads` plug in here).
    ///
    /// # Errors
    ///
    /// Same as [`ProverClient::attest`].
    pub fn attest_with_adversary<A: Adversary + ?Sized>(
        &mut self,
        prover: &mut Prover,
        input: Vec<u32>,
        adversary: &mut A,
    ) -> Result<NetAttestation, NetError> {
        let (challenge, challenge_bytes) = self.request_challenge(prover.program_id(), input)?;
        let session = challenge.session;
        let (evidence, _run) = ProverSession::new(prover)
            .respond_with_adversary(&challenge, adversary)
            .map_err(|e| NetError::Attest(Box::new(e)))?;
        let evidence_bytes = evidence.encode().map_err(NetError::Wire)?;
        let (_, verdict) = self.submit_evidence(&evidence_bytes)?;
        Ok(NetAttestation { session, challenge_bytes, evidence_bytes, verdict })
    }
}

/// Raw frame I/O on a borrowed [`ProverClient`] connection — the explicit
/// escape hatch below the typed protocol (see [`ProverClient::raw`]).
#[derive(Debug)]
pub struct RawFrameIo<'a> {
    client: &'a mut ProverClient,
}

impl RawFrameIo<'_> {
    /// Sends one raw frame (any payload — hostile bytes included).
    ///
    /// # Errors
    ///
    /// Propagates framing and socket failures.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), NetError> {
        self.client.send_frame(payload)
    }

    /// Receives one raw frame payload; `None` when the server closed cleanly.
    ///
    /// # Errors
    ///
    /// Propagates framing and socket failures.
    pub fn recv(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        self.client.recv_frame()
    }
}

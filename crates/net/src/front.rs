//! `FanOutFront` — a small fan-out front multiplexing clients over `N`
//! partitioned backend verifiers.
//!
//! One `lofat serve` process is one partition of the session/nonce space
//! (see [`lofat::service::ServiceConfig::partition_count`]).  The front is
//! the piece that makes `N` such processes *look like* one verifier: clients
//! connect to the front, and the front relays whole frames to the backend
//! that owns each frame's session stripe.
//!
//! Routing is purely structural — the front never decodes a body, holds no
//! key material and keeps no per-session state, so it can never change a
//! verdict byte:
//!
//! * a **session request** names no session yet; it goes to the next backend
//!   round-robin.  With `N` backends of partitions `0..N`, round-robin from
//!   backend 0 mirrors the round-robin shard cursor inside a single sharded
//!   service, so sequential clients still observe dense session ids
//!   `1, 2, 3, …`;
//! * every **other envelope frame** carries its session id at a fixed header
//!   offset; session `n` belongs to the backend whose partition index is
//!   `(n - 1) % N`;
//! * a frame too short to name a session (or naming session 0) goes
//!   round-robin — any backend rejects it with the same bytes, because
//!   rejection verdicts for unparseable input are a pure function of the
//!   input.
//!
//! ```text
//!                      ┌──────────────┐    session n
//!  client ──frames──▶  │  FanOutFront │ ──────────────▶ backend (n-1) % N
//!                      │  (no state,  │    request          │ partition p=…
//!                      │   no keys)   │ ◀────────────── verdict / challenge
//!                      └──────────────┘     round-robin
//! ```
//!
//! The one wire-level behaviour the front owns is the same one both real
//! transports own: a client announcing a frame above
//! [`NetLimits::max_frame_bytes`](crate::NetLimits) is answered with the rejecting
//! verdict for an oversized announcement (byte-identical to the servers'
//! farewell, addressed to session 0), then disconnected — the stream cannot
//! be resynchronised.

use crate::conn::is_session_request_frame;
use crate::error::NetError;
use crate::frame::{read_frame, write_frame};
use crate::server::{EventLog, ServerConfig};
use lofat::wire::{Envelope, Message, SessionId, VerdictMsg, WireError};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Byte offset of the session id within an envelope payload (see the offset
/// table in [`lofat::wire`]: magic 4 + version 2, then the `u64` session).
const SESSION_OFFSET: usize = 6;

struct FrontShared {
    backends: Vec<SocketAddr>,
    config: ServerConfig,
    /// Round-robin cursor for frames that name no session (session requests
    /// and undecodable scraps).
    round_robin: AtomicU64,
    shutting_down: AtomicBool,
    clients: Mutex<HashMap<u64, TcpStream>>,
    connections_served: AtomicU64,
    frames_served: AtomicU64,
    log: EventLog,
}

/// A stateless fan-out front over `N` partitioned backend verifiers (see the
/// [module docs](self)).
///
/// The front accepts clients like a server and speaks to each backend like a
/// client; it owns neither sessions nor keys, so a partitioned deployment
/// behind one front is verdict-byte-identical to a single service with the
/// same total shard count (`tests/e14_network.rs` proves this
/// differentially).
pub struct FanOutFront {
    shared: Arc<FrontShared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for FanOutFront {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanOutFront")
            .field("local_addr", &self.local_addr)
            .field("backends", &self.shared.backends)
            .field("connections_served", &self.connections_served())
            .field("frames_served", &self.frames_served())
            .finish()
    }
}

impl FanOutFront {
    /// Binds the front on `addr` (port 0 for ephemeral) over the given
    /// backend addresses, in partition order: `backends[p]` must be the
    /// process serving partition `p` of `backends.len()`.  Backend
    /// connections are opened lazily, one set per client.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the listener cannot be bound, and an
    /// `InvalidInput` I/O error when `backends` is empty.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backends: Vec<SocketAddr>,
        config: ServerConfig,
    ) -> Result<Self, NetError> {
        if backends.is_empty() {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a fan-out front needs at least one backend",
            )));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(FrontShared {
            log: EventLog::new(config.log_path.as_ref()),
            backends,
            config,
            round_robin: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            clients: Mutex::new(HashMap::new()),
            connections_served: AtomicU64::new(0),
            frames_served: AtomicU64::new(0),
        });
        shared.log.push(format!(
            "front addr={local_addr} backends={:?} transport=fan-out",
            shared.backends
        ));
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lofat-front-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn front acceptor")
        };
        Ok(Self { shared, local_addr, acceptor: Some(acceptor) })
    }

    /// The bound address (with the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The backend addresses, in partition order.
    pub fn backends(&self) -> &[SocketAddr] {
        &self.shared.backends
    }

    /// Client connections accepted over the front's lifetime.
    pub fn connections_served(&self) -> u64 {
        self.shared.connections_served.load(Ordering::Relaxed)
    }

    /// Frames relayed (and answered) over the front's lifetime.
    pub fn frames_served(&self) -> u64 {
        self.shared.frames_served.load(Ordering::Relaxed)
    }

    /// A snapshot of the in-memory event log.
    pub fn events(&self) -> Vec<String> {
        self.shared.log.snapshot()
    }

    /// Shuts the front down: stop accepting, disconnect every client (their
    /// backends' sessions survive — the front holds no state worth
    /// draining), and join the relay threads.  The backends themselves are
    /// *not* shut down; they belong to their own processes.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.log.push("front shutdown requested".into());
        {
            let clients = self.shared.clients.lock().expect("client registry poisoned");
            for stream in clients.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        // Unblock an acceptor parked in accept() with a loopback nudge.
        let mut wake = self.local_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.log.push(format!(
            "front shutdown complete connections={} frames={}",
            self.connections_served(),
            self.frames_served(),
        ));
    }
}

impl Drop for FanOutFront {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<FrontShared>) {
    let mut relays: Vec<JoinHandle<()>> = Vec::new();
    let mut next_id = 0u64;
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) => {
                shared.log.push(format!("front accept error: {e}"));
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        next_id += 1;
        let id = next_id;
        shared.connections_served.fetch_add(1, Ordering::Relaxed);
        shared.log.push(format!("front accept id={id} peer={peer}"));
        if let Ok(handle) = stream.try_clone() {
            shared.clients.lock().expect("client registry poisoned").insert(id, handle);
        }
        relays.retain(|handle| !handle.is_finished());
        let relay = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("lofat-front-conn-{id}"))
                .spawn(move || {
                    let outcome = relay_connection(&shared, stream, id);
                    shared.clients.lock().expect("client registry poisoned").remove(&id);
                    shared.log.push(format!("front close id={id} ({outcome})"));
                })
                .expect("spawn front relay")
        };
        relays.push(relay);
    }
    for handle in relays {
        let _ = handle.join();
    }
}

/// Which backend owns one client frame.
fn route(shared: &FrontShared, frame: &[u8]) -> usize {
    let n = shared.backends.len() as u64;
    if !is_session_request_frame(frame) && frame.len() >= SESSION_OFFSET + 8 {
        let session = u64::from_le_bytes(
            frame[SESSION_OFFSET..SESSION_OFFSET + 8].try_into().expect("8 bytes"),
        );
        if session != 0 {
            // Session n lives on the backend serving partition (n - 1) % N —
            // the same congruence that routes it to a shard inside that
            // backend.
            return ((session - 1) % n) as usize;
        }
    }
    // Session requests (no session yet), session-0 scraps and frames too
    // short to name a session: round-robin.  For the scraps any backend
    // answers the same rejection bytes, so the choice cannot matter.
    (shared.round_robin.fetch_add(1, Ordering::SeqCst) % n) as usize
}

/// Relays one client's frames until the client closes, a backend fails, or
/// shutdown.  Returns a human-readable close description for the log.
fn relay_connection(shared: &FrontShared, mut client: TcpStream, id: u64) -> String {
    let limits = &shared.config.limits;
    let _ = client.set_read_timeout(limits.read_timeout);
    let _ = client.set_write_timeout(limits.write_timeout);
    let _ = client.set_nodelay(true);
    let mut backends: Vec<Option<TcpStream>> = shared.backends.iter().map(|_| None).collect();
    let mut frames = 0u64;
    loop {
        let frame = match read_frame(&mut client, limits.max_frame_bytes) {
            Ok(Some(frame)) => frame,
            Ok(None) => return format!("client closed frames={frames}"),
            Err(NetError::FrameTooLarge { len, .. }) => {
                // Same farewell the servers write for an oversized
                // announcement, then close: the stream cannot be
                // resynchronised.  The verdict is a pure function of the
                // error, so the bytes match a real server's byte-for-byte.
                let error = WireError::Oversized { len };
                let farewell = Envelope::new(
                    SessionId(0),
                    Message::Verdict(VerdictMsg::rejected(error.code(), error.to_string())),
                );
                if let Ok(bytes) = farewell.encode() {
                    let _ = write_frame(&mut client, &bytes, limits.max_frame_bytes);
                }
                return format!("oversized announcement ({len} bytes) frames={frames}");
            }
            Err(e) => return format!("client read failed: {e} frames={frames}"),
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return format!("shutdown frames={frames}");
        }
        let backend_index = route(shared, &frame);
        let reply = match relay_to_backend(shared, &mut backends, backend_index, &frame, id) {
            Ok(reply) => reply,
            Err(e) => return format!("backend {backend_index} failed: {e} frames={frames}"),
        };
        frames += 1;
        shared.frames_served.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = write_frame(&mut client, &reply, limits.max_frame_bytes) {
            return format!("client write failed: {e} frames={frames}");
        }
    }
}

/// Sends one frame to `backends[index]` (connecting lazily) and reads the
/// reply frame.
fn relay_to_backend(
    shared: &FrontShared,
    backends: &mut [Option<TcpStream>],
    index: usize,
    frame: &[u8],
    client_id: u64,
) -> Result<Vec<u8>, NetError> {
    let limits = &shared.config.limits;
    if backends[index].is_none() {
        let stream = TcpStream::connect(shared.backends[index])?;
        let _ = stream.set_read_timeout(limits.read_timeout);
        let _ = stream.set_write_timeout(limits.write_timeout);
        let _ = stream.set_nodelay(true);
        shared.log.push(format!(
            "front id={client_id} connected backend[{index}]={}",
            shared.backends[index]
        ));
        backends[index] = Some(stream);
    }
    let stream = backends[index].as_mut().expect("just connected");
    write_frame(stream, frame, limits.max_frame_bytes)?;
    match read_frame(stream, limits.max_frame_bytes)? {
        Some(reply) => Ok(reply),
        None => Err(NetError::Closed),
    }
}

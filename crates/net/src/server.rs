//! `VerifierServer` — the sharded verifier service behind a TCP listener,
//! one blocking thread per connection.
//!
//! The server owns three layers the rest of the workspace already provides
//! and adds only transport:
//!
//! * an accept loop over a [`TcpListener`] with a **bounded connection
//!   count** — beyond [`ServerConfig::max_connections`] the acceptor stops
//!   pulling from the kernel backlog until a slot frees, so a connection
//!   flood backpressures at the socket layer instead of spawning unbounded
//!   threads;
//! * one handler thread per connection driving the sans-I/O
//!   [`Connection`] state machine (frame reassembly, session multiplexing,
//!   typed close reasons — shared verbatim with the readiness-driven
//!   [`crate::EventLoopServer`]), with **per-connection read/write
//!   deadlines** enforced by the socket timeouts;
//! * the existing [`ParallelVerifier`] worker pool: every evidence frame is a
//!   `handle_bytes` job, so verification parallelism and verdict semantics
//!   are exactly those of the in-process service.
//!
//! Accounting discipline: the server never touches statistics itself.
//! Well-formed and malformed envelope bytes alike flow through
//! [`VerifierService::handle_bytes`]; framing-level rejections (an oversized
//! length prefix, a frame cut short), where a complete byte string never
//! existed, are reported through [`VerifierService::reject_unparseable`] —
//! the same `record_verdict` path — so the conservation law
//! `opened == accepted + sessions_rejected + expired + live` holds over
//! socket traffic exactly as it does in-process.  The mapping from close
//! reason to book entry lives on [`CloseReason::wire_error`], shared by both
//! transports.  Session-request *refusals* (unknown input, capacity, wrong
//! program) mirror the typed [`VerifierService::open_session`] errors, which
//! touch no counters either.
//!
//! Shutdown is graceful: [`VerifierServer::shutdown`] stops the acceptor,
//! nudges idle connections closed, waits for handlers to finish writing the
//! replies already in flight, and drains the pool queue before returning.

use crate::conn::{
    session_limit_refusal, session_request_reply, Admission, CloseReason, Connection,
};
use crate::error::NetError;
use crate::frame::write_frame;
use crate::limits::NetLimits;
use lofat::pool::{ParallelVerifier, PoolConfig};
use lofat::service::{ServiceError, VerifierService};
use lofat::wire::{Envelope, Message, SessionId};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Tunables of a [`VerifierServer`] (and of an [`crate::EventLoopServer`] —
/// both transports share this config).
///
/// The per-connection deadline and size knobs moved into
/// [`ServerConfig::limits`] when [`NetLimits`] unified them across transports
/// (`config.read_timeout` → `config.limits.read_timeout`, and so on).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum connections served concurrently; the acceptor waits for a free
    /// slot beyond this (bounded accept queue).
    pub max_connections: usize,
    /// Per-connection deadlines, frame bound and session-multiplex cap —
    /// see [`NetLimits`].
    #[doc(alias = "read_timeout")]
    #[doc(alias = "write_timeout")]
    #[doc(alias = "max_frame_bytes")]
    pub limits: NetLimits,
    /// Worker-pool shape for the verification work (see [`PoolConfig`]).
    pub pool: PoolConfig,
    /// When set, every connection event is appended to this file as it
    /// happens (one line per event), so a crashed or failing run leaves its
    /// server log on disk.  The same events are always available in memory
    /// via [`VerifierServer::events`].
    pub log_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            limits: NetLimits::server(),
            pool: PoolConfig::default(),
            log_path: None,
        }
    }
}

/// Cap on the in-memory event log (oldest entries are dropped first).
const MAX_LOG_LINES: usize = 4096;

pub(crate) struct EventLog {
    lines: Mutex<(u64, std::collections::VecDeque<String>)>,
    file: Option<Mutex<std::fs::File>>,
}

impl EventLog {
    pub(crate) fn new(path: Option<&PathBuf>) -> Self {
        let file = path.and_then(|p| {
            if let Some(dir) = p.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            std::fs::OpenOptions::new().create(true).append(true).open(p).ok().map(Mutex::new)
        });
        Self { lines: Mutex::new((0, std::collections::VecDeque::new())), file }
    }

    pub(crate) fn push(&self, event: String) {
        let line = {
            let mut lines = self.lines.lock().expect("log lock poisoned");
            lines.0 += 1;
            let line = format!("[{:>6}] {event}", lines.0);
            lines.1.push_back(line.clone());
            while lines.1.len() > MAX_LOG_LINES {
                lines.1.pop_front();
            }
            line
        };
        if let Some(file) = &self.file {
            let mut file = file.lock().expect("log file lock poisoned");
            let _ = writeln!(file, "{line}");
        }
    }

    pub(crate) fn snapshot(&self) -> Vec<String> {
        self.lines.lock().expect("log lock poisoned").1.iter().cloned().collect()
    }
}

/// Connection registry: active count for the bounded accept queue plus a
/// read-half handle per live connection so shutdown can nudge idle handlers
/// out of their blocking reads.
#[derive(Default)]
struct Connections {
    active: usize,
    streams: HashMap<u64, TcpStream>,
}

struct Shared {
    service: Arc<VerifierService>,
    pool: ParallelVerifier,
    limits: NetLimits,
    max_connections: usize,
    shutting_down: AtomicBool,
    connections: Mutex<Connections>,
    slot_freed: Condvar,
    connections_served: AtomicU64,
    frames_served: AtomicU64,
    log: EventLog,
}

/// A verifier service listening on a TCP socket, serving each connection on
/// its own blocking thread.
///
/// Each accepted connection speaks length-prefixed [`Envelope`] frames (see
/// [`crate::frame`]): a [`Message::SessionRequest`] opens a session and is
/// answered with the challenge; an evidence frame is verified on the shared
/// [`ParallelVerifier`] pool and answered with the verdict; anything else —
/// including bytes that do not decode at all — is answered with the rejecting
/// verdict the in-process [`VerifierService`] produces for the same input.
/// One connection may interleave any number of sessions (up to
/// [`NetLimits::max_sessions_per_connection`]) and pipeline frames —
/// replies always come back in frame order.
///
/// For thousands of mostly-idle connections, prefer the readiness-driven
/// [`crate::EventLoopServer`], which serves the same protocol from one
/// thread; this server spends a thread (and its stack) per connection.
///
/// # Example
///
/// ```
/// use lofat::service::{ServiceConfig, VerifierService};
/// use lofat::{EngineConfig, MeasurementDatabase, Prover, Verifier};
/// use lofat_crypto::DeviceKey;
/// use lofat_net::{ProverClient, ServerConfig, VerifierServer};
/// use lofat_rv32::asm::assemble;
/// use std::sync::Arc;
///
/// let program = assemble(
///     ".text\nmain:\n    li t0, 4\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ecall\n",
/// )?;
/// let key = DeviceKey::from_seed("fleet");
/// let mut prover = Prover::new(program.clone(), "demo", key.clone());
/// let verifier = Verifier::new(program, "demo", key.verification_key())?;
/// let db = MeasurementDatabase::build(&verifier, EngineConfig::default(), vec![vec![]])?;
/// let service = Arc::new(VerifierService::new(
///     db,
///     key.verification_key(),
///     ServiceConfig::default(),
/// ));
///
/// // Serve on an ephemeral loopback port; attest over a real socket.
/// let server = VerifierServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())?;
/// let mut client = ProverClient::connect(server.local_addr())?;
/// let outcome = client.attest(&mut prover, vec![])?;
/// assert!(outcome.verdict.accepted);
/// drop(client);
/// server.shutdown();
/// assert_eq!(service.stats().accepted, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct VerifierServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for VerifierServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifierServer")
            .field("local_addr", &self.local_addr)
            .field("connections_served", &self.connections_served())
            .field("frames_served", &self.frames_served())
            .finish()
    }
}

impl VerifierServer {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port), spawns
    /// the verification pool and the acceptor thread, and starts serving.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the listener cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<VerifierService>,
        config: ServerConfig,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let pool = ParallelVerifier::spawn(Arc::clone(&service), config.pool);
        let shared = Arc::new(Shared {
            service,
            pool,
            limits: config.limits,
            max_connections: config.max_connections.max(1),
            shutting_down: AtomicBool::new(false),
            connections: Mutex::new(Connections::default()),
            slot_freed: Condvar::new(),
            connections_served: AtomicU64::new(0),
            frames_served: AtomicU64::new(0),
            log: EventLog::new(config.log_path.as_ref()),
        });
        shared.log.push(format!(
            "listen addr={local_addr} program={} workers={} max_connections={}",
            shared.service.program_id(),
            shared.pool.worker_count(),
            shared.max_connections,
        ));
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lofat-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(Self { shared, local_addr, acceptor: Some(acceptor) })
    }

    /// The bound address (with the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<VerifierService> {
        &self.shared.service
    }

    /// Connections accepted over the server lifetime.
    pub fn connections_served(&self) -> u64 {
        self.shared.connections_served.load(Ordering::Relaxed)
    }

    /// Frames answered over the server lifetime.
    pub fn frames_served(&self) -> u64 {
        self.shared.frames_served.load(Ordering::Relaxed)
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.connections.lock().expect("connection lock poisoned").active
    }

    /// A snapshot of the in-memory event log (the most recent few thousand
    /// events; the full history goes to [`ServerConfig::log_path`] when set).
    pub fn events(&self) -> Vec<String> {
        self.shared.log.snapshot()
    }

    /// Gracefully shuts the server down: stop accepting, nudge idle
    /// connections closed, let handlers finish the replies already in
    /// flight, then drain the verification pool.  In-flight verdicts are
    /// delivered, not dropped.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// [`VerifierServer::shutdown`], then drain the quiesced service into a
    /// durable snapshot at `path` (written atomically, with `reserve` future
    /// sessions added to every issuance watermark — see
    /// [`VerifierService::write_snapshot`]).  Because the snapshot is taken
    /// *after* the graceful shutdown completed, every in-flight verdict is
    /// already in the books it captures.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the snapshot cannot be encoded or written;
    /// the shutdown itself has already completed either way.
    pub fn shutdown_to_snapshot(
        mut self,
        path: impl AsRef<std::path::Path>,
        reserve: u64,
    ) -> Result<(), NetError> {
        self.stop();
        self.shared
            .service
            .write_snapshot(path, reserve)
            .map_err(|e| NetError::Io(std::io::Error::other(e.to_string())))
    }

    fn stop(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.log.push("shutdown requested".into());
        // Wake an acceptor waiting for a slot.  No handler is spawned (or
        // registered) after this point: the acceptor re-checks the flag
        // before serving anything it accepts.
        self.shared.slot_freed.notify_all();
        // Close the read half of every live connection: handlers blocked in
        // a read observe EOF and wind down after flushing their reply;
        // handlers mid-verification still write their verdict (the write
        // half stays open).  This must happen before joining the acceptor —
        // the acceptor joins the handlers, and a handler parked in a read
        // would otherwise hold that join until its deadline.
        {
            let connections = self.shared.connections.lock().expect("connection lock poisoned");
            for stream in connections.streams.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        // Unblock an acceptor parked in accept(), then collect it (it joins
        // every handler on the way out).  A wildcard bind address is not
        // connectable everywhere — aim the wake-up at loopback on the bound
        // port instead.
        let mut wake = self.local_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.log.push(format!(
            "shutdown complete connections={} frames={}",
            self.connections_served(),
            self.frames_served(),
        ));
        // Dropping the last `Shared` handle (handlers are gone) closes the
        // pool queue and joins its workers, draining queued jobs.
    }
}

impl Drop for VerifierServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_id = 0u64;
    loop {
        // Bounded accept queue: do not pull another connection off the
        // backlog until a handler slot is free.
        {
            let mut connections = shared.connections.lock().expect("connection lock poisoned");
            while connections.active >= shared.max_connections
                && !shared.shutting_down.load(Ordering::SeqCst)
            {
                connections = shared.slot_freed.wait(connections).expect("connection lock");
            }
            if shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            connections.active += 1;
        }
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) => {
                release_slot(shared, None);
                shared.log.push(format!("accept error: {e}"));
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            // The wake-up connection from `shutdown` (or anything racing it).
            release_slot(shared, None);
            break;
        }
        next_id += 1;
        let id = next_id;
        shared.connections_served.fetch_add(1, Ordering::Relaxed);
        shared.log.push(format!("accept id={id} peer={peer}"));
        if let Ok(read_half) = stream.try_clone() {
            shared.connections.lock().expect("connection lock").streams.insert(id, read_half);
        }
        handlers.retain(|handle| !handle.is_finished());
        let worker = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("lofat-net-conn-{id}"))
                .spawn(move || {
                    serve_connection(&shared, stream, id);
                    release_slot(&shared, Some(id));
                })
                .expect("spawn connection handler")
        };
        handlers.push(worker);
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

fn release_slot(shared: &Shared, id: Option<u64>) {
    let mut connections = shared.connections.lock().expect("connection lock poisoned");
    connections.active -= 1;
    if let Some(id) = id {
        connections.streams.remove(&id);
    }
    shared.slot_freed.notify_all();
}

/// Serves one connection until the peer closes, a deadline fires, framing
/// desynchronises, or shutdown is requested.  The [`Connection`] machine
/// decides *what* happens; this driver only moves bytes and blocks.
fn serve_connection(shared: &Shared, mut stream: TcpStream, id: u64) {
    let _ = stream.set_read_timeout(shared.limits.read_timeout);
    let _ = stream.set_write_timeout(shared.limits.write_timeout);
    // Verdicts are small frames in a request/response rhythm: never let
    // Nagle hold one back waiting for payload that is not coming.
    let _ = stream.set_nodelay(true);
    // Deadlines are enforced by the socket timeouts on this transport, so
    // the machine's own clocks are never ticked here.
    let mut conn = Connection::new(&shared.limits, 0);
    let mut frames = 0u64;
    let mut buf = [0u8; 16 * 1024];
    let close = 'serve: loop {
        // Drain every complete frame (a pipelining client may have several
        // buffered) before touching the socket again.
        loop {
            let frame = match conn.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(reason) => break 'serve reason,
            };
            let reply = match dispatch_frame(shared, &mut conn, frame) {
                Ok(reply) => reply,
                Err(e) => break 'serve CloseReason::ServiceError(e.to_string()),
            };
            // Count the frame *before* the reply hits the wire: the instant
            // the peer can observe its verdict, the counter already includes
            // it.
            frames += 1;
            shared.frames_served.fetch_add(1, Ordering::Relaxed);
            if let Err(reason) = conn.frame_out(&reply) {
                break 'serve reason;
            }
            if let Err(reason) = flush_replies(&mut stream, &mut conn) {
                break 'serve reason;
            }
            if shared.shutting_down.load(Ordering::SeqCst) {
                break 'serve CloseReason::Shutdown;
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => break conn.peer_closed(),
            Ok(n) => conn.bytes_in(&buf[..n], 0),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                break CloseReason::ReadDeadline;
            }
            Err(e) => break CloseReason::ReadError(e.to_string()),
        }
    };
    // Framing-level rejections enter the books through the shared mapping;
    // an oversized announcement is also answered (the peer is still there).
    if let Some(wire_error) = close.wire_error() {
        match shared.service.reject_unparseable(SessionId(0), &wire_error) {
            Ok(reply) if close.answers_peer() => {
                let _ = write_frame(&mut stream, &reply, shared.limits.max_frame_bytes);
            }
            _ => {}
        }
    }
    shared.log.push(format!("close id={id} frames={frames} ({close})"));
}

/// Dispatches one complete frame per its [`Admission`] and returns the reply
/// bytes.  Session requests are answered inline (opening is cheap and must
/// not queue behind evidence); everything else verifies on the pool.
fn dispatch_frame(
    shared: &Shared,
    conn: &mut Connection,
    frame: Vec<u8>,
) -> Result<Vec<u8>, ServiceError> {
    match conn.admit(&frame) {
        Admission::SessionRequest => match Envelope::decode(&frame) {
            Ok(Envelope { message: Message::SessionRequest(request), .. }) => {
                session_request_reply(&shared.service, &request)
            }
            // The peek was optimistic; let the service classify whatever
            // this really is (counted like any other malformed input).
            _ => shared.service.handle_bytes(&frame),
        },
        Admission::SessionLimit { session } => {
            session_limit_refusal(session, shared.limits.max_sessions_per_connection)
        }
        // Evidence, misdirected kinds, replays and malformed bytes: all
        // verification and classification runs on the pool via
        // `handle_bytes`, which decodes exactly once and never panics.
        Admission::Verify => shared.pool.submit(frame).wait().reply,
    }
}

/// Blocks until the connection's staged reply bytes are on the wire.
fn flush_replies(stream: &mut TcpStream, conn: &mut Connection) -> Result<(), CloseReason> {
    while conn.wants_write() {
        match stream.write(conn.bytes_out()) {
            Ok(0) => return Err(CloseReason::WriteFailed("socket accepted no bytes".into())),
            Ok(n) => conn.consume_out(n),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(CloseReason::WriteFailed(
                    NetError::from_io(e, "writing a frame").to_string(),
                ));
            }
        }
    }
    stream
        .flush()
        .map_err(|e| CloseReason::WriteFailed(NetError::from_io(e, "flushing a frame").to_string()))
}

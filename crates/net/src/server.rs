//! `VerifierServer` — the sharded verifier service behind a TCP listener.
//!
//! The server owns three layers the rest of the workspace already provides
//! and adds only transport:
//!
//! * an accept loop over a [`TcpListener`] with a **bounded connection
//!   count** — beyond [`ServerConfig::max_connections`] the acceptor stops
//!   pulling from the kernel backlog until a slot frees, so a connection
//!   flood backpressures at the socket layer instead of spawning unbounded
//!   threads;
//! * one handler thread per connection enforcing **per-connection read/write
//!   deadlines** and the frame-size bound of [`crate::frame`];
//! * the existing [`ParallelVerifier`] worker pool: every evidence frame is a
//!   `handle_bytes` job, so verification parallelism and verdict semantics
//!   are exactly those of the in-process service.
//!
//! Accounting discipline: the server never touches statistics itself.
//! Well-formed and malformed envelope bytes alike flow through
//! [`VerifierService::handle_bytes`]; framing-level rejections (an oversized
//! length prefix, a frame cut short), where a complete byte string never
//! existed, are reported through [`VerifierService::reject_unparseable`] —
//! the same `record_verdict` path — so the conservation law
//! `opened == accepted + sessions_rejected + expired + live` holds over
//! socket traffic exactly as it does in-process.  Session-request *refusals*
//! (unknown input, capacity, wrong program) mirror the typed
//! [`VerifierService::open_session`] errors, which touch no counters either.
//!
//! Shutdown is graceful: [`VerifierServer::shutdown`] stops the acceptor,
//! nudges idle connections closed, waits for handlers to finish writing the
//! replies already in flight, and drains the pool queue before returning.

use crate::error::NetError;
use crate::frame::{read_frame, write_frame, DEFAULT_MAX_FRAME_BYTES};
use lofat::pool::{ParallelVerifier, PoolConfig};
use lofat::service::{ServiceError, VerifierService};
use lofat::wire::{code, Envelope, Message, SessionId, SessionRequestMsg, VerdictMsg, WireError};
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables of a [`VerifierServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum connections served concurrently; the acceptor waits for a free
    /// slot beyond this (bounded accept queue).
    pub max_connections: usize,
    /// Per-connection read deadline (`None` waits forever; the default is
    /// finite so half-open peers and slow-loris writers cannot pin a handler,
    /// and so shutdown is never blocked on an idle connection).
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline.
    pub write_timeout: Option<Duration>,
    /// Maximum accepted frame payload, in bytes.
    pub max_frame_bytes: usize,
    /// Worker-pool shape for the verification work (see [`PoolConfig`]).
    pub pool: PoolConfig,
    /// When set, every connection event is appended to this file as it
    /// happens (one line per event), so a crashed or failing run leaves its
    /// server log on disk.  The same events are always available in memory
    /// via [`VerifierServer::events`].
    pub log_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            pool: PoolConfig::default(),
            log_path: None,
        }
    }
}

/// Cap on the in-memory event log (oldest entries are dropped first).
const MAX_LOG_LINES: usize = 4096;

struct EventLog {
    lines: Mutex<(u64, std::collections::VecDeque<String>)>,
    file: Option<Mutex<std::fs::File>>,
}

impl EventLog {
    fn new(path: Option<&PathBuf>) -> Self {
        let file = path.and_then(|p| {
            if let Some(dir) = p.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            std::fs::OpenOptions::new().create(true).append(true).open(p).ok().map(Mutex::new)
        });
        Self { lines: Mutex::new((0, std::collections::VecDeque::new())), file }
    }

    fn push(&self, event: String) {
        let line = {
            let mut lines = self.lines.lock().expect("log lock poisoned");
            lines.0 += 1;
            let line = format!("[{:>6}] {event}", lines.0);
            lines.1.push_back(line.clone());
            while lines.1.len() > MAX_LOG_LINES {
                lines.1.pop_front();
            }
            line
        };
        if let Some(file) = &self.file {
            let mut file = file.lock().expect("log file lock poisoned");
            let _ = writeln!(file, "{line}");
        }
    }

    fn snapshot(&self) -> Vec<String> {
        self.lines.lock().expect("log lock poisoned").1.iter().cloned().collect()
    }
}

/// Connection registry: active count for the bounded accept queue plus a
/// read-half handle per live connection so shutdown can nudge idle handlers
/// out of their blocking reads.
#[derive(Default)]
struct Connections {
    active: usize,
    streams: HashMap<u64, TcpStream>,
}

struct Shared {
    service: Arc<VerifierService>,
    pool: ParallelVerifier,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    max_frame_bytes: usize,
    max_connections: usize,
    shutting_down: AtomicBool,
    connections: Mutex<Connections>,
    slot_freed: Condvar,
    connections_served: AtomicU64,
    frames_served: AtomicU64,
    log: EventLog,
}

/// A verifier service listening on a TCP socket.
///
/// Each accepted connection speaks length-prefixed [`Envelope`] frames (see
/// [`crate::frame`]): a [`Message::SessionRequest`] opens a session and is
/// answered with the challenge; an evidence frame is verified on the shared
/// [`ParallelVerifier`] pool and answered with the verdict; anything else —
/// including bytes that do not decode at all — is answered with the rejecting
/// verdict the in-process [`VerifierService`] produces for the same input.
/// One connection may run any number of sessions back to back.
///
/// # Example
///
/// ```
/// use lofat::service::{ServiceConfig, VerifierService};
/// use lofat::{EngineConfig, MeasurementDatabase, Prover, Verifier};
/// use lofat_crypto::DeviceKey;
/// use lofat_net::{ProverClient, ServerConfig, VerifierServer};
/// use lofat_rv32::asm::assemble;
/// use std::sync::Arc;
///
/// let program = assemble(
///     ".text\nmain:\n    li t0, 4\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ecall\n",
/// )?;
/// let key = DeviceKey::from_seed("fleet");
/// let mut prover = Prover::new(program.clone(), "demo", key.clone());
/// let verifier = Verifier::new(program, "demo", key.verification_key())?;
/// let db = MeasurementDatabase::build(&verifier, EngineConfig::default(), vec![vec![]])?;
/// let service = Arc::new(VerifierService::new(
///     db,
///     key.verification_key(),
///     ServiceConfig::default(),
/// ));
///
/// // Serve on an ephemeral loopback port; attest over a real socket.
/// let server = VerifierServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())?;
/// let mut client = ProverClient::connect(server.local_addr())?;
/// let outcome = client.attest(&mut prover, vec![])?;
/// assert!(outcome.verdict.accepted);
/// drop(client);
/// server.shutdown();
/// assert_eq!(service.stats().accepted, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct VerifierServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for VerifierServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifierServer")
            .field("local_addr", &self.local_addr)
            .field("connections_served", &self.connections_served())
            .field("frames_served", &self.frames_served())
            .finish()
    }
}

impl VerifierServer {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port), spawns
    /// the verification pool and the acceptor thread, and starts serving.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the listener cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<VerifierService>,
        config: ServerConfig,
    ) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let pool = ParallelVerifier::spawn(Arc::clone(&service), config.pool);
        let shared = Arc::new(Shared {
            service,
            pool,
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            max_frame_bytes: config.max_frame_bytes,
            max_connections: config.max_connections.max(1),
            shutting_down: AtomicBool::new(false),
            connections: Mutex::new(Connections::default()),
            slot_freed: Condvar::new(),
            connections_served: AtomicU64::new(0),
            frames_served: AtomicU64::new(0),
            log: EventLog::new(config.log_path.as_ref()),
        });
        shared.log.push(format!(
            "listen addr={local_addr} program={} workers={} max_connections={}",
            shared.service.program_id(),
            shared.pool.worker_count(),
            shared.max_connections,
        ));
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lofat-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(Self { shared, local_addr, acceptor: Some(acceptor) })
    }

    /// The bound address (with the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<VerifierService> {
        &self.shared.service
    }

    /// Connections accepted over the server lifetime.
    pub fn connections_served(&self) -> u64 {
        self.shared.connections_served.load(Ordering::Relaxed)
    }

    /// Frames answered over the server lifetime.
    pub fn frames_served(&self) -> u64 {
        self.shared.frames_served.load(Ordering::Relaxed)
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.connections.lock().expect("connection lock poisoned").active
    }

    /// A snapshot of the in-memory event log (the most recent few thousand
    /// events; the full history goes to [`ServerConfig::log_path`] when set).
    pub fn events(&self) -> Vec<String> {
        self.shared.log.snapshot()
    }

    /// Gracefully shuts the server down: stop accepting, nudge idle
    /// connections closed, let handlers finish the replies already in
    /// flight, then drain the verification pool.  In-flight verdicts are
    /// delivered, not dropped.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.log.push("shutdown requested".into());
        // Wake an acceptor waiting for a slot.  No handler is spawned (or
        // registered) after this point: the acceptor re-checks the flag
        // before serving anything it accepts.
        self.shared.slot_freed.notify_all();
        // Close the read half of every live connection: handlers blocked in
        // `read_frame` observe EOF and wind down after flushing their reply;
        // handlers mid-verification still write their verdict (the write
        // half stays open).  This must happen before joining the acceptor —
        // the acceptor joins the handlers, and a handler parked in a read
        // would otherwise hold that join until its deadline.
        {
            let connections = self.shared.connections.lock().expect("connection lock poisoned");
            for stream in connections.streams.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        // Unblock an acceptor parked in accept(), then collect it (it joins
        // every handler on the way out).  A wildcard bind address is not
        // connectable everywhere — aim the wake-up at loopback on the bound
        // port instead.
        let mut wake = self.local_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.shared.log.push(format!(
            "shutdown complete connections={} frames={}",
            self.connections_served(),
            self.frames_served(),
        ));
        // Dropping the last `Shared` handle (handlers are gone) closes the
        // pool queue and joins its workers, draining queued jobs.
    }
}

impl Drop for VerifierServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_id = 0u64;
    loop {
        // Bounded accept queue: do not pull another connection off the
        // backlog until a handler slot is free.
        {
            let mut connections = shared.connections.lock().expect("connection lock poisoned");
            while connections.active >= shared.max_connections
                && !shared.shutting_down.load(Ordering::SeqCst)
            {
                connections = shared.slot_freed.wait(connections).expect("connection lock");
            }
            if shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            connections.active += 1;
        }
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) => {
                release_slot(shared, None);
                shared.log.push(format!("accept error: {e}"));
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            // The wake-up connection from `shutdown` (or anything racing it).
            release_slot(shared, None);
            break;
        }
        next_id += 1;
        let id = next_id;
        shared.connections_served.fetch_add(1, Ordering::Relaxed);
        shared.log.push(format!("accept id={id} peer={peer}"));
        if let Ok(read_half) = stream.try_clone() {
            shared.connections.lock().expect("connection lock").streams.insert(id, read_half);
        }
        handlers.retain(|handle| !handle.is_finished());
        let worker = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("lofat-net-conn-{id}"))
                .spawn(move || {
                    serve_connection(&shared, stream, id);
                    release_slot(&shared, Some(id));
                })
                .expect("spawn connection handler")
        };
        handlers.push(worker);
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

fn release_slot(shared: &Shared, id: Option<u64>) {
    let mut connections = shared.connections.lock().expect("connection lock poisoned");
    connections.active -= 1;
    if let Some(id) = id {
        connections.streams.remove(&id);
    }
    shared.slot_freed.notify_all();
}

/// Serves one connection until the peer closes, a deadline fires, framing
/// desynchronises, or shutdown is requested.
fn serve_connection(shared: &Shared, mut stream: TcpStream, id: u64) {
    let _ = stream.set_read_timeout(shared.read_timeout);
    let _ = stream.set_write_timeout(shared.write_timeout);
    // Verdicts are small frames in a request/response rhythm: never let
    // Nagle hold one back waiting for payload that is not coming.
    let _ = stream.set_nodelay(true);
    let mut frames = 0u64;
    loop {
        let frame = match read_frame(&mut stream, shared.max_frame_bytes) {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                shared.log.push(format!("close id={id} frames={frames} (peer closed)"));
                return;
            }
            Err(NetError::FrameTooLarge { len, max }) => {
                // The length prefix itself is hostile.  No complete byte
                // string exists to feed `handle_bytes`, so report it through
                // the service's shared accounting path, answer the verdict,
                // and close (the stream cannot be resynchronised).
                if let Ok(reply) =
                    shared.service.reject_unparseable(SessionId(0), &WireError::Oversized { len })
                {
                    let _ = write_frame(&mut stream, &reply, shared.max_frame_bytes);
                }
                shared.log.push(format!(
                    "close id={id} frames={frames} (frame of {len} bytes exceeds {max})"
                ));
                return;
            }
            Err(NetError::ClosedMidFrame { got, wanted }) => {
                // A truncated frame still enters the books (same path as a
                // truncated envelope through `handle_bytes`); the peer is
                // gone, so there is nobody to answer.
                let _ = shared.service.reject_unparseable(
                    SessionId(0),
                    &WireError::Truncated { needed: wanted, have: got },
                );
                shared
                    .log
                    .push(format!("close id={id} frames={frames} (mid-frame EOF {got}/{wanted})"));
                return;
            }
            Err(NetError::Timeout { .. }) => {
                shared.log.push(format!("close id={id} frames={frames} (read deadline)"));
                return;
            }
            Err(e) => {
                shared.log.push(format!("close id={id} frames={frames} (read error: {e})"));
                return;
            }
        };
        let reply = if is_session_request_frame(&frame) {
            match Envelope::decode(&frame) {
                Ok(Envelope { message: Message::SessionRequest(request), .. }) => {
                    session_request_reply(shared, &request)
                }
                // The peek was optimistic; let the service classify whatever
                // this really is (counted like any other malformed input).
                _ => shared.service.handle_bytes(&frame),
            }
        } else {
            // Evidence, misdirected kinds, replays and malformed bytes: all
            // verification and classification runs on the pool via
            // `handle_bytes`, which decodes exactly once and never panics.
            shared.pool.submit(frame).wait().reply
        };
        let reply = match reply {
            Ok(reply) => reply,
            Err(e) => {
                shared.log.push(format!("close id={id} frames={frames} (service error: {e})"));
                return;
            }
        };
        // Count the frame *before* the reply hits the wire: the instant the
        // peer can observe its verdict, the counter already includes it.
        frames += 1;
        shared.frames_served.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = write_frame(&mut stream, &reply, shared.max_frame_bytes) {
            shared.log.push(format!("close id={id} frames={frames} (write failed: {e})"));
            return;
        }
        if shared.shutting_down.load(Ordering::SeqCst) {
            shared.log.push(format!("close id={id} frames={frames} (shutdown)"));
            return;
        }
    }
}

/// The serde variant index of [`Message::SessionRequest`] (pinned by the
/// wire-format tests in `lofat::wire`): declaration order `Challenge` = 0,
/// `Evidence` = 1, `Verdict` = 2, `SessionRequest` = 3.
const SESSION_REQUEST_VARIANT: [u8; 4] = 3u32.to_le_bytes();

/// Cheap structural peek: does this frame *look like* a current-version
/// session-request envelope?  Avoids fully decoding evidence bodies (the
/// largest message in the protocol) on the ingest thread just to learn the
/// message kind — evidence goes to the pool, which decodes exactly once.  A
/// false positive merely costs one inline decode; a false negative is
/// impossible for well-formed frames (the fields checked here are fixed
/// offsets of the envelope header).
fn is_session_request_frame(frame: &[u8]) -> bool {
    use lofat::wire::{HEADER_BYTES, WIRE_MAGIC, WIRE_VERSION};
    frame.len() >= HEADER_BYTES + 4
        && frame[..4] == WIRE_MAGIC
        && frame[4..6] == WIRE_VERSION.to_le_bytes()
        && frame[HEADER_BYTES..HEADER_BYTES + 4] == SESSION_REQUEST_VARIANT
}

/// Answers a [`Message::SessionRequest`]: the challenge envelope on success,
/// a refusing verdict otherwise.  Refusals mirror the typed
/// [`VerifierService::open_session`] errors, which do not touch statistics —
/// an unopened session has nothing to conserve.
fn session_request_reply(
    shared: &Shared,
    request: &SessionRequestMsg,
) -> Result<Vec<u8>, ServiceError> {
    let service = &shared.service;
    let refusal = if request.program_id != service.program_id() {
        VerdictMsg::rejected(
            code::PROGRAM_ID_MISMATCH,
            format!(
                "this verifier attests `{}`, not `{}`",
                service.program_id(),
                request.program_id
            ),
        )
    } else {
        match service.open_session(request.input.clone()) {
            Ok(id) => {
                return service.challenge_envelope(id)?.encode().map_err(ServiceError::Wire);
            }
            Err(ServiceError::UnknownInput { input }) => VerdictMsg::rejected(
                code::UNKNOWN_INPUT,
                format!("no reference measurement precomputed for input {input:?}"),
            ),
            Err(ServiceError::AtCapacity { live, max }) => VerdictMsg::rejected(
                code::AT_CAPACITY,
                format!("live-session limit reached ({live}/{max}), try again later"),
            ),
            Err(other) => VerdictMsg::rejected(code::INTERNAL_ERROR, other.to_string()),
        }
    };
    Envelope::new(SessionId(0), Message::Verdict(refusal)).encode().map_err(ServiceError::Wire)
}

//! # `lofat-net` — the LO-FAT attestation protocol over real sockets.
//!
//! Everything below `lofat-net` is sans-I/O: [`lofat::wire`] encodes
//! envelopes, [`lofat::session`] runs the per-round-trip state machines, and
//! [`lofat::service::VerifierService`] (with its
//! [`lofat::pool::ParallelVerifier`] worker pool) judges evidence for
//! thousands of interleaved sessions.  This crate is the first process-visible
//! I/O boundary: it frames those envelope bytes over TCP and nothing else —
//! no verdict, authenticator byte or statistic may depend on whether the
//! round trip crossed a socket (`tests/e14_network.rs` proves this
//! differentially against the in-process service).
//!
//! * [`frame`] — length-prefixed framing with partial-read/short-write
//!   handling and a hostile-length bound;
//! * [`Connection`] — the sans-I/O per-connection state machine (bytes in →
//!   frames, frames out → bytes, deadlines, session multiplexing, typed
//!   [`CloseReason`]s) that **both** transports drive, so their semantics
//!   agree by construction;
//! * [`VerifierServer`] — the blocking transport: one thread per connection,
//!   bounded accept queue, socket deadlines, verification on the
//!   `ParallelVerifier` pool, graceful shutdown that drains in-flight
//!   verdicts;
//! * [`EventLoopServer`] — the readiness-driven transport: every connection
//!   multiplexed onto one epoll loop thread (10k+ concurrent connections),
//!   same config, same semantics;
//! * [`NetLimits`] — the deadline/size knobs shared by [`ServerConfig`] and
//!   [`ClientConfig`];
//! * [`ProverClient`] — drives a `ProverSession` bytes-in/bytes-out against a
//!   remote verifier; [`RawFrameIo`] (via [`ProverClient::raw`]) is the
//!   escape hatch for arbitrary frames — fuzzing, pipelining, interleaved
//!   sessions;
//! * [`FanOutFront`] — a stateless fan-out front multiplexing clients over
//!   `N` partitioned backend verifiers (the multi-process face of
//!   [`lofat::service::ServiceConfig::partition_count`]);
//! * [`NetError`] — typed failures mapping wire rejections onto the stable
//!   [`lofat::wire::code`] reason codes.
//!
//! One session over the wire (framing in [`frame`], messages in
//! [`lofat::wire`]):
//!
//! ```text
//! ProverClient                                VerifierServer
//!      │  frame[ SessionRequest(id_S, i) ]  ──────▶  open_session
//!      │  ◀──────  frame[ Challenge(id_S, i, N) ]    (or refusing Verdict)
//!   attest
//!      │  frame[ Evidence(report) ]  ──────▶  ParallelVerifier → handle_bytes
//!      │  ◀──────  frame[ Verdict(code, detail) ]
//! ```
//!
//! Everything is std (`TcpListener`/`TcpStream` + threads); the crate adds no
//! dependencies beyond the workspace's own.  The only unsafe code is the
//! epoll/rlimit syscall shims in [`event_loop`], each confined to a tiny
//! `sys`-style module.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod error;
pub mod event_loop;
pub mod frame;
pub mod front;
pub mod limits;
pub mod server;

pub use client::{ClientConfig, NetAttestation, ProverClient, RawFrameIo};
pub use conn::{Admission, CloseReason, Connection};
pub use error::NetError;
pub use event_loop::{raise_nofile_limit, EventLoopServer};
pub use frame::{DEFAULT_MAX_FRAME_BYTES, FRAME_HEADER_BYTES};
pub use front::FanOutFront;
pub use limits::{NetLimits, DEFAULT_MAX_SESSIONS_PER_CONNECTION};
pub use server::{ServerConfig, VerifierServer};

//! # `lofat-net` — the LO-FAT attestation protocol over real sockets.
//!
//! Everything below `lofat-net` is sans-I/O: [`lofat::wire`] encodes
//! envelopes, [`lofat::session`] runs the per-round-trip state machines, and
//! [`lofat::service::VerifierService`] (with its
//! [`lofat::pool::ParallelVerifier`] worker pool) judges evidence for
//! thousands of interleaved sessions.  This crate is the first process-visible
//! I/O boundary: it frames those envelope bytes over TCP and nothing else —
//! no verdict, authenticator byte or statistic may depend on whether the
//! round trip crossed a socket (`tests/e14_network.rs` proves this
//! differentially against the in-process service).
//!
//! * [`frame`] — length-prefixed framing with partial-read/short-write
//!   handling and a hostile-length bound;
//! * [`VerifierServer`] — a `TcpListener` front-end for a shared
//!   `VerifierService`: bounded accept queue, per-connection deadlines,
//!   verification on the `ParallelVerifier` pool, graceful shutdown that
//!   drains in-flight verdicts;
//! * [`ProverClient`] — drives a `ProverSession` bytes-in/bytes-out against a
//!   remote verifier;
//! * [`NetError`] — typed failures mapping wire rejections onto the stable
//!   [`lofat::wire::code`] reason codes.
//!
//! One session over the wire (framing in [`frame`], messages in
//! [`lofat::wire`]):
//!
//! ```text
//! ProverClient                                VerifierServer
//!      │  frame[ SessionRequest(id_S, i) ]  ──────▶  open_session
//!      │  ◀──────  frame[ Challenge(id_S, i, N) ]    (or refusing Verdict)
//!   attest
//!      │  frame[ Evidence(report) ]  ──────▶  ParallelVerifier → handle_bytes
//!      │  ◀──────  frame[ Verdict(code, detail) ]
//! ```
//!
//! Everything is std (`TcpListener`/`TcpStream` + threads); the crate adds no
//! dependencies beyond the workspace's own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod frame;
pub mod server;

pub use client::{ClientConfig, NetAttestation, ProverClient};
pub use error::NetError;
pub use frame::{DEFAULT_MAX_FRAME_BYTES, FRAME_HEADER_BYTES};
pub use server::{ServerConfig, VerifierServer};

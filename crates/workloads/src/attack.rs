//! Run-time attack injection (the three attack classes of Fig. 1).
//!
//! The paper's adversary "has full control over the data memory of P and can utilize
//! standard memory corruption vulnerabilities to modify arbitrary writable memory
//! locations", but cannot modify the `rx` code segment.  The constructors in this
//! module return fault-injection hooks with exactly that power; they are plugged
//! into `lofat::Prover::attest_with_adversary` (every `FnMut(&mut Cpu, u64)` is an
//! adversary) and drive experiment E8:
//!
//! * [`poke_at_instruction`] / [`loop_counter_attack`] — class ② (loop-counter
//!   manipulation) and class ① (non-control-data corruption of decision variables);
//! * [`code_pointer_attack`] — class ③ via an in-memory function-pointer table;
//! * [`return_address_attack`] — class ③ via a smashed saved return address
//!   (ROP-style);
//! * [`data_only_attack`] — a pure data-oriented manipulation that does not alter
//!   control flow and is therefore (by design) *not* detectable by control-flow
//!   attestation.

use lofat_rv32::{Cpu, Reg};

/// A boxed fault-injection hook (any `FnMut(&mut Cpu, u64)` works as a
/// `lofat::Adversary`).
pub type Fault = Box<dyn FnMut(&mut Cpu, u64)>;

/// Overwrites the 32-bit word at `addr` with `value` once, just before the
/// instruction with retire-index `at_retired` executes.
pub fn poke_at_instruction(at_retired: u64, addr: u32, value: u32) -> Fault {
    let mut done = false;
    Box::new(move |cpu: &mut Cpu, retired: u64| {
        if !done && retired >= at_retired {
            cpu.memory_mut().poke_bytes(addr, &value.to_le_bytes()).expect("writable memory");
            done = true;
        }
    })
}

/// Class ② — loop-counter manipulation: rewrites the in-memory loop bound (e.g. the
/// requested dispense volume of the syringe pump) early in the run.
pub fn loop_counter_attack(bound_addr: u32, malicious_bound: u32) -> Fault {
    poke_at_instruction(1, bound_addr, malicious_bound)
}

/// Class ① — non-control-data attack: corrupts a data variable that a later branch
/// decision depends on (same mechanics as [`loop_counter_attack`], separated for
/// readability of the experiments).
pub fn non_control_data_attack(decision_addr: u32, malicious_value: u32) -> Fault {
    poke_at_instruction(1, decision_addr, malicious_value)
}

/// Class ③ — code-pointer overwrite: replaces an entry of an in-memory function
/// pointer table so a later indirect call lands on `malicious_target`.
pub fn code_pointer_attack(table_addr: u32, entry_index: u32, malicious_target: u32) -> Fault {
    poke_at_instruction(1, table_addr + 4 * entry_index, malicious_target)
}

/// Class ③ — ROP-style return-address smash: when execution reaches `trigger_pc`
/// (a point after the victim spilled `ra`), the word at `sp + slot_offset` is
/// overwritten with `malicious_target`, so the following `ret` is hijacked.
pub fn return_address_attack(trigger_pc: u32, slot_offset: u32, malicious_target: u32) -> Fault {
    let mut done = false;
    Box::new(move |cpu: &mut Cpu, _retired: u64| {
        if !done && cpu.pc() == trigger_pc {
            let slot = cpu.reg(Reg::SP).wrapping_add(slot_offset);
            cpu.memory_mut()
                .poke_bytes(slot, &malicious_target.to_le_bytes())
                .expect("stack is writable");
            done = true;
        }
    })
}

/// A pure data-oriented attack: corrupts an output value that no branch ever tests,
/// leaving the control flow untouched.  Control-flow attestation does not (and is
/// not claimed to) detect this class (§3).
pub fn data_only_attack(output_addr: u32, malicious_value: u32) -> Fault {
    Box::new(move |cpu: &mut Cpu, retired: u64| {
        // Re-assert the malicious value periodically so the program's own writes do
        // not mask it, but never touch anything control flow depends on.
        if retired > 0 && retired.is_multiple_of(16) {
            cpu.memory_mut()
                .poke_bytes(output_addr, &malicious_value.to_le_bytes())
                .expect("writable memory");
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use lofat_rv32::Cpu;

    fn load(source: &str, input: &[u32]) -> (lofat_rv32::Program, Cpu) {
        let program = programs::build(source).unwrap();
        let mut cpu = Cpu::new(&program).unwrap();
        if !input.is_empty() {
            let addr = program.symbol("input").unwrap();
            let bytes: Vec<u8> = input.iter().flat_map(|w| w.to_le_bytes()).collect();
            cpu.memory_mut().poke_bytes(addr, &bytes).unwrap();
            if let Some(len) = program.symbol("input_len") {
                cpu.memory_mut().poke_bytes(len, &(input.len() as u32).to_le_bytes()).unwrap();
            }
        }
        (program, cpu)
    }

    fn run_with_fault(
        source: &str,
        input: &[u32],
        mut fault: Fault,
    ) -> (lofat_rv32::Program, Cpu, u32) {
        let (program, mut cpu) = load(source, input);
        let result = loop {
            let retired = cpu.instructions();
            fault(&mut cpu, retired);
            if let Some(exit) = cpu.step(&mut lofat_rv32::trace::NullSink).unwrap() {
                break exit.register_a0;
            }
            assert!(cpu.cycles() < 10_000_000);
        };
        (program, cpu, result)
    }

    #[test]
    fn loop_counter_attack_changes_dispensed_volume() {
        let program = programs::build(programs::SYRINGE_PUMP).unwrap();
        let input_addr = program.symbol("input").unwrap();
        let fault = loop_counter_attack(input_addr, 50);
        let (_, _, result) = run_with_fault(programs::SYRINGE_PUMP, &[3], fault);
        assert_eq!(result, 50, "the pump dispenses far more than the requested 3 units");
    }

    #[test]
    fn code_pointer_attack_redirects_dispatch() {
        let program = programs::build(programs::DISPATCH).unwrap();
        let table = program.symbol("table").unwrap();
        let clear_handler = program.symbol("op_clear").unwrap();
        // Redirect opcode 0 (add 5) to the clear handler: the accumulator stays 0.
        let fault = code_pointer_attack(table, 0, clear_handler);
        let (_, _, result) = run_with_fault(programs::DISPATCH, &[0, 0, 0], fault);
        assert_eq!(result, 0);
        assert_eq!(programs::dispatch_expected(&[0, 0, 0]), 15);
    }

    #[test]
    fn return_address_attack_reaches_privileged_code() {
        let program = programs::build(programs::RETURN_VICTIM).unwrap();
        let privileged = program.symbol("privileged").unwrap();
        // Trigger right after `sw ra, 12(sp)` inside `process`; that store is the
        // second instruction of the function.
        let process = program.symbol("process").unwrap();
        let trigger_pc = process + 8;
        let fault = return_address_attack(trigger_pc, 12, privileged);
        let (_, _, result) = run_with_fault(programs::RETURN_VICTIM, &[21], fault);
        assert_eq!(result, 4919, "execution was hijacked into the privileged routine");
        assert_eq!(programs::return_victim_expected(&[21]), 42);
    }

    #[test]
    fn data_only_attack_preserves_control_flow_result() {
        let program = programs::build(programs::SYRINGE_PUMP).unwrap();
        let pulses_addr = program.symbol("motor_pulses").unwrap();
        let fault = data_only_attack(pulses_addr, 9999);
        let (_, cpu, result) = run_with_fault(programs::SYRINGE_PUMP, &[4], fault);
        // The architectural result (a0, derived from registers) is unchanged …
        assert_eq!(result, 4);
        // … but the recorded pulse count in memory was silently corrupted.
        let pulses = cpu.memory().load(pulses_addr, 4).unwrap();
        assert_ne!(pulses, 16);
    }

    #[test]
    fn poke_fires_exactly_once() {
        let program = programs::build(programs::FIG4_LOOP).unwrap();
        let input_addr = program.symbol("input").unwrap();
        let mut fault = poke_at_instruction(3, input_addr, 1);
        let mut cpu = Cpu::new(&program).unwrap();
        cpu.memory_mut().poke_bytes(input_addr, &5u32.to_le_bytes()).unwrap();
        for _ in 0..4 {
            let retired = cpu.instructions();
            fault(&mut cpu, retired);
            cpu.step(&mut lofat_rv32::trace::NullSink).unwrap();
        }
        assert_eq!(cpu.memory().load(input_addr, 4).unwrap(), 1);
        // Later program writes are not re-overwritten by the one-shot fault.
        cpu.memory_mut().poke_bytes(input_addr, &7u32.to_le_bytes()).unwrap();
        let retired = cpu.instructions();
        fault(&mut cpu, retired);
        assert_eq!(cpu.memory().load(input_addr, 4).unwrap(), 7);
    }
}

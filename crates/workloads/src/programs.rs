//! The RV32 assembly sources of the evaluation workloads.
//!
//! Every workload follows the same conventions: the verifier input is written (by
//! the prover) into the `input` buffer with the word count in `input_len` when
//! present, the result is returned in `a0` and the program terminates with `ecall`.

use lofat_rv32::asm::assemble;
use lofat_rv32::{Program, Rv32Error};

/// The Fig. 4 example: `while (cond1) { if (cond2) bb4 else bb5; bb6 }`.
///
/// Input: `[iterations]`.  Result: sum of 10 per odd counter value and 1 per even.
pub const FIG4_LOOP: &str = r#"
    .data
    input:
        .space 8
    .text
    main:
        la   t0, input
        lw   t0, 0(t0)         # loop bound (cond1 counter)
        li   a0, 0
    while_head:
        beqz t0, exit          # N2
        andi t1, t0, 1
        beqz t1, else_arm      # N3
        addi a0, a0, 10        # N4 (then)
        j    body_end
    else_arm:
        addi a0, a0, 1         # N5 (else)
    body_end:
        addi t0, t0, -1        # N6
        j    while_head
    exit:
        ecall                  # N7
"#;

/// Reference model of [`FIG4_LOOP`].
pub fn fig4_loop_expected(input: &[u32]) -> u32 {
    let n = input.first().copied().unwrap_or(0);
    (1..=n).map(|k| if k % 2 == 1 { 10 } else { 1 }).sum()
}

/// Syringe-pump controller: the paper's motivating embedded application.
///
/// Input: `[requested_units]`.  Each unit drives four motor pulses through a nested
/// loop; the dispensed amount and pulse count are recorded in data memory.  Result:
/// dispensed units.
pub const SYRINGE_PUMP: &str = r#"
    .data
    input:
        .space 8
    dispensed:
        .word 0
    motor_pulses:
        .word 0
    .text
    main:
        la   t0, input
        lw   t1, 0(t0)         # requested units
        li   t2, 0             # dispensed so far
        beqz t1, pump_done
    dispense_loop:
        li   t3, 4             # pulses per unit
    pulse_loop:
        la   t4, motor_pulses
        lw   t5, 0(t4)
        addi t5, t5, 1
        sw   t5, 0(t4)
        addi t3, t3, -1
        bnez t3, pulse_loop
        addi t2, t2, 1
        blt  t2, t1, dispense_loop
    pump_done:
        la   t4, dispensed
        sw   t2, 0(t4)
        mv   a0, t2
        ecall
"#;

/// Reference model of [`SYRINGE_PUMP`].
pub fn syringe_pump_expected(input: &[u32]) -> u32 {
    input.first().copied().unwrap_or(0)
}

/// In-place bubble sort of `input[0..input_len]`.  Result: number of swaps.
pub const BUBBLE_SORT: &str = r#"
    .data
    input:
        .space 256
    input_len:
        .word 0
    .text
    main:
        la   s0, input
        la   t0, input_len
        lw   s1, 0(t0)         # n
        li   a0, 0             # swap count
        li   t6, 1
        ble  s1, t6, sort_done
    outer_loop:
        li   t1, 0             # i
        li   t2, 0             # swapped flag
        addi t3, s1, -1        # n - 1
    inner_loop:
        slli t4, t1, 2
        add  t4, s0, t4
        lw   t5, 0(t4)
        lw   t6, 4(t4)
        ble  t5, t6, no_swap
        sw   t6, 0(t4)
        sw   t5, 4(t4)
        addi a0, a0, 1
        li   t2, 1
    no_swap:
        addi t1, t1, 1
        blt  t1, t3, inner_loop
        bnez t2, outer_loop
    sort_done:
        ecall
"#;

/// Reference model of [`BUBBLE_SORT`] (returns the swap count of a bubble sort with
/// early exit, matching the assembly).
pub fn bubble_sort_expected(input: &[u32]) -> u32 {
    let mut data: Vec<i32> = input.iter().map(|&w| w as i32).collect();
    let n = data.len();
    let mut swaps = 0;
    if n <= 1 {
        return 0;
    }
    loop {
        let mut swapped = false;
        for i in 0..n - 1 {
            if data[i] > data[i + 1] {
                data.swap(i, i + 1);
                swaps += 1;
                swapped = true;
            }
        }
        if !swapped {
            break;
        }
    }
    swaps
}

/// Word-wise CRC-32 (reflected polynomial 0xEDB88320) over `input[0..input_len]`.
pub const CRC32: &str = r#"
    .data
    input:
        .space 256
    input_len:
        .word 0
    .text
    main:
        la   s0, input
        la   t0, input_len
        lw   s1, 0(t0)
        li   a0, -1            # crc = 0xFFFFFFFF
        li   s2, 0             # word index
        li   s3, 0xEDB88320
        beqz s1, crc_done
    word_loop:
        slli t1, s2, 2
        add  t1, s0, t1
        lw   t2, 0(t1)
        xor  a0, a0, t2
        li   t3, 32
    bit_loop:
        andi t4, a0, 1
        srli a0, a0, 1
        beqz t4, no_poly
        xor  a0, a0, s3
    no_poly:
        addi t3, t3, -1
        bnez t3, bit_loop
        addi s2, s2, 1
        blt  s2, s1, word_loop
    crc_done:
        xori a0, a0, -1
        ecall
"#;

/// Reference model of [`CRC32`].
pub fn crc32_expected(input: &[u32]) -> u32 {
    let mut crc = u32::MAX;
    for &word in input {
        crc ^= word;
        for _ in 0..32 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// Recursive Fibonacci.  Input: `[n]` (kept small).  Result: `fib(n)`.
pub const FIBONACCI: &str = r#"
    .data
    input:
        .space 8
    .text
    main:
        la   t0, input
        lw   a0, 0(t0)
        call fib
        ecall
    fib:
        li   t0, 2
        blt  a0, t0, fib_base
        addi sp, sp, -16
        sw   ra, 12(sp)
        sw   a0, 8(sp)
        addi a0, a0, -1
        call fib
        sw   a0, 4(sp)
        lw   a0, 8(sp)
        addi a0, a0, -2
        call fib
        lw   t1, 4(sp)
        add  a0, a0, t1
        lw   ra, 12(sp)
        addi sp, sp, 16
        ret
    fib_base:
        ret
"#;

/// Reference model of [`FIBONACCI`].
pub fn fibonacci_expected(input: &[u32]) -> u32 {
    fn fib(n: u32) -> u32 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }
    fib(input.first().copied().unwrap_or(0))
}

/// Matrix-product checksum with three nested loops and no memory traffic:
/// `sum over i,j,k of (i+k)*(k+j)` for an `n × n` problem.  Input: `[n]`.
pub const MATRIX_CHECKSUM: &str = r#"
    .data
    input:
        .space 8
    .text
    main:
        la   t0, input
        lw   s1, 0(t0)         # n
        li   a0, 0
        li   s2, 0             # i
        beqz s1, mat_done
    i_loop:
        li   s3, 0             # j
    j_loop:
        li   s4, 0             # k
    k_loop:
        add  t1, s2, s4        # i + k
        add  t2, s4, s3        # k + j
        mul  t3, t1, t2
        add  a0, a0, t3
        addi s4, s4, 1
        blt  s4, s1, k_loop
        addi s3, s3, 1
        blt  s3, s1, j_loop
        addi s2, s2, 1
        blt  s2, s1, i_loop
    mat_done:
        ecall
"#;

/// Reference model of [`MATRIX_CHECKSUM`].
pub fn matrix_checksum_expected(input: &[u32]) -> u32 {
    let n = input.first().copied().unwrap_or(0);
    let mut acc = 0u32;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                acc = acc.wrapping_add((i + k).wrapping_mul(k + j));
            }
        }
    }
    acc
}

/// A byte-code interpreter dispatching through an in-memory function-pointer table:
/// the indirect-call-in-a-loop pattern of §5.2.  Input: `input_len` opcodes in
/// `input` (taken modulo 4).  Result: the accumulator after interpreting them.
pub const DISPATCH: &str = r#"
    .data
    input:
        .space 256
    input_len:
        .word 0
    table:
        .word op_add, op_sub, op_double, op_clear
    .text
    main:
        la   s0, input
        la   t0, input_len
        lw   s1, 0(t0)
        la   s2, table
        li   a0, 0
        li   s3, 0             # index
        beqz s1, dispatch_done
    dispatch_loop:
        slli t1, s3, 2
        add  t1, s0, t1
        lw   t2, 0(t1)         # opcode
        andi t2, t2, 3
        slli t2, t2, 2
        add  t2, s2, t2
        lw   t3, 0(t2)         # handler address
        jalr ra, t3, 0         # indirect call
        addi s3, s3, 1
        blt  s3, s1, dispatch_loop
    dispatch_done:
        ecall
    op_add:
        addi a0, a0, 5
        ret
    op_sub:
        addi a0, a0, -1
        ret
    op_double:
        add  a0, a0, a0
        ret
    op_clear:
        li   a0, 0
        ret
"#;

/// Reference model of [`DISPATCH`].
pub fn dispatch_expected(input: &[u32]) -> u32 {
    let mut acc = 0u32;
    for &op in input {
        match op % 4 {
            0 => acc = acc.wrapping_add(5),
            1 => acc = acc.wrapping_sub(1),
            2 => acc = acc.wrapping_add(acc),
            _ => acc = 0,
        }
    }
    acc
}

/// Three-level nested counting loops with independently controlled trip counts.
/// Input: `[n1, n2, n3]`.  Result: `n1 * n2 * n3`.
pub const NESTED_LOOPS: &str = r#"
    .data
    input:
        .space 16
    .text
    main:
        la   t0, input
        lw   s1, 0(t0)         # n1
        lw   s2, 4(t0)         # n2
        lw   s3, 8(t0)         # n3
        li   a0, 0
        li   s4, 0
        beqz s1, nest_done
        beqz s2, nest_done
        beqz s3, nest_done
    level1:
        li   s5, 0
    level2:
        li   s6, 0
    level3:
        addi a0, a0, 1
        addi s6, s6, 1
        blt  s6, s3, level3
        addi s5, s5, 1
        blt  s5, s2, level2
        addi s4, s4, 1
        blt  s4, s1, level1
    nest_done:
        ecall
"#;

/// Reference model of [`NESTED_LOOPS`].
pub fn nested_loops_expected(input: &[u32]) -> u32 {
    let n1 = input.first().copied().unwrap_or(0);
    let n2 = input.get(1).copied().unwrap_or(0);
    let n3 = input.get(2).copied().unwrap_or(0);
    n1 * n2 * n3
}

/// A loop whose body contains three data-dependent diamonds: 2³ = 8 distinct paths
/// per iteration, exercising the path encoder and the metadata size (E7).
/// Input: `[iterations]`.  Result: a data-dependent accumulator.
pub const DIAMOND_PATHS: &str = r#"
    .data
    input:
        .space 8
    .text
    main:
        la   t0, input
        lw   s1, 0(t0)         # iterations
        li   a0, 0
        li   s2, 0             # counter
        beqz s1, diamond_done
    diamond_loop:
        andi t1, s2, 1
        beqz t1, skip_one
        addi a0, a0, 1
    skip_one:
        andi t1, s2, 2
        beqz t1, skip_two
        addi a0, a0, 10
    skip_two:
        andi t1, s2, 4
        beqz t1, skip_four
        addi a0, a0, 100
    skip_four:
        addi s2, s2, 1
        blt  s2, s1, diamond_loop
    diamond_done:
        ecall
"#;

/// Reference model of [`DIAMOND_PATHS`].
pub fn diamond_paths_expected(input: &[u32]) -> u32 {
    let n = input.first().copied().unwrap_or(0);
    let mut acc = 0;
    for counter in 0..n {
        if counter & 1 != 0 {
            acc += 1;
        }
        if counter & 2 != 0 {
            acc += 10;
        }
        if counter & 4 != 0 {
            acc += 100;
        }
    }
    acc
}

/// A victim routine that spills its return address to the stack, plus a privileged
/// routine that must never execute in benign runs — the target of the code-pointer
/// (ROP-style) attack of experiment E8.  Input: `[value]`.  Benign result: `2·value`.
pub const RETURN_VICTIM: &str = r#"
    .data
    input:
        .space 8
    .text
    main:
        la   t0, input
        lw   a0, 0(t0)
        call process
        ecall
    process:
        addi sp, sp, -16
        sw   ra, 12(sp)
        add  a0, a0, a0
        lw   ra, 12(sp)
        addi sp, sp, 16
        ret
    privileged:
        li   a0, 4919          # 0x1337 — "unlock the syringe pump"
        ecall
"#;

/// Reference model of [`RETURN_VICTIM`] (benign behaviour).
pub fn return_victim_expected(input: &[u32]) -> u32 {
    2 * input.first().copied().unwrap_or(0)
}

/// Assembles one of the workload sources.
///
/// # Errors
///
/// Returns the assembler error if the source is malformed (never the case for the
/// constants in this module — covered by tests).
pub fn build(source: &str) -> Result<Program, Rv32Error> {
    assemble(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lofat_rv32::Cpu;

    fn run(source: &str, input: &[u32]) -> u32 {
        let program = build(source).expect("assemble");
        let mut cpu = Cpu::new(&program).expect("load");
        if !input.is_empty() {
            let addr = program.symbol("input").expect("input symbol");
            let bytes: Vec<u8> = input.iter().flat_map(|w| w.to_le_bytes()).collect();
            cpu.memory_mut().poke_bytes(addr, &bytes).unwrap();
            if let Some(len) = program.symbol("input_len") {
                cpu.memory_mut().poke_bytes(len, &(input.len() as u32).to_le_bytes()).unwrap();
            }
        }
        cpu.run(10_000_000).expect("run").register_a0
    }

    #[test]
    fn fig4_loop_matches_reference() {
        for n in [0u32, 1, 2, 5, 9] {
            assert_eq!(run(FIG4_LOOP, &[n]), fig4_loop_expected(&[n]), "n = {n}");
        }
    }

    #[test]
    fn syringe_pump_matches_reference() {
        for units in [0u32, 1, 3, 10] {
            assert_eq!(run(SYRINGE_PUMP, &[units]), syringe_pump_expected(&[units]));
        }
    }

    #[test]
    fn syringe_pump_records_motor_pulses() {
        let program = build(SYRINGE_PUMP).unwrap();
        let mut cpu = Cpu::new(&program).unwrap();
        let addr = program.symbol("input").unwrap();
        cpu.memory_mut().poke_bytes(addr, &5u32.to_le_bytes()).unwrap();
        cpu.run(1_000_000).unwrap();
        let pulses_addr = program.symbol("motor_pulses").unwrap();
        let pulses = cpu.memory().load(pulses_addr, 4).unwrap();
        assert_eq!(pulses, 20, "4 pulses per dispensed unit");
    }

    #[test]
    fn bubble_sort_matches_reference_and_sorts() {
        let inputs: &[&[u32]] = &[&[], &[7], &[3, 1, 2], &[9, 8, 7, 6, 5, 4, 3, 2, 1], &[5, 5, 5]];
        for input in inputs {
            assert_eq!(run(BUBBLE_SORT, input), bubble_sort_expected(input), "{input:?}");
        }
        // And the array really ends up sorted.
        let program = build(BUBBLE_SORT).unwrap();
        let mut cpu = Cpu::new(&program).unwrap();
        let input = [4u32, 2, 9, 1, 7];
        let addr = program.symbol("input").unwrap();
        let bytes: Vec<u8> = input.iter().flat_map(|w| w.to_le_bytes()).collect();
        cpu.memory_mut().poke_bytes(addr, &bytes).unwrap();
        cpu.memory_mut()
            .poke_bytes(program.symbol("input_len").unwrap(), &5u32.to_le_bytes())
            .unwrap();
        cpu.run(1_000_000).unwrap();
        let sorted: Vec<u32> =
            (0..5).map(|i| cpu.memory().load(addr + 4 * i, 4).unwrap()).collect();
        assert_eq!(sorted, vec![1, 2, 4, 7, 9]);
    }

    #[test]
    fn crc32_matches_reference() {
        let inputs: &[&[u32]] = &[&[], &[0], &[0xdead_beef], &[1, 2, 3, 4, 5]];
        for input in inputs {
            assert_eq!(run(CRC32, input), crc32_expected(input), "{input:?}");
        }
    }

    #[test]
    fn fibonacci_matches_reference() {
        for n in [0u32, 1, 2, 7, 10] {
            assert_eq!(run(FIBONACCI, &[n]), fibonacci_expected(&[n]), "n = {n}");
        }
    }

    #[test]
    fn matrix_checksum_matches_reference() {
        for n in [0u32, 1, 3, 5] {
            assert_eq!(run(MATRIX_CHECKSUM, &[n]), matrix_checksum_expected(&[n]), "n = {n}");
        }
    }

    #[test]
    fn dispatch_matches_reference() {
        let inputs: &[&[u32]] = &[&[], &[0, 0, 1], &[0, 2, 1, 3, 0], &[7, 6, 5, 4]];
        for input in inputs {
            assert_eq!(run(DISPATCH, input), dispatch_expected(input), "{input:?}");
        }
    }

    #[test]
    fn nested_loops_match_reference() {
        let inputs: &[&[u32]] = &[&[0, 5, 5], &[2, 3, 4], &[1, 1, 1], &[3, 0, 2]];
        for input in inputs {
            assert_eq!(run(NESTED_LOOPS, input), nested_loops_expected(input), "{input:?}");
        }
    }

    #[test]
    fn diamond_paths_match_reference() {
        for n in [0u32, 1, 7, 16] {
            assert_eq!(run(DIAMOND_PATHS, &[n]), diamond_paths_expected(&[n]), "n = {n}");
        }
    }

    #[test]
    fn return_victim_benign_behaviour() {
        for v in [0u32, 21, 100] {
            assert_eq!(run(RETURN_VICTIM, &[v]), return_victim_expected(&[v]));
        }
    }
}

/// Euclid's algorithm.  Input: `[a, b]`.  Result: `gcd(a, b)`.
pub const GCD: &str = r#"
    .data
    input:
        .space 8
    .text
    main:
        la   t0, input
        lw   a0, 0(t0)
        lw   a1, 4(t0)
    gcd_loop:
        beqz a1, gcd_done
        remu t1, a0, a1
        mv   a0, a1
        mv   a1, t1
        j    gcd_loop
    gcd_done:
        ecall
"#;

/// Reference model of [`GCD`].
pub fn gcd_expected(input: &[u32]) -> u32 {
    let mut a = input.first().copied().unwrap_or(0);
    let mut b = input.get(1).copied().unwrap_or(0);
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Iterative binary search over a sorted array.
/// Input: `[target, sorted values...]` with `input_len` covering all words.
/// Result: the index of the probe that matched (data-dependent search path), or
/// `0xffffffff` when the target is absent.
pub const BINARY_SEARCH: &str = r#"
    .data
    input:
        .space 256
    input_len:
        .word 0
    .text
    main:
        la   s0, input
        la   t0, input_len
        lw   t1, 0(t0)         # total input words
        lw   s1, 0(s0)         # target
        addi s0, s0, 4         # array base
        addi t1, t1, -1        # n
        li   t2, 0             # lo
        mv   t3, t1            # hi (exclusive)
        li   a0, -1
        blez t1, bsearch_done
    bsearch_loop:
        bgeu t2, t3, bsearch_done
        add  t4, t2, t3
        srli t4, t4, 1         # mid
        slli t5, t4, 2
        add  t5, s0, t5
        lw   t6, 0(t5)         # a[mid]
        beq  t6, s1, bsearch_found
        bltu t6, s1, bsearch_right
        mv   t3, t4            # hi = mid
        j    bsearch_loop
    bsearch_right:
        addi t2, t4, 1         # lo = mid + 1
        j    bsearch_loop
    bsearch_found:
        mv   a0, t4
    bsearch_done:
        ecall
"#;

/// Reference model of [`BINARY_SEARCH`] (replicates the same probe sequence).
pub fn binary_search_expected(input: &[u32]) -> u32 {
    let Some((&target, array)) = input.split_first() else { return u32::MAX };
    if array.is_empty() {
        return u32::MAX;
    }
    let mut lo = 0u32;
    let mut hi = array.len() as u32;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let value = array[mid as usize];
        if value == target {
            return mid;
        }
        if value < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    u32::MAX
}

#[cfg(test)]
mod extra_workload_tests {
    use super::*;
    use lofat_rv32::Cpu;

    fn run(source: &str, input: &[u32]) -> u32 {
        let program = build(source).expect("assemble");
        let mut cpu = Cpu::new(&program).expect("load");
        if !input.is_empty() {
            let addr = program.symbol("input").expect("input symbol");
            let bytes: Vec<u8> = input.iter().flat_map(|w| w.to_le_bytes()).collect();
            cpu.memory_mut().poke_bytes(addr, &bytes).unwrap();
            if let Some(len) = program.symbol("input_len") {
                cpu.memory_mut().poke_bytes(len, &(input.len() as u32).to_le_bytes()).unwrap();
            }
        }
        cpu.run(10_000_000).expect("run").register_a0
    }

    #[test]
    fn gcd_matches_reference() {
        let cases: &[&[u32]] = &[&[0, 0], &[12, 0], &[0, 12], &[1071, 462], &[17, 5], &[48, 36]];
        for input in cases {
            assert_eq!(run(GCD, input), gcd_expected(input), "{input:?}");
        }
    }

    #[test]
    fn binary_search_matches_reference() {
        let sorted = [2u32, 5, 8, 13, 23, 42, 77, 100];
        for target in [2u32, 13, 23, 100, 3, 999, 0] {
            let mut input = vec![target];
            input.extend_from_slice(&sorted);
            assert_eq!(
                run(BINARY_SEARCH, &input),
                binary_search_expected(&input),
                "target {target}"
            );
        }
        // Degenerate inputs: empty array and single element.
        assert_eq!(run(BINARY_SEARCH, &[7]), binary_search_expected(&[7]));
        assert_eq!(run(BINARY_SEARCH, &[7, 7]), binary_search_expected(&[7, 7]));
        assert_eq!(run(BINARY_SEARCH, &[7, 9]), binary_search_expected(&[7, 9]));
    }
}

//! Seeded random input generation for the evaluation workloads.

use crate::catalog::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic (seeded) workload input generator.
#[derive(Debug)]
pub struct InputGenerator {
    rng: StdRng,
}

impl InputGenerator {
    /// Creates a generator from a seed; the same seed always produces the same
    /// sequence of inputs, which keeps benches and experiments reproducible.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// Generates an input vector of `len` words for a variable-length workload, or a
    /// scaled variant of the default input for fixed-shape workloads.
    pub fn input_for(&mut self, workload: &Workload, len: usize) -> Vec<u32> {
        if workload.variable_length_input {
            (0..len).map(|_| self.rng.gen_range(0..1000)).collect()
        } else {
            // Fixed-shape workloads take small scalar parameters; scale the first
            // word with `len` and keep the rest of the default shape.
            let mut input = workload.default_input.clone();
            if let Some(first) = input.first_mut() {
                *first = len as u32;
            }
            input
        }
    }

    /// Generates a random permutation-ish array for sorting workloads.
    pub fn array(&mut self, len: usize, max_value: u32) -> Vec<u32> {
        (0..len).map(|_| self.rng.gen_range(0..=max_value)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn same_seed_same_inputs() {
        let workload = catalog::by_name("bubble-sort").unwrap();
        let a = InputGenerator::new(7).input_for(&workload, 16);
        let b = InputGenerator::new(7).input_for(&workload, 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn fixed_shape_workloads_scale_first_word() {
        let workload = catalog::by_name("matrix-checksum").unwrap();
        let input = InputGenerator::new(1).input_for(&workload, 6);
        assert_eq!(input[0], 6);
        assert_eq!(input.len(), workload.default_input.len());
    }

    #[test]
    fn arrays_respect_bounds() {
        let mut generator = InputGenerator::new(3);
        let array = generator.array(100, 50);
        assert_eq!(array.len(), 100);
        assert!(array.iter().all(|&v| v <= 50));
    }
}

//! Evaluation workloads, input generators and attack injection for LO-FAT.
//!
//! The paper evaluates LO-FAT on "extracted code segments from real embedded
//! applications, such as Open Syringe Pump".  This crate provides the equivalent
//! corpus for the reproduction: hand-written RV32 assembly programs with realistic
//! loop/branch/call structure (a syringe-pump controller, sorting, CRC, recursion,
//! matrix arithmetic, an indirect-dispatch interpreter, the Fig. 4 example loop and
//! synthetic stress kernels), plus:
//!
//! * [`catalog`] — a [`catalog::Workload`] descriptor per program with a reference
//!   model, so tests and benches can validate functional correctness and sweep
//!   inputs;
//! * [`generator`] — seeded random input generation;
//! * [`attack`] — fault-injection adversaries implementing the three run-time attack
//!   classes of Fig. 1 (non-control-data, loop-counter manipulation and code-pointer
//!   overwrite) plus a pure data-oriented attack that control-flow attestation by
//!   design does not detect.
//!
//! # Example
//!
//! ```
//! use lofat_workloads::catalog;
//!
//! for workload in catalog::all() {
//!     let program = workload.program()?;
//!     assert!(program.symbol("main").is_some());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod catalog;
pub mod generator;
pub mod programs;

pub use catalog::{all, Workload};

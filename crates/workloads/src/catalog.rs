//! The workload catalogue used by tests, examples and the benchmark harness.

use crate::programs;
use lofat_rv32::{Program, Rv32Error};

/// Reference model: computes the expected `a0` result for a given input.
pub type ReferenceModel = fn(&[u32]) -> u32;

/// One evaluation workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short identifier (used as the program id in the attestation protocol).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// RV32 assembly source.
    pub source: &'static str,
    /// A representative input.
    pub default_input: Vec<u32>,
    /// Reference model producing the expected result for an input.
    pub expected: ReferenceModel,
    /// Whether the workload reads `input_len` (i.e. accepts variable-length inputs).
    pub variable_length_input: bool,
}

impl Workload {
    /// Assembles the workload.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (the catalogue's sources are covered by tests and
    /// always assemble).
    pub fn program(&self) -> Result<Program, Rv32Error> {
        programs::build(self.source)
    }

    /// Expected result for `input` according to the reference model.
    pub fn expected_result(&self, input: &[u32]) -> u32 {
        (self.expected)(input)
    }
}

/// All workloads of the evaluation corpus.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "fig4-loop",
            description: "the paper's Fig. 4 while/if-else loop",
            source: programs::FIG4_LOOP,
            default_input: vec![6],
            expected: programs::fig4_loop_expected,
            variable_length_input: false,
        },
        Workload {
            name: "syringe-pump",
            description: "syringe-pump controller with nested pulse loop",
            source: programs::SYRINGE_PUMP,
            default_input: vec![8],
            expected: programs::syringe_pump_expected,
            variable_length_input: false,
        },
        Workload {
            name: "bubble-sort",
            description: "in-place bubble sort with data-dependent swaps",
            source: programs::BUBBLE_SORT,
            default_input: vec![9, 3, 7, 1, 8, 2],
            expected: programs::bubble_sort_expected,
            variable_length_input: true,
        },
        Workload {
            name: "crc32",
            description: "word-wise CRC-32 with a 32-iteration bit loop",
            source: programs::CRC32,
            default_input: vec![0xdead_beef, 0x1234_5678, 42],
            expected: programs::crc32_expected,
            variable_length_input: true,
        },
        Workload {
            name: "fibonacci",
            description: "recursive Fibonacci (call/return heavy)",
            source: programs::FIBONACCI,
            default_input: vec![9],
            expected: programs::fibonacci_expected,
            variable_length_input: false,
        },
        Workload {
            name: "matrix-checksum",
            description: "triple-nested loop matrix-product checksum",
            source: programs::MATRIX_CHECKSUM,
            default_input: vec![4],
            expected: programs::matrix_checksum_expected,
            variable_length_input: false,
        },
        Workload {
            name: "dispatch",
            description: "byte-code interpreter with indirect calls in a loop",
            source: programs::DISPATCH,
            default_input: vec![0, 0, 2, 1, 0, 3, 0],
            expected: programs::dispatch_expected,
            variable_length_input: true,
        },
        Workload {
            name: "nested-loops",
            description: "three-level nested counting loops",
            source: programs::NESTED_LOOPS,
            default_input: vec![3, 4, 5],
            expected: programs::nested_loops_expected,
            variable_length_input: false,
        },
        Workload {
            name: "diamond-paths",
            description: "loop with 8 distinct paths per iteration",
            source: programs::DIAMOND_PATHS,
            default_input: vec![12],
            expected: programs::diamond_paths_expected,
            variable_length_input: false,
        },
        Workload {
            name: "return-victim",
            description: "victim routine spilling its return address (attack target)",
            source: programs::RETURN_VICTIM,
            default_input: vec![21],
            expected: programs::return_victim_expected,
            variable_length_input: false,
        },
        Workload {
            name: "gcd",
            description: "Euclid's algorithm (data-dependent loop trip count)",
            source: programs::GCD,
            default_input: vec![1071, 462],
            expected: programs::gcd_expected,
            variable_length_input: false,
        },
        Workload {
            name: "binary-search",
            description: "binary search with a data-dependent probe path",
            source: programs::BINARY_SEARCH,
            default_input: vec![23, 2, 5, 8, 13, 23, 42, 77, 100],
            expected: programs::binary_search_expected,
            variable_length_input: true,
        },
    ]
}

/// Looks up a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lofat_rv32::Cpu;

    #[test]
    fn catalogue_is_nonempty_and_names_are_unique() {
        let workloads = all();
        assert!(workloads.len() >= 10);
        let mut names: Vec<_> = workloads.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), workloads.len());
    }

    #[test]
    fn every_workload_assembles_and_matches_its_reference_on_default_input() {
        for workload in all() {
            let program = workload
                .program()
                .unwrap_or_else(|e| panic!("workload `{}` failed to assemble: {e}", workload.name));
            let mut cpu = Cpu::new(&program).unwrap();
            let input = &workload.default_input;
            if !input.is_empty() {
                let addr = program.symbol("input").expect("input symbol");
                let bytes: Vec<u8> = input.iter().flat_map(|w| w.to_le_bytes()).collect();
                cpu.memory_mut().poke_bytes(addr, &bytes).unwrap();
                if let Some(len) = program.symbol("input_len") {
                    cpu.memory_mut().poke_bytes(len, &(input.len() as u32).to_le_bytes()).unwrap();
                }
            }
            let exit = cpu.run(10_000_000).unwrap();
            assert_eq!(
                exit.register_a0,
                workload.expected_result(input),
                "workload `{}` result mismatch",
                workload.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("syringe-pump").is_some());
        assert!(by_name("does-not-exist").is_none());
    }
}

//! Result artifacts: the fleet manifest as JSON (full and golden projection)
//! and CSV, rendered through the shared [`JsonWriter`] so they match the
//! bench-trajectory documents structurally.
//!
//! Three views of one [`FleetReport`]:
//!
//! * [`manifest_json`] — everything, including latency percentiles and the
//!   wire-level counters that legitimately differ between transports.
//! * [`manifest_golden_json`] — only the fields that are **deterministic
//!   across runs and transports** (verdict breakdowns and session-spending
//!   statistics).  CI compares this byte-for-byte against a committed golden.
//! * [`manifest_csv`] — one scenario per row, for spreadsheets and quick
//!   `grep`.

use crate::exec::{FleetReport, ScenarioOutcome};
use lofat::json::JsonWriter;
use lofat::service::codes_summary;

/// Schema version stamped into every manifest document.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

fn scenario_identity(w: &mut JsonWriter, outcome: &ScenarioOutcome) {
    w.field_u64("job", outcome.job.index as u64);
    w.field_str("workload", &outcome.job.workload);
    w.field_str("transport", outcome.transport.name());
    w.field_u64("clients", outcome.job.clients as u64);
    w.field_str("arrival", outcome.job.arrival.name());
    w.field_str("fault", outcome.job.fault.name());
    w.field_u64("scale", outcome.job.scale as u64);
}

fn scenario_deterministic(w: &mut JsonWriter, outcome: &ScenarioOutcome) {
    w.field_str("verdicts", &codes_summary(&outcome.verdicts));
    w.field_u64("verdict_total", outcome.verdict_total);
    w.field_u64("accepted_verdicts", outcome.accepted_verdicts);
    w.field_u64("opened", outcome.stats.sessions_opened);
    w.field_u64("accepted", outcome.stats.accepted);
    w.field_u64("sessions_rejected", outcome.stats.sessions_rejected);
    w.field_u64("expired", outcome.stats.expired);
    w.field_u64("replays_blocked", outcome.stats.replays_blocked);
    w.field_u64("live", outcome.live as u64);
    w.field_bool("conserved", outcome.conserved);
}

fn document(report: &FleetReport, full: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object(None);
    w.field_u64("schema_version", MANIFEST_SCHEMA_VERSION);
    w.field_str("fleet", &report.spec_name);
    w.field_u64("scenarios_run", report.outcomes.len() as u64);
    w.begin_array(Some("scenarios"));
    for outcome in &report.outcomes {
        w.begin_object(None);
        scenario_identity(&mut w, outcome);
        scenario_deterministic(&mut w, outcome);
        if full {
            w.field_u64("rejected", outcome.stats.rejected);
            w.field_u64("wire_errors", outcome.stats.wire_errors);
            w.field_str("rejection_codes", &outcome.stats.rejection_codes_summary());
            w.field_u64("p50_latency_us", outcome.p50_latency_us);
            w.field_u64("p99_latency_us", outcome.p99_latency_us);
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// The full manifest: identity, deterministic fields, wire counters and
/// latency percentiles.
pub fn manifest_json(report: &FleetReport) -> String {
    document(report, true)
}

/// The golden projection: only fields that are byte-stable across runs,
/// hosts and transports, so CI can `cmp` it against a committed file.
pub fn manifest_golden_json(report: &FleetReport) -> String {
    document(report, false)
}

/// CSV rendering, one scenario per row.
pub fn manifest_csv(report: &FleetReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "job,workload,transport,clients,arrival,fault,scale,verdicts,verdict_total,\
         accepted_verdicts,opened,accepted,sessions_rejected,expired,replays_blocked,\
         live,conserved,rejected,wire_errors,p50_latency_us,p99_latency_us\n",
    );
    for o in &report.outcomes {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            o.job.index,
            o.job.workload,
            o.transport.name(),
            o.job.clients,
            o.job.arrival.name(),
            o.job.fault.name(),
            o.job.scale,
            codes_summary(&o.verdicts),
            o.verdict_total,
            o.accepted_verdicts,
            o.stats.sessions_opened,
            o.stats.accepted,
            o.stats.sessions_rejected,
            o.stats.expired,
            o.stats.replays_blocked,
            o.live,
            o.conserved,
            o.stats.rejected,
            o.stats.wire_errors,
            o.p50_latency_us,
            o.p99_latency_us
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::Job;
    use crate::exec::Transport;
    use crate::spec::{Adversary, Arrival, FaultClass};
    use lofat::ServiceStats;
    use std::collections::BTreeMap;

    fn sample_report() -> FleetReport {
        let job = Job {
            index: 0,
            section: 0,
            workload: "fig4-loop".to_string(),
            inputs: vec![vec![6]],
            adversaries: vec![Adversary::Honest, Adversary::Forge],
            clients: 2,
            arrival: Arrival::Burst,
            fault: FaultClass::None,
            scale: 4,
            interval_us: 200,
            fault_every: 3,
        };
        let mut verdicts = BTreeMap::new();
        verdicts.insert(0u16, 2u64);
        verdicts.insert(3u16, 2u64);
        let stats = ServiceStats {
            sessions_opened: 4,
            accepted: 2,
            sessions_rejected: 2,
            ..ServiceStats::default()
        };
        let outcome = ScenarioOutcome {
            job,
            transport: Transport::Pool,
            verdicts,
            verdict_total: 4,
            accepted_verdicts: 2,
            p50_latency_us: 120,
            p99_latency_us: 340,
            stats,
            live: 0,
            conserved: true,
        };
        FleetReport { spec_name: "unit".to_string(), outcomes: vec![outcome] }
    }

    #[test]
    fn golden_omits_the_nondeterministic_fields() {
        let report = sample_report();
        let golden = manifest_golden_json(&report);
        let full = manifest_json(&report);
        assert!(golden.contains("\"verdicts\": \"0:2;3:2\""));
        assert!(golden.contains("\"conserved\": true"));
        assert!(!golden.contains("latency"), "golden has no latency fields");
        assert!(!golden.contains("wire_errors"));
        assert!(full.contains("\"p50_latency_us\": 120"));
        assert!(full.contains("\"wire_errors\": 0"));
        assert!(full.contains("\"schema_version\": 1"));
    }

    #[test]
    fn csv_has_a_row_per_scenario_plus_header() {
        let report = sample_report();
        let csv = manifest_csv(&report);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,fig4-loop,pool,2,burst,none,4,"));
    }
}

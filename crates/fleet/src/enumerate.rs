//! Deterministic expansion of a [`FleetSpec`] into concrete jobs.
//!
//! A **job** is one scenario: a workload section instantiated at one point of
//! the section's `clients × arrival × faults` cross-product.  Inputs and
//! adversaries are *within*-job mixes — slot `i` of a job plays
//! `adversaries[i % len]` on `inputs[i % len]` — so they scale the traffic
//! inside a scenario instead of multiplying the scenario count.
//!
//! Enumeration is pure and byte-deterministic: the same spec always yields
//! the same jobs in the same order ([`listing`] renders the order as text CI
//! can diff), and it validates everything execution will need — the workload
//! exists in the catalogue, it assembles, and every adversary class in the
//! mix binds to symbols the workload actually exports.

use crate::driver::{behaviour_for, DriveError};
use crate::spec::{Adversary, Arrival, FaultClass, FleetSpec, InputSpec, WorkloadPlan};
use lofat_rv32::Rv32Error;
use lofat_workloads::catalog;
use std::fmt;

/// One concrete scenario to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Position in the enumeration order (0-based, dense).
    pub index: usize,
    /// Index of the originating section in [`FleetSpec::sections`].
    pub section: usize,
    /// Catalogue workload name.
    pub workload: String,
    /// Resolved input vectors (round-robin over slots).
    pub inputs: Vec<Vec<u32>>,
    /// Adversary mix (round-robin over slots).
    pub adversaries: Vec<Adversary>,
    /// Concurrent clients driving this scenario.
    pub clients: usize,
    /// Arrival pacing pattern.
    pub arrival: Arrival,
    /// Transport fault injected on every `fault_every`-th slot.
    pub fault: FaultClass,
    /// Sessions in this scenario.
    pub scale: usize,
    /// Pacing quantum (µs) for `uniform`/`ramp` arrivals.
    pub interval_us: u64,
    /// Fault stride.
    pub fault_every: usize,
}

impl Job {
    /// The adversary slot `i` plays.
    pub fn adversary_for_slot(&self, slot: usize) -> Adversary {
        self.adversaries[slot % self.adversaries.len()]
    }

    /// The input vector slot `i` attests.
    pub fn input_for_slot(&self, slot: usize) -> &[u32] {
        &self.inputs[slot % self.inputs.len()]
    }

    /// Whether the job's fault class applies to slot `i`.
    pub fn slot_is_faulted(&self, slot: usize) -> bool {
        self.fault != FaultClass::None && slot % self.fault_every == self.fault_every - 1
    }

    /// A stable one-line label (`workload/clients/arrival/fault@scale`).
    pub fn label(&self) -> String {
        format!(
            "{}/c{}/{}/{}@{}",
            self.workload,
            self.clients,
            self.arrival.name(),
            self.fault.name(),
            self.scale
        )
    }
}

/// Errors from spec expansion.
#[derive(Debug)]
#[non_exhaustive]
pub enum EnumerateError {
    /// A section names a workload the catalogue does not have.
    UnknownWorkload {
        /// Index of the offending section.
        section: usize,
        /// The unknown name.
        workload: String,
    },
    /// The workload's source failed to assemble.
    Assemble {
        /// The workload name.
        workload: String,
        /// The assembler error.
        error: Rv32Error,
    },
    /// An adversary class in the mix does not apply to the workload.
    AdversaryUnavailable {
        /// The workload name.
        workload: String,
        /// The inapplicable class.
        adversary: Adversary,
        /// The symbol the workload lacks.
        symbol: &'static str,
    },
}

impl fmt::Display for EnumerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumerateError::UnknownWorkload { section, workload } => {
                write!(f, "section {section}: workload `{workload}` is not in the catalogue")
            }
            EnumerateError::Assemble { workload, error } => {
                write!(f, "workload `{workload}` failed to assemble: {error}")
            }
            EnumerateError::AdversaryUnavailable { workload, adversary, symbol } => {
                write!(
                    f,
                    "workload `{workload}` does not support adversary `{}` (missing symbol `{symbol}`)",
                    adversary.name()
                )
            }
        }
    }
}

impl std::error::Error for EnumerateError {}

/// The number of jobs [`enumerate`] will produce, straight from the spec's
/// dimensions (no catalogue access): per section,
/// `|clients| × |arrivals| × |faults|`.
pub fn job_count(spec: &FleetSpec) -> usize {
    spec.sections.iter().map(|s| s.clients.len() * s.arrivals.len() * s.faults.len()).sum()
}

fn resolve_inputs(plan: &WorkloadPlan, workload: &catalog::Workload) -> Vec<Vec<u32>> {
    match &plan.inputs {
        InputSpec::Default => vec![workload.default_input.clone()],
        InputSpec::Explicit(vectors) => vectors.clone(),
    }
}

/// Expands a spec into its jobs, in deterministic order: sections in file
/// order, then `clients` (outer) × `arrivals` × `faults` (inner), each in
/// list order.
///
/// # Errors
///
/// Validates every section up front: unknown workloads, assembly failures and
/// adversary classes that do not bind to the workload's symbols are typed
/// [`EnumerateError`]s, so execution never discovers them mid-run.
pub fn enumerate(spec: &FleetSpec) -> Result<Vec<Job>, EnumerateError> {
    let mut jobs = Vec::with_capacity(job_count(spec));
    for (section_index, plan) in spec.sections.iter().enumerate() {
        let workload =
            catalog::by_name(&plan.workload).ok_or_else(|| EnumerateError::UnknownWorkload {
                section: section_index,
                workload: plan.workload.clone(),
            })?;
        let program = workload
            .program()
            .map_err(|error| EnumerateError::Assemble { workload: plan.workload.clone(), error })?;
        for &adversary in &plan.adversaries {
            if let Err(DriveError::MissingSymbol { symbol, .. }) =
                behaviour_for(adversary, &program)
            {
                return Err(EnumerateError::AdversaryUnavailable {
                    workload: plan.workload.clone(),
                    adversary,
                    symbol,
                });
            }
        }
        let inputs = resolve_inputs(plan, &workload);
        for &clients in &plan.clients {
            for &arrival in &plan.arrivals {
                for &fault in &plan.faults {
                    jobs.push(Job {
                        index: jobs.len(),
                        section: section_index,
                        workload: plan.workload.clone(),
                        inputs: inputs.clone(),
                        adversaries: plan.adversaries.clone(),
                        clients,
                        arrival,
                        fault,
                        scale: plan.scale,
                        interval_us: plan.interval_us,
                        fault_every: plan.fault_every,
                    });
                }
            }
        }
    }
    Ok(jobs)
}

/// Renders an enumeration as stable text (one line per job) for diffing and
/// `lofat fleet enumerate`.
pub fn listing(jobs: &[Job]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for job in jobs {
        let adversaries = job.adversaries.iter().map(|a| a.name()).collect::<Vec<_>>().join(",");
        let _ = writeln!(
            out,
            "{:4}  {}  adversaries={}  inputs={}  interval-us={}  fault-every={}",
            job.index,
            job.label(),
            adversaries,
            job.inputs.len(),
            job.interval_us,
            job.fault_every
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FleetSpec;

    const SPEC: &str = "\
fleet demo\n\
scale = 4\n\
[workload fig4-loop]\n\
adversaries = honest, forge\n\
clients = 1, 2\n\
arrival = burst, uniform\n\
faults = none, duplicate-frame\n\
[workload gcd]\n\
clients = 3\n";

    #[test]
    fn expands_the_cross_product_in_order() {
        let spec = FleetSpec::parse(SPEC).unwrap();
        let jobs = enumerate(&spec).unwrap();
        assert_eq!(jobs.len(), job_count(&spec));
        assert_eq!(jobs.len(), 2 * 2 * 2 + 1);
        assert!(jobs.iter().enumerate().all(|(i, j)| j.index == i), "indices are dense");
        // First section varies fault fastest, then arrival, then clients.
        assert_eq!(jobs[0].label(), "fig4-loop/c1/burst/none@4");
        assert_eq!(jobs[1].label(), "fig4-loop/c1/burst/duplicate-frame@4");
        assert_eq!(jobs[2].label(), "fig4-loop/c1/uniform/none@4");
        assert_eq!(jobs[4].label(), "fig4-loop/c2/burst/none@4");
        assert_eq!(jobs[8].label(), "gcd/c3/burst/none@4");
        assert_eq!(jobs[8].inputs, vec![vec![1071, 462]], "default input resolved");
    }

    #[test]
    fn listing_is_deterministic() {
        let spec = FleetSpec::parse(SPEC).unwrap();
        let a = listing(&enumerate(&spec).unwrap());
        let b = listing(&enumerate(&spec).unwrap());
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 9);
    }

    #[test]
    fn slot_helpers_follow_the_round_robin_and_stride() {
        let spec = FleetSpec::parse(
            "fleet x\nfault-every = 3\n[workload fig4-loop]\nadversaries = honest, forge\nfaults = drop-connection\n",
        )
        .unwrap();
        let jobs = enumerate(&spec).unwrap();
        let job = &jobs[0];
        assert_eq!(job.adversary_for_slot(0), Adversary::Honest);
        assert_eq!(job.adversary_for_slot(1), Adversary::Forge);
        assert_eq!(job.adversary_for_slot(2), Adversary::Honest);
        assert!(!job.slot_is_faulted(0));
        assert!(!job.slot_is_faulted(1));
        assert!(job.slot_is_faulted(2));
        assert!(job.slot_is_faulted(5));
    }

    #[test]
    fn validation_is_typed() {
        let spec = FleetSpec::parse("fleet x\n[workload no-such]\n").unwrap();
        assert!(matches!(
            enumerate(&spec),
            Err(EnumerateError::UnknownWorkload { section: 0, .. })
        ));
        let spec = FleetSpec::parse("fleet x\n[workload fig4-loop]\nadversaries = code-pointer\n")
            .unwrap();
        assert!(matches!(
            enumerate(&spec),
            Err(EnumerateError::AdversaryUnavailable { adversary: Adversary::CodePointer, .. })
        ));
    }
}

//! The declarative fleet-spec format: a simple line/section text file, a
//! hand-written parser with typed errors, and a canonical formatter.
//!
//! A spec opens with a `fleet <name>` header, optionally sets top-level
//! defaults, and then declares one `[workload <name>]` section per traffic
//! family.  `#` starts a comment; blank lines separate nothing in particular:
//!
//! ```text
//! # Attack mix over two workloads, swept over client counts and faults.
//! fleet smoke
//! scale = 8                      # sessions per scenario (default 8)
//! interval-us = 200              # pacing quantum for uniform/ramp arrivals
//! fault-every = 3                # every 3rd slot is fault-injected
//!
//! [workload fig4-loop]
//! inputs = 4 | 6                 # input vectors, '|'-separated; words by spaces
//! adversaries = honest, poke, forge, replay
//! clients = 1, 2                 # cross-product dimension
//! arrival = burst, uniform       # cross-product dimension
//! faults = none, duplicate-frame # cross-product dimension
//! ```
//!
//! The **cross-product dimensions** are `clients × arrival × faults`, per
//! section; `inputs` and `adversaries` are within-scenario *mixes*, assigned
//! to session slots round-robin.  [`crate::enumerate::enumerate`] expands the
//! product into deterministic [`crate::enumerate::Job`]s.
//!
//! Parsing is strict: unknown keys, duplicate keys, empty lists, duplicate
//! list entries, zero counts, and malformed sections are all distinct
//! [`SpecError`] variants, so a hostile or truncated spec names the offending
//! line rather than half-applying.  [`FleetSpec::to_text`] renders a
//! canonical form with every section fully resolved; `parse(to_text(spec))`
//! reproduces `spec` exactly (property-tested).

use std::fmt;

/// Default sessions per scenario when a spec does not say.
pub const DEFAULT_SCALE: usize = 8;
/// Default pacing quantum (µs) for `uniform`/`ramp` arrivals.
pub const DEFAULT_INTERVAL_US: u64 = 200;
/// Default fault stride: every `fault-every`-th slot is fault-injected.
pub const DEFAULT_FAULT_EVERY: usize = 3;

/// One adversary class a session slot can play.  `honest`, `forge` and
/// `replay` are protocol-level (no prover-side fault); the rest are the stock
/// attack classes from `lofat_workloads::attack` and require the workload to
/// export the symbols the attack targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adversary {
    /// A faithful prover: attested run, honest report.
    Honest,
    /// A data-memory poke early in the attested run.
    Poke,
    /// Corrupt a loop bound in memory (detected via loop counters).
    LoopCounter,
    /// Corrupt non-control data that decides a branch.
    NonControlData,
    /// Overwrite a function-pointer table entry.
    CodePointer,
    /// Overwrite a saved return address on the stack.
    ReturnAddress,
    /// Pure data-oriented manipulation — *not* detectable by control-flow
    /// attestation, so these slots are expected to be accepted.
    DataOnly,
    /// Honest evidence with one authenticator byte flipped (breaks the
    /// signature).
    Forge,
    /// Honest evidence in phase 1, re-submitted verbatim in phase 2 after the
    /// session decided (expected `NONCE_REPLAYED`).
    Replay,
}

impl Adversary {
    /// Every class, in canonical order.
    pub const ALL: [Adversary; 9] = [
        Adversary::Honest,
        Adversary::Poke,
        Adversary::LoopCounter,
        Adversary::NonControlData,
        Adversary::CodePointer,
        Adversary::ReturnAddress,
        Adversary::DataOnly,
        Adversary::Forge,
        Adversary::Replay,
    ];

    /// The spec-file name of this class.
    pub fn name(self) -> &'static str {
        match self {
            Adversary::Honest => "honest",
            Adversary::Poke => "poke",
            Adversary::LoopCounter => "loop-counter",
            Adversary::NonControlData => "non-control-data",
            Adversary::CodePointer => "code-pointer",
            Adversary::ReturnAddress => "return-address",
            Adversary::DataOnly => "data-only",
            Adversary::Forge => "forge",
            Adversary::Replay => "replay",
        }
    }

    /// Parses a spec-file name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|a| a.name() == name)
    }
}

/// How a scenario's client threads pace their session slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Submit as fast as possible.
    Burst,
    /// A fixed `interval-us` pause before each slot.
    Uniform,
    /// Pauses shrink linearly from `2 × interval-us` to zero — load ramps up.
    Ramp,
}

impl Arrival {
    /// Every pattern, in canonical order.
    pub const ALL: [Arrival; 3] = [Arrival::Burst, Arrival::Uniform, Arrival::Ramp];

    /// The spec-file name of this pattern.
    pub fn name(self) -> &'static str {
        match self {
            Arrival::Burst => "burst",
            Arrival::Uniform => "uniform",
            Arrival::Ramp => "ramp",
        }
    }

    /// Parses a spec-file name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|a| a.name() == name)
    }
}

/// The transport-level fault a scenario injects on every `fault-every`-th
/// slot.  Faults are invisible to the verdict stream by design — the
/// differential suite proves the pool and socket transports produce identical
/// verdict breakdowns under every class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// No fault: every slot is a clean round trip.
    None,
    /// The client sends a partial evidence frame and drops the connection
    /// (socket), or simply never submits (pool) — the session stays live.
    DropConnection,
    /// The client sends a partial frame and *holds* the connection open while
    /// traffic continues around it, giving up only at the end of the run.
    SlowLoris,
    /// The evidence frame is sent twice back-to-back; the duplicate must
    /// bounce off replay/decided detection.
    DuplicateFrame,
    /// A hostile length prefix (socket) or undecodable blob (pool) precedes
    /// the slot's real evidence; the service answers `MALFORMED` and the real
    /// evidence must still be judged normally afterwards.
    OversizedPrefix,
}

impl FaultClass {
    /// Every class, in canonical order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::None,
        FaultClass::DropConnection,
        FaultClass::SlowLoris,
        FaultClass::DuplicateFrame,
        FaultClass::OversizedPrefix,
    ];

    /// The spec-file name of this class.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::None => "none",
            FaultClass::DropConnection => "drop-connection",
            FaultClass::SlowLoris => "slow-loris",
            FaultClass::DuplicateFrame => "duplicate-frame",
            FaultClass::OversizedPrefix => "oversized-prefix",
        }
    }

    /// Parses a spec-file name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// The input distribution of one workload section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputSpec {
    /// Use the workload's catalogue default input.
    Default,
    /// Explicit input vectors, assigned to slots round-robin.
    Explicit(Vec<Vec<u32>>),
}

/// One `[workload …]` section, with every value resolved (section overrides
/// applied over the top-level defaults at parse time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadPlan {
    /// Catalogue workload name (validated at enumeration time).
    pub workload: String,
    /// Input distribution for the section's slots.
    pub inputs: InputSpec,
    /// Adversary mix, assigned to slots round-robin.
    pub adversaries: Vec<Adversary>,
    /// Client counts to sweep (cross-product dimension).
    pub clients: Vec<usize>,
    /// Arrival patterns to sweep (cross-product dimension).
    pub arrivals: Vec<Arrival>,
    /// Fault classes to sweep (cross-product dimension).
    pub faults: Vec<FaultClass>,
    /// Sessions per scenario.
    pub scale: usize,
    /// Pacing quantum (µs) for `uniform`/`ramp` arrivals.
    pub interval_us: u64,
    /// Fault stride: slot `i` is faulted when `i % fault_every == fault_every - 1`.
    pub fault_every: usize,
}

/// A parsed fleet spec: the header name, the top-level defaults, and the
/// workload sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// The `fleet <name>` header.
    pub name: String,
    /// Top-level default for [`WorkloadPlan::scale`].
    pub scale: usize,
    /// Top-level default for [`WorkloadPlan::interval_us`].
    pub interval_us: u64,
    /// Top-level default for [`WorkloadPlan::fault_every`].
    pub fault_every: usize,
    /// The workload sections, in file order.
    pub sections: Vec<WorkloadPlan>,
}

/// Typed parse errors; every variant names the offending line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// The first significant line is not a `fleet <name>` header.
    MissingHeader,
    /// The `fleet` header has no name, or extra tokens.
    BadHeader {
        /// Offending line number.
        line: usize,
    },
    /// The fleet name contains characters outside `[A-Za-z0-9._-]`.
    BadName {
        /// Offending line number.
        line: usize,
        /// The rejected name.
        name: String,
    },
    /// A `[…]` line that is not exactly `[workload <name>]`.
    BadSection {
        /// Offending line number.
        line: usize,
        /// The rejected line text.
        text: String,
    },
    /// A line that is neither a section header nor a `key = value` pair.
    NotAssignment {
        /// Offending line number.
        line: usize,
        /// The rejected line text.
        text: String,
    },
    /// A key this format does not define.
    UnknownKey {
        /// Offending line number.
        line: usize,
        /// The rejected key.
        key: String,
    },
    /// A section-only key (`inputs`, `adversaries`, `clients`, `arrival`,
    /// `faults`) used before any `[workload …]` section.
    KeyOutsideSection {
        /// Offending line number.
        line: usize,
        /// The key.
        key: String,
    },
    /// The same key assigned twice in one scope.
    DuplicateKey {
        /// Offending line number.
        line: usize,
        /// The duplicated key.
        key: String,
    },
    /// A value that does not parse for its key.
    BadValue {
        /// Offending line number.
        line: usize,
        /// The key.
        key: String,
        /// The rejected value text.
        value: String,
    },
    /// A list key with no entries.
    EmptyList {
        /// Offending line number.
        line: usize,
        /// The key.
        key: String,
    },
    /// The same entry listed twice for one key.
    DuplicateEntry {
        /// Offending line number.
        line: usize,
        /// The key.
        key: String,
        /// The duplicated entry.
        entry: String,
    },
    /// An adversary/arrival/fault name this build does not define.
    UnknownName {
        /// Offending line number.
        line: usize,
        /// The key.
        key: String,
        /// The rejected name.
        name: String,
    },
    /// A count key (`scale`, `clients`, `fault-every`) set to zero.
    ZeroValue {
        /// Offending line number.
        line: usize,
        /// The key.
        key: String,
    },
    /// The spec declares no `[workload …]` section.
    NoSections,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::MissingHeader => {
                write!(f, "spec must open with a `fleet <name>` header")
            }
            SpecError::BadHeader { line } => {
                write!(f, "line {line}: `fleet` header needs exactly one name")
            }
            SpecError::BadName { line, name } => {
                write!(f, "line {line}: fleet name `{name}` (allowed: [A-Za-z0-9._-])")
            }
            SpecError::BadSection { line, text } => {
                write!(f, "line {line}: bad section `{text}` (expected `[workload <name>]`)")
            }
            SpecError::NotAssignment { line, text } => {
                write!(f, "line {line}: `{text}` is not a `key = value` assignment")
            }
            SpecError::UnknownKey { line, key } => write!(f, "line {line}: unknown key `{key}`"),
            SpecError::KeyOutsideSection { line, key } => {
                write!(f, "line {line}: `{key}` is only valid inside a [workload …] section")
            }
            SpecError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key `{key}` in this scope")
            }
            SpecError::BadValue { line, key, value } => {
                write!(f, "line {line}: bad value `{value}` for `{key}`")
            }
            SpecError::EmptyList { line, key } => {
                write!(f, "line {line}: `{key}` needs at least one entry")
            }
            SpecError::DuplicateEntry { line, key, entry } => {
                write!(f, "line {line}: duplicate `{key}` entry `{entry}`")
            }
            SpecError::UnknownName { line, key, name } => {
                write!(f, "line {line}: unknown {key} name `{name}`")
            }
            SpecError::ZeroValue { line, key } => {
                write!(f, "line {line}: `{key}` must be at least 1")
            }
            SpecError::NoSections => write!(f, "spec declares no [workload …] section"),
        }
    }
}

impl std::error::Error for SpecError {}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')
}

/// Per-scope duplicate-key bookkeeping.
#[derive(Default)]
struct SeenKeys(Vec<&'static str>);

impl SeenKeys {
    fn check(&mut self, line: usize, key: &'static str) -> Result<(), SpecError> {
        if self.0.contains(&key) {
            return Err(SpecError::DuplicateKey { line, key: key.to_string() });
        }
        self.0.push(key);
        Ok(())
    }
}

/// The section being accumulated during parsing (values optional until the
/// section closes, when defaults fill the gaps).
struct PendingSection {
    workload: String,
    inputs: Option<InputSpec>,
    adversaries: Option<Vec<Adversary>>,
    clients: Option<Vec<usize>>,
    arrivals: Option<Vec<Arrival>>,
    faults: Option<Vec<FaultClass>>,
    scale: Option<usize>,
    interval_us: Option<u64>,
    fault_every: Option<usize>,
    seen: SeenKeys,
}

impl PendingSection {
    fn new(workload: String) -> Self {
        Self {
            workload,
            inputs: None,
            adversaries: None,
            clients: None,
            arrivals: None,
            faults: None,
            scale: None,
            interval_us: None,
            fault_every: None,
            seen: SeenKeys::default(),
        }
    }

    fn finish(self, spec: &FleetSpec) -> WorkloadPlan {
        WorkloadPlan {
            workload: self.workload,
            inputs: self.inputs.unwrap_or(InputSpec::Default),
            adversaries: self.adversaries.unwrap_or_else(|| vec![Adversary::Honest]),
            clients: self.clients.unwrap_or_else(|| vec![1]),
            arrivals: self.arrivals.unwrap_or_else(|| vec![Arrival::Burst]),
            faults: self.faults.unwrap_or_else(|| vec![FaultClass::None]),
            scale: self.scale.unwrap_or(spec.scale),
            interval_us: self.interval_us.unwrap_or(spec.interval_us),
            fault_every: self.fault_every.unwrap_or(spec.fault_every),
        }
    }
}

fn parse_count(line: usize, key: &str, value: &str) -> Result<usize, SpecError> {
    let n: usize = value.parse().map_err(|_| SpecError::BadValue {
        line,
        key: key.to_string(),
        value: value.to_string(),
    })?;
    if n == 0 {
        return Err(SpecError::ZeroValue { line, key: key.to_string() });
    }
    Ok(n)
}

fn parse_u64(line: usize, key: &str, value: &str) -> Result<u64, SpecError> {
    value.parse().map_err(|_| SpecError::BadValue {
        line,
        key: key.to_string(),
        value: value.to_string(),
    })
}

/// Splits a comma list, rejecting empty lists, empty entries and duplicates.
fn parse_list(line: usize, key: &str, value: &str) -> Result<Vec<String>, SpecError> {
    if value.trim().is_empty() {
        return Err(SpecError::EmptyList { line, key: key.to_string() });
    }
    let mut entries = Vec::new();
    for raw in value.split(',') {
        let entry = raw.trim();
        if entry.is_empty() {
            return Err(SpecError::BadValue {
                line,
                key: key.to_string(),
                value: value.to_string(),
            });
        }
        if entries.iter().any(|e| e == entry) {
            return Err(SpecError::DuplicateEntry {
                line,
                key: key.to_string(),
                entry: entry.to_string(),
            });
        }
        entries.push(entry.to_string());
    }
    Ok(entries)
}

fn parse_named_list<T: Copy + PartialEq>(
    line: usize,
    key: &str,
    value: &str,
    lookup: impl Fn(&str) -> Option<T>,
) -> Result<Vec<T>, SpecError> {
    parse_list(line, key, value)?
        .into_iter()
        .map(|entry| {
            lookup(&entry).ok_or(SpecError::UnknownName { line, key: key.to_string(), name: entry })
        })
        .collect()
}

fn parse_inputs(line: usize, value: &str) -> Result<InputSpec, SpecError> {
    let trimmed = value.trim();
    if trimmed == "default" {
        return Ok(InputSpec::Default);
    }
    if trimmed.is_empty() {
        return Err(SpecError::EmptyList { line, key: "inputs".to_string() });
    }
    let mut vectors = Vec::new();
    for group in trimmed.split('|') {
        let words: Vec<&str> = group.split_whitespace().collect();
        if words.is_empty() {
            return Err(SpecError::BadValue {
                line,
                key: "inputs".to_string(),
                value: value.to_string(),
            });
        }
        let vector = words
            .into_iter()
            .map(|w| {
                w.parse::<u32>().map_err(|_| SpecError::BadValue {
                    line,
                    key: "inputs".to_string(),
                    value: value.to_string(),
                })
            })
            .collect::<Result<Vec<u32>, _>>()?;
        vectors.push(vector);
    }
    Ok(InputSpec::Explicit(vectors))
}

impl FleetSpec {
    /// Parses a spec from its text form.  See the module docs for the format.
    ///
    /// # Errors
    ///
    /// Returns the [`SpecError`] describing the first problem found; nothing
    /// is half-applied.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut spec: Option<FleetSpec> = None;
        let mut top_seen = SeenKeys::default();
        let mut sections: Vec<WorkloadPlan> = Vec::new();
        let mut pending: Option<PendingSection> = None;

        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }

            // Header.
            let Some(spec) = spec.as_mut() else {
                let mut tokens = content.split_whitespace();
                if tokens.next() != Some("fleet") {
                    return Err(SpecError::MissingHeader);
                }
                let Some(name) = tokens.next() else {
                    return Err(SpecError::BadHeader { line });
                };
                if tokens.next().is_some() {
                    return Err(SpecError::BadHeader { line });
                }
                if !name.chars().all(is_name_char) {
                    return Err(SpecError::BadName { line, name: name.to_string() });
                }
                spec = Some(FleetSpec {
                    name: name.to_string(),
                    scale: DEFAULT_SCALE,
                    interval_us: DEFAULT_INTERVAL_US,
                    fault_every: DEFAULT_FAULT_EVERY,
                    sections: Vec::new(),
                });
                continue;
            };

            // Section header.
            if content.starts_with('[') {
                let inner = content
                    .strip_prefix('[')
                    .and_then(|r| r.strip_suffix(']'))
                    .ok_or_else(|| SpecError::BadSection { line, text: content.to_string() })?;
                let mut tokens = inner.split_whitespace();
                let (kind, name, extra) = (tokens.next(), tokens.next(), tokens.next());
                let (Some("workload"), Some(name), None) = (kind, name, extra) else {
                    return Err(SpecError::BadSection { line, text: content.to_string() });
                };
                if !name.chars().all(is_name_char) {
                    return Err(SpecError::BadSection { line, text: content.to_string() });
                }
                if let Some(done) = pending.take() {
                    sections.push(done.finish(spec));
                }
                pending = Some(PendingSection::new(name.to_string()));
                continue;
            }

            // `key = value`.
            let Some((key, value)) = content.split_once('=') else {
                return Err(SpecError::NotAssignment { line, text: content.to_string() });
            };
            let key = key.trim();
            let value = value.trim();

            match pending.as_mut() {
                None => match key {
                    "scale" => {
                        top_seen.check(line, "scale")?;
                        spec.scale = parse_count(line, key, value)?;
                    }
                    "interval-us" => {
                        top_seen.check(line, "interval-us")?;
                        spec.interval_us = parse_u64(line, key, value)?;
                    }
                    "fault-every" => {
                        top_seen.check(line, "fault-every")?;
                        spec.fault_every = parse_count(line, key, value)?;
                    }
                    "inputs" | "adversaries" | "clients" | "arrival" | "faults" => {
                        return Err(SpecError::KeyOutsideSection { line, key: key.to_string() });
                    }
                    other => {
                        return Err(SpecError::UnknownKey { line, key: other.to_string() });
                    }
                },
                Some(section) => match key {
                    "inputs" => {
                        section.seen.check(line, "inputs")?;
                        section.inputs = Some(parse_inputs(line, value)?);
                    }
                    "adversaries" => {
                        section.seen.check(line, "adversaries")?;
                        section.adversaries =
                            Some(parse_named_list(line, key, value, Adversary::from_name)?);
                    }
                    "clients" => {
                        section.seen.check(line, "clients")?;
                        section.clients = Some(
                            parse_list(line, key, value)?
                                .into_iter()
                                .map(|entry| parse_count(line, key, &entry))
                                .collect::<Result<Vec<usize>, _>>()?,
                        );
                    }
                    "arrival" => {
                        section.seen.check(line, "arrival")?;
                        section.arrivals =
                            Some(parse_named_list(line, key, value, Arrival::from_name)?);
                    }
                    "faults" => {
                        section.seen.check(line, "faults")?;
                        section.faults =
                            Some(parse_named_list(line, key, value, FaultClass::from_name)?);
                    }
                    "scale" => {
                        section.seen.check(line, "scale")?;
                        section.scale = Some(parse_count(line, key, value)?);
                    }
                    "interval-us" => {
                        section.seen.check(line, "interval-us")?;
                        section.interval_us = Some(parse_u64(line, key, value)?);
                    }
                    "fault-every" => {
                        section.seen.check(line, "fault-every")?;
                        section.fault_every = Some(parse_count(line, key, value)?);
                    }
                    other => {
                        return Err(SpecError::UnknownKey { line, key: other.to_string() });
                    }
                },
            }
        }

        let mut spec = spec.ok_or(SpecError::MissingHeader)?;
        if let Some(done) = pending.take() {
            sections.push(done.finish(&spec));
        }
        if sections.is_empty() {
            return Err(SpecError::NoSections);
        }
        spec.sections = sections;
        Ok(spec)
    }

    /// Renders the canonical text form: defaults first, then every section
    /// with all keys explicit.  `FleetSpec::parse(spec.to_text())` returns a
    /// spec equal to `spec`.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "fleet {}", self.name);
        let _ = writeln!(out);
        let _ = writeln!(out, "scale = {}", self.scale);
        let _ = writeln!(out, "interval-us = {}", self.interval_us);
        let _ = writeln!(out, "fault-every = {}", self.fault_every);
        for section in &self.sections {
            let _ = writeln!(out);
            let _ = writeln!(out, "[workload {}]", section.workload);
            match &section.inputs {
                InputSpec::Default => {
                    let _ = writeln!(out, "inputs = default");
                }
                InputSpec::Explicit(vectors) => {
                    let rendered: Vec<String> = vectors
                        .iter()
                        .map(|v| v.iter().map(u32::to_string).collect::<Vec<_>>().join(" "))
                        .collect();
                    let _ = writeln!(out, "inputs = {}", rendered.join(" | "));
                }
            }
            let _ = writeln!(
                out,
                "adversaries = {}",
                section.adversaries.iter().map(|a| a.name()).collect::<Vec<_>>().join(", ")
            );
            let _ = writeln!(
                out,
                "clients = {}",
                section.clients.iter().map(usize::to_string).collect::<Vec<_>>().join(", ")
            );
            let _ = writeln!(
                out,
                "arrival = {}",
                section.arrivals.iter().map(|a| a.name()).collect::<Vec<_>>().join(", ")
            );
            let _ = writeln!(
                out,
                "faults = {}",
                section.faults.iter().map(|f| f.name()).collect::<Vec<_>>().join(", ")
            );
            let _ = writeln!(out, "scale = {}", section.scale);
            let _ = writeln!(out, "interval-us = {}", section.interval_us);
            let _ = writeln!(out, "fault-every = {}", section.fault_every);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = "\
# a comment\n\
fleet demo\n\
scale = 6\n\
\n\
[workload fig4-loop]\n\
inputs = 4 | 6 2\n\
adversaries = honest, forge\n\
clients = 1, 2\n\
arrival = burst\n\
faults = none, duplicate-frame\n";

    #[test]
    fn parses_a_minimal_spec_with_defaults() {
        let spec = FleetSpec::parse("fleet x\n[workload gcd]\n").unwrap();
        assert_eq!(spec.name, "x");
        assert_eq!(spec.scale, DEFAULT_SCALE);
        assert_eq!(spec.sections.len(), 1);
        let section = &spec.sections[0];
        assert_eq!(section.workload, "gcd");
        assert_eq!(section.inputs, InputSpec::Default);
        assert_eq!(section.adversaries, vec![Adversary::Honest]);
        assert_eq!(section.clients, vec![1]);
        assert_eq!(section.arrivals, vec![Arrival::Burst]);
        assert_eq!(section.faults, vec![FaultClass::None]);
        assert_eq!(section.scale, DEFAULT_SCALE);
    }

    #[test]
    fn parses_sections_values_and_comments() {
        let spec = FleetSpec::parse(SMOKE).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.scale, 6);
        let section = &spec.sections[0];
        assert_eq!(section.inputs, InputSpec::Explicit(vec![vec![4], vec![6, 2]]));
        assert_eq!(section.adversaries, vec![Adversary::Honest, Adversary::Forge]);
        assert_eq!(section.clients, vec![1, 2]);
        assert_eq!(section.faults, vec![FaultClass::None, FaultClass::DuplicateFrame]);
        assert_eq!(section.scale, 6, "section inherits the top-level default");
    }

    #[test]
    fn round_trips_through_the_canonical_form() {
        let spec = FleetSpec::parse(SMOKE).unwrap();
        let text = spec.to_text();
        let reparsed = FleetSpec::parse(&text).unwrap();
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.to_text(), text, "canonical form is a fixed point");
    }

    #[test]
    fn typed_errors_name_the_problem() {
        assert_eq!(FleetSpec::parse(""), Err(SpecError::MissingHeader));
        assert_eq!(FleetSpec::parse("nope\n"), Err(SpecError::MissingHeader));
        assert_eq!(FleetSpec::parse("fleet\n"), Err(SpecError::BadHeader { line: 1 }));
        assert_eq!(FleetSpec::parse("fleet a b\n"), Err(SpecError::BadHeader { line: 1 }));
        assert_eq!(FleetSpec::parse("fleet ok\n"), Err(SpecError::NoSections));
        assert!(matches!(
            FleetSpec::parse("fleet ok\n[workload]\n"),
            Err(SpecError::BadSection { line: 2, .. })
        ));
        assert!(matches!(
            FleetSpec::parse("fleet ok\nclients = 2\n[workload gcd]\n"),
            Err(SpecError::KeyOutsideSection { line: 2, .. })
        ));
        assert!(matches!(
            FleetSpec::parse("fleet ok\n[workload gcd]\nbanana = 1\n"),
            Err(SpecError::UnknownKey { line: 3, .. })
        ));
        assert!(matches!(
            FleetSpec::parse("fleet ok\n[workload gcd]\nscale = 2\nscale = 3\n"),
            Err(SpecError::DuplicateKey { line: 4, .. })
        ));
        assert!(matches!(
            FleetSpec::parse("fleet ok\n[workload gcd]\nscale = 0\n"),
            Err(SpecError::ZeroValue { line: 3, .. })
        ));
        assert!(matches!(
            FleetSpec::parse("fleet ok\n[workload gcd]\nadversaries = honest, honest\n"),
            Err(SpecError::DuplicateEntry { line: 3, .. })
        ));
        assert!(matches!(
            FleetSpec::parse("fleet ok\n[workload gcd]\nadversaries = martian\n"),
            Err(SpecError::UnknownName { line: 3, .. })
        ));
        assert!(matches!(
            FleetSpec::parse("fleet ok\n[workload gcd]\nfaults =\n"),
            Err(SpecError::EmptyList { line: 3, .. })
        ));
        assert!(matches!(
            FleetSpec::parse("fleet ok\n[workload gcd]\ninputs = 4 x\n"),
            Err(SpecError::BadValue { line: 3, .. })
        ));
        assert!(matches!(
            FleetSpec::parse("fleet ok\n[workload gcd]\njust words\n"),
            Err(SpecError::NotAssignment { line: 3, .. })
        ));
    }

    #[test]
    fn every_name_round_trips() {
        for adversary in Adversary::ALL {
            assert_eq!(Adversary::from_name(adversary.name()), Some(adversary));
        }
        for arrival in Arrival::ALL {
            assert_eq!(Arrival::from_name(arrival.name()), Some(arrival));
        }
        for fault in FaultClass::ALL {
            assert_eq!(FaultClass::from_name(fault.name()), Some(fault));
        }
    }
}

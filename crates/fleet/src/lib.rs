//! # lofat-fleet — declarative scenario fleets for the attestation service
//!
//! The point of a sans-I/O verifier is that every transport must be a pure
//! carrier: the same evidence bytes produce the same verdict whether they
//! arrive through the in-process worker pool or a TCP socket, under load,
//! under attack, and under transport faults.  This crate turns that claim
//! into a *sweepable artifact*: a small text format describes a fleet —
//! which workloads, which input distribution, which adversary mix, how many
//! clients, what arrival pattern, which transport faults — and the harness
//! expands the cross-product deterministically, drives every scenario over
//! both transports, and emits manifests CI can diff byte-for-byte.
//!
//! The pipeline, one module per stage:
//!
//! | Module | Stage |
//! |---|---|
//! | [`spec`] | parse the declarative format (typed, line-numbered errors) |
//! | [`enumerate`] | expand the cross-product into deterministic [`enumerate::Job`]s |
//! | [`driver`] | pre-generate each section's traffic (the shared session-driving core) |
//! | [`exec`] | fan jobs over the pool and/or a live server, with fault injection |
//! | [`manifest`] | render JSON/CSV artifacts (golden projection for CI diffing) |
//!
//! ```
//! use lofat_fleet::{enumerate, spec::FleetSpec};
//!
//! let spec = FleetSpec::parse(
//!     "fleet demo\nscale = 4\n[workload fig4-loop]\nadversaries = honest, forge\nclients = 1, 2\n",
//! )?;
//! let jobs = enumerate::enumerate(&spec)?;
//! assert_eq!(jobs.len(), 2, "one job per client count");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Executing a fleet (see [`exec::run`]) is as deliberate as the parsing is
//! strict: sessions are opened in slot order so the deterministic nonce
//! stream makes pre-generated evidence answer *any* fresh service instance,
//! which is what allows the pool and socket runs of the same job to be
//! compared verdict-for-verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod enumerate;
pub mod exec;
pub mod manifest;
pub mod spec;

pub use driver::{behaviour_for, generate_traffic, DriveError, SlotBehaviour, TrafficSlot};
pub use enumerate::{enumerate as enumerate_jobs, job_count, listing, EnumerateError, Job};
pub use exec::{run, ExecError, ExecOptions, FleetReport, ScenarioOutcome, Transport};
pub use manifest::{manifest_csv, manifest_golden_json, manifest_json, MANIFEST_SCHEMA_VERSION};
pub use spec::{Adversary, Arrival, FaultClass, FleetSpec, InputSpec, SpecError, WorkloadPlan};

//! The fleet executor: fan enumerated jobs over the in-process worker pool
//! and/or a live TCP server, with transport-fault injection, and collect
//! per-scenario outcomes.
//!
//! Determinism is the whole point.  Traffic is pre-generated **once per
//! section** against a throwaway template service ([`crate::driver`]); nonce
//! determinism then lets the same bytes answer every fresh execution service,
//! whether it sits behind [`lofat::ParallelVerifier`], a blocking
//! [`lofat_net::VerifierServer`] or a readiness-driven
//! [`lofat_net::EventLoopServer`].  Each scenario opens its sessions up front
//! in slot order (asserting the issued challenges match the pre-generated
//! bytes), drives phase 1 concurrently from `clients` workers over strided
//! slots, then re-submits the replay-class slots in a sequential phase 2.
//! The client-observed verdict breakdown and the session-spending statistics
//! (`opened`, `accepted`, `sessions_rejected`, `expired`, `replays_blocked`,
//! `live`) must come out identical across transports; only wire-level
//! counters (`wire_errors`, total `rejected`) may differ, because half-frames
//! from dropped connections are visible to a socket but do not exist in a
//! pool.
//!
//! Fault classes map to transports as follows (applied to every
//! `fault_every`-th slot):
//!
//! | class | socket | pool |
//! |---|---|---|
//! | `drop-connection` | half an evidence frame, then disconnect | never submitted |
//! | `slow-loris` | half a frame, connection held until the run ends | never submitted |
//! | `duplicate-frame` | evidence sent twice back-to-back | submitted twice |
//! | `oversized-prefix` | hostile `u32::MAX` length prefix on a throwaway connection, then the real evidence | undecodable blob, then the real evidence |

use crate::driver::{behaviour_for, generate_traffic, DriveError, TrafficSlot};
use crate::enumerate::{enumerate, EnumerateError, Job};
use crate::spec::{Arrival, FaultClass, FleetSpec};
use lofat::wire::{code, Envelope, Message, SessionId, WireError};
use lofat::{
    EngineConfig, MeasurementDatabase, ParallelVerifier, PoolConfig, Prover, ServiceConfig,
    ServiceError, ServiceStats, Verifier, VerifierService,
};
use lofat_crypto::DeviceKey;
use lofat_net::{
    EventLoopServer, FanOutFront, NetError, NetLimits, ProverClient, ServerConfig, VerifierServer,
};
use lofat_workloads::catalog;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which execution backend a scenario ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// The in-process [`ParallelVerifier`] worker pool.
    Pool,
    /// A live blocking [`VerifierServer`] over loopback TCP.
    Socket,
    /// A live readiness-driven [`EventLoopServer`] over loopback TCP.
    Epoll,
    /// A [`FanOutFront`] multiplexing over two partitioned blocking
    /// [`VerifierServer`]s — the in-repo stand-in for an N-process
    /// `lofat front` + `lofat serve --partition` deployment.
    Front,
}

impl Transport {
    /// Stable name used in manifests and tables.
    pub fn name(self) -> &'static str {
        match self {
            Transport::Pool => "pool",
            Transport::Socket => "socket",
            Transport::Epoll => "epoll",
            Transport::Front => "front",
        }
    }
}

/// What to execute.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Drive each job over the in-process pool.
    pub pool: bool,
    /// Drive each job over a loopback blocking TCP server.
    pub socket: bool,
    /// Drive each job over a loopback readiness-driven TCP server.
    pub epoll: bool,
    /// Drive each job over a fan-out front with two partitioned backends.
    pub front: bool,
    /// Overrides every section's `scale` (CI smoke runs shrink here).
    pub scale_override: Option<usize>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self { pool: true, socket: true, epoll: true, front: true, scale_override: None }
    }
}

/// One job × transport result.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The executed job.
    pub job: Job,
    /// The transport it ran on.
    pub transport: Transport,
    /// Client-observed verdict breakdown: wire reason code → count.
    pub verdicts: BTreeMap<u16, u64>,
    /// Total verdicts observed (sum of the breakdown).
    pub verdict_total: u64,
    /// Observed `ACCEPTED` verdicts.
    pub accepted_verdicts: u64,
    /// Median clean-round-trip latency, µs (0 when nothing completed).
    pub p50_latency_us: u64,
    /// 99th-percentile clean-round-trip latency, µs.
    pub p99_latency_us: u64,
    /// The execution service's final statistics snapshot.
    pub stats: ServiceStats,
    /// Sessions still live at the end (dropped/slow-loris slots).
    pub live: usize,
    /// Whether both conservation laws held on the final snapshot.
    pub conserved: bool,
}

/// A full fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The spec's `fleet <name>` header.
    pub spec_name: String,
    /// One outcome per executed job × transport, in job order with the
    /// enabled transports in pool, socket, epoll, front order.
    pub outcomes: Vec<ScenarioOutcome>,
}

/// Errors from fleet execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExecError {
    /// The spec failed to expand.
    Enumerate(EnumerateError),
    /// Traffic pre-generation failed.
    Drive(DriveError),
    /// The execution service refused a session or submission.
    Service(ServiceError),
    /// A socket operation failed.
    Net(NetError),
    /// Binding or raw-socket I/O failed.
    Io(std::io::Error),
    /// A verdict envelope failed to decode.
    Wire(WireError),
    /// A fresh service issued a challenge that differs from the
    /// pre-generated bytes — nonce determinism is broken.
    ChallengeMismatch {
        /// The job index.
        job: usize,
        /// The slot whose challenge differed.
        slot: usize,
    },
    /// A reply that should have been a verdict envelope was something else.
    NotAVerdict {
        /// The job index.
        job: usize,
        /// The offending slot.
        slot: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Enumerate(e) => write!(f, "enumeration: {e}"),
            ExecError::Drive(e) => write!(f, "traffic generation: {e}"),
            ExecError::Service(e) => write!(f, "service: {e}"),
            ExecError::Net(e) => write!(f, "socket: {e}"),
            ExecError::Io(e) => write!(f, "i/o: {e}"),
            ExecError::Wire(e) => write!(f, "wire codec: {e}"),
            ExecError::ChallengeMismatch { job, slot } => {
                write!(f, "job {job} slot {slot}: challenge differs from pre-generated bytes")
            }
            ExecError::NotAVerdict { job, slot } => {
                write!(f, "job {job} slot {slot}: reply is not a verdict envelope")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EnumerateError> for ExecError {
    fn from(e: EnumerateError) -> Self {
        ExecError::Enumerate(e)
    }
}

impl From<DriveError> for ExecError {
    fn from(e: DriveError) -> Self {
        ExecError::Drive(e)
    }
}

impl From<ServiceError> for ExecError {
    fn from(e: ServiceError) -> Self {
        ExecError::Service(e)
    }
}

impl From<NetError> for ExecError {
    fn from(e: NetError) -> Self {
        ExecError::Net(e)
    }
}

impl From<std::io::Error> for ExecError {
    fn from(e: std::io::Error) -> Self {
        ExecError::Io(e)
    }
}

/// Everything a section's jobs share: the reference database, the key, and
/// the pre-generated traffic.
struct SectionContext {
    db: MeasurementDatabase,
    key: DeviceKey,
    traffic: Vec<TrafficSlot>,
}

fn prepare_section(spec_name: &str, job: &Job) -> Result<SectionContext, ExecError> {
    let workload = catalog::by_name(&job.workload).expect("enumerate validated the catalogue");
    let program = workload.program().expect("enumerate validated assembly");
    let key = DeviceKey::from_seed(&format!("fleet-{spec_name}-{}", job.workload));
    let verifier = Verifier::new(program.clone(), workload.name, key.verification_key())
        .map_err(DriveError::Prover)?;
    let db = MeasurementDatabase::build(&verifier, EngineConfig::default(), job.inputs.clone())
        .map_err(DriveError::Prover)?;
    let template =
        VerifierService::new(db.clone(), key.verification_key(), ServiceConfig::default());
    let mut prover = Prover::new(program.clone(), workload.name, key.clone());
    let slots = (0..job.scale)
        .map(|slot| {
            behaviour_for(job.adversary_for_slot(slot), &program)
                .map(|behaviour| (job.input_for_slot(slot).to_vec(), behaviour))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let traffic = generate_traffic(&template, &mut prover, slots)?;
    Ok(SectionContext { db, key, traffic })
}

fn fresh_service(section: &SectionContext, workers: usize) -> (Arc<VerifierService>, usize) {
    let workers = workers.clamp(1, 8);
    let config = ServiceConfig::sharded(4);
    let service = VerifierService::new(section.db.clone(), section.key.verification_key(), config);
    (Arc::new(service), workers)
}

/// The pause a slot observes before submitting, per the arrival pattern.
fn arrival_pause(arrival: Arrival, interval_us: u64, slot: usize, scale: usize) -> Duration {
    match arrival {
        Arrival::Burst => Duration::ZERO,
        Arrival::Uniform => Duration::from_micros(interval_us),
        Arrival::Ramp => {
            let remaining = (scale - slot.min(scale)) as u64;
            Duration::from_micros(interval_us * 2 * remaining / scale.max(1) as u64)
        }
    }
}

/// One observed verdict: the slot, the wire reason code, and the clean
/// round-trip latency when the observation was a normal submission.
struct Observation {
    code: u16,
    latency_us: Option<u64>,
}

fn decode_code(bytes: &[u8], job: usize, slot: usize) -> Result<u16, ExecError> {
    let envelope = Envelope::decode(bytes).map_err(ExecError::Wire)?;
    match envelope.message {
        Message::Verdict(v) => Ok(v.reason_code),
        _ => Err(ExecError::NotAVerdict { job, slot }),
    }
}

/// An undecodable submission the pool transport uses to mirror the socket's
/// hostile-length-prefix fault: the service answers `MALFORMED` either way.
const GARBAGE_BLOB: &[u8] = b"!! not an envelope !!";

/// Phase 1 over the in-process pool: `clients` threads, strided slots.
fn pool_phase1(
    job: &Job,
    traffic: &[TrafficSlot],
    pool: &ParallelVerifier,
) -> Result<Vec<Observation>, ExecError> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..job.clients)
            .map(|client| {
                scope.spawn(move || -> Result<Vec<Observation>, ExecError> {
                    let mut observations = Vec::new();
                    for slot in (client..job.scale).step_by(job.clients) {
                        let pause = arrival_pause(job.arrival, job.interval_us, slot, job.scale);
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                        if job.slot_is_faulted(slot) {
                            match job.fault {
                                FaultClass::DropConnection | FaultClass::SlowLoris => {
                                    // No transport to half-write through: the
                                    // evidence simply never arrives.
                                    continue;
                                }
                                FaultClass::DuplicateFrame => {
                                    for _ in 0..2 {
                                        let reply =
                                            pool.submit(traffic[slot].evidence.clone()).wait();
                                        let bytes = reply.reply.map_err(ExecError::Service)?;
                                        observations.push(Observation {
                                            code: decode_code(&bytes, job.index, slot)?,
                                            latency_us: None,
                                        });
                                    }
                                    continue;
                                }
                                FaultClass::OversizedPrefix => {
                                    let reply = pool.submit(GARBAGE_BLOB.to_vec()).wait();
                                    let bytes = reply.reply.map_err(ExecError::Service)?;
                                    observations.push(Observation {
                                        code: decode_code(&bytes, job.index, slot)?,
                                        latency_us: None,
                                    });
                                    // Fall through: the real evidence follows.
                                }
                                FaultClass::None => unreachable!("slot_is_faulted excludes None"),
                            }
                        }
                        let reply = pool.submit(traffic[slot].evidence.clone()).wait();
                        let latency_us = reply.latency.as_micros() as u64;
                        let bytes = reply.reply.map_err(ExecError::Service)?;
                        observations.push(Observation {
                            code: decode_code(&bytes, job.index, slot)?,
                            latency_us: Some(latency_us),
                        });
                    }
                    Ok(observations)
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().expect("fleet client thread panicked")?);
        }
        Ok(all)
    })
}

/// Phase 1 over a live server: `clients` connections, strided slots, raw
/// half-frame writes for the connection-level fault classes.
fn socket_phase1(
    job: &Job,
    traffic: &[TrafficSlot],
    addr: std::net::SocketAddr,
) -> Result<Vec<Observation>, ExecError> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..job.clients)
            .map(|client| {
                scope.spawn(move || -> Result<Vec<Observation>, ExecError> {
                    let mut prover_client = ProverClient::connect(addr)?;
                    let mut observations = Vec::new();
                    // Slow-loris victims stay open (half a frame in flight)
                    // until this client's work is done.
                    let mut held: Vec<TcpStream> = Vec::new();
                    for slot in (client..job.scale).step_by(job.clients) {
                        let pause = arrival_pause(job.arrival, job.interval_us, slot, job.scale);
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                        let evidence = &traffic[slot].evidence;
                        if job.slot_is_faulted(slot) {
                            match job.fault {
                                FaultClass::DropConnection => {
                                    let mut raw = TcpStream::connect(addr)?;
                                    raw.write_all(&(evidence.len() as u32).to_le_bytes())?;
                                    raw.write_all(&evidence[..evidence.len() / 2])?;
                                    drop(raw);
                                    continue;
                                }
                                FaultClass::SlowLoris => {
                                    let mut raw = TcpStream::connect(addr)?;
                                    raw.write_all(&(evidence.len() as u32).to_le_bytes())?;
                                    raw.write_all(&evidence[..evidence.len() / 2])?;
                                    held.push(raw);
                                    continue;
                                }
                                FaultClass::DuplicateFrame => {
                                    for _ in 0..2 {
                                        let (_, verdict) =
                                            prover_client.submit_evidence(evidence)?;
                                        observations.push(Observation {
                                            code: verdict.reason_code,
                                            latency_us: None,
                                        });
                                    }
                                    continue;
                                }
                                FaultClass::OversizedPrefix => {
                                    let mut raw = TcpStream::connect(addr)?;
                                    raw.write_all(&u32::MAX.to_le_bytes())?;
                                    let reply = lofat_net::frame::read_frame(&mut raw, 1 << 20)?
                                        .ok_or(NetError::Closed)?;
                                    observations.push(Observation {
                                        code: decode_code(&reply, job.index, slot)?,
                                        latency_us: None,
                                    });
                                    // Fall through: the real evidence follows
                                    // on the healthy connection.
                                }
                                FaultClass::None => unreachable!("slot_is_faulted excludes None"),
                            }
                        }
                        let started = Instant::now();
                        let (_, verdict) = prover_client.submit_evidence(evidence)?;
                        observations.push(Observation {
                            code: verdict.reason_code,
                            latency_us: Some(started.elapsed().as_micros() as u64),
                        });
                    }
                    drop(held);
                    Ok(observations)
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().expect("fleet client thread panicked")?);
        }
        Ok(all)
    })
}

/// Slots whose evidence is re-submitted in phase 2: replay-class slots that
/// actually submitted in phase 1 (drop/slow-loris victims never did).
fn phase2_slots(job: &Job, traffic: &[TrafficSlot]) -> Vec<usize> {
    (0..job.scale)
        .filter(|&slot| {
            traffic[slot].replay
                && !(job.slot_is_faulted(slot)
                    && matches!(job.fault, FaultClass::DropConnection | FaultClass::SlowLoris))
        })
        .collect()
}

fn percentile_us(sorted: &[u64], fraction: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * fraction).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn collect_outcome(
    job: &Job,
    transport: Transport,
    observations: Vec<Observation>,
    service: &VerifierService,
) -> ScenarioOutcome {
    collect_outcome_from_books(
        job,
        transport,
        observations,
        service.stats(),
        service.live_sessions(),
    )
}

/// [`collect_outcome`] with the service books supplied directly — the front
/// transport sums the per-partition snapshots first.
fn collect_outcome_from_books(
    job: &Job,
    transport: Transport,
    observations: Vec<Observation>,
    stats: ServiceStats,
    live: usize,
) -> ScenarioOutcome {
    let mut verdicts: BTreeMap<u16, u64> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    for observation in &observations {
        *verdicts.entry(observation.code).or_insert(0) += 1;
        if let Some(us) = observation.latency_us {
            latencies.push(us);
        }
    }
    latencies.sort_unstable();
    let conserved = stats.is_conserved(live);
    ScenarioOutcome {
        job: job.clone(),
        transport,
        verdict_total: verdicts.values().sum(),
        accepted_verdicts: verdicts.get(&code::ACCEPTED).copied().unwrap_or(0),
        p50_latency_us: percentile_us(&latencies, 0.50),
        p99_latency_us: percentile_us(&latencies, 0.99),
        verdicts,
        stats,
        live,
        conserved,
    }
}

/// Runs one job over the in-process pool.
fn run_pool_job(job: &Job, section: &SectionContext) -> Result<ScenarioOutcome, ExecError> {
    let (service, workers) = fresh_service(section, job.clients);
    // Open every session up front, in slot order: ids and nonces line up with
    // the pre-generated traffic, and the challenges must match byte for byte.
    for (slot, traffic_slot) in section.traffic.iter().enumerate() {
        let id = service.open_session(traffic_slot.input.clone())?;
        let challenge = service.challenge_envelope(id)?.encode().map_err(ExecError::Wire)?;
        if challenge != traffic_slot.challenge {
            return Err(ExecError::ChallengeMismatch { job: job.index, slot });
        }
    }
    let pool = ParallelVerifier::spawn(Arc::clone(&service), PoolConfig::with_workers(workers));
    let mut observations = pool_phase1(job, &section.traffic, &pool)?;
    // Phase 2: replay-class slots re-submit their (now decided) evidence.
    for slot in phase2_slots(job, &section.traffic) {
        let reply = pool.submit(section.traffic[slot].evidence.clone()).wait();
        let bytes = reply.reply.map_err(ExecError::Service)?;
        observations
            .push(Observation { code: decode_code(&bytes, job.index, slot)?, latency_us: None });
    }
    pool.join();
    Ok(collect_outcome(job, Transport::Pool, observations, &service))
}

/// Either live-server flavor behind the bits of surface the executor needs.
enum AnyServer {
    Blocking(VerifierServer),
    Epoll(EventLoopServer),
}

impl AnyServer {
    fn bind(
        transport: Transport,
        service: Arc<VerifierService>,
        config: ServerConfig,
    ) -> Result<Self, NetError> {
        match transport {
            Transport::Socket => {
                Ok(AnyServer::Blocking(VerifierServer::bind("127.0.0.1:0", service, config)?))
            }
            Transport::Epoll => {
                Ok(AnyServer::Epoll(EventLoopServer::bind("127.0.0.1:0", service, config)?))
            }
            Transport::Pool | Transport::Front => {
                unreachable!("pool and front jobs build their own backends")
            }
        }
    }

    fn local_addr(&self) -> std::net::SocketAddr {
        match self {
            AnyServer::Blocking(server) => server.local_addr(),
            AnyServer::Epoll(server) => server.local_addr(),
        }
    }

    fn shutdown(self) {
        match self {
            AnyServer::Blocking(server) => server.shutdown(),
            AnyServer::Epoll(server) => server.shutdown(),
        }
    }
}

/// Runs one job against a live loopback server of the given flavor.
fn run_socket_job(
    job: &Job,
    section: &SectionContext,
    transport: Transport,
) -> Result<ScenarioOutcome, ExecError> {
    let (service, workers) = fresh_service(section, job.clients);
    let config = ServerConfig {
        max_connections: job.clients + job.scale + 8,
        limits: NetLimits::server()
            .with_read_timeout(Some(Duration::from_secs(5)))
            .with_write_timeout(Some(Duration::from_secs(5))),
        pool: PoolConfig::with_workers(workers),
        ..ServerConfig::default()
    };
    let server = AnyServer::bind(transport, Arc::clone(&service), config)?;
    let addr = server.local_addr();
    let outcome = (|| -> Result<ScenarioOutcome, ExecError> {
        // One opener requests every challenge in slot order, so session ids
        // and nonces line up with the pre-generated traffic.
        let mut opener = ProverClient::connect(addr)?;
        for (slot, traffic_slot) in section.traffic.iter().enumerate() {
            let (envelope, bytes) =
                opener.request_challenge(&job.workload, traffic_slot.input.clone())?;
            if envelope.session != SessionId(slot as u64 + 1) || bytes != traffic_slot.challenge {
                return Err(ExecError::ChallengeMismatch { job: job.index, slot });
            }
        }
        let mut observations = socket_phase1(job, &section.traffic, addr)?;
        for slot in phase2_slots(job, &section.traffic) {
            let (_, verdict) = opener.submit_evidence(&section.traffic[slot].evidence)?;
            observations.push(Observation { code: verdict.reason_code, latency_us: None });
        }
        drop(opener);
        Ok(collect_outcome(job, transport, observations, &service))
    })();
    server.shutdown();
    outcome
}

/// How many `lofat serve`-shaped backend processes the front transport
/// simulates.  Each backend serves one partition of the session/nonce space;
/// two is the smallest count that exercises cross-partition routing.
const FRONT_PARTITIONS: u64 = 2;

/// Runs one job through a [`FanOutFront`] over `FRONT_PARTITIONS` partitioned
/// blocking servers — the multi-process deployment shape, in-process.
///
/// The front round-robins session requests, each backend issues ids on its
/// own stripes (`partition + shard·P + issued·stripes`), and a single
/// sequential opener therefore sees the same dense id sequence — and the same
/// challenge bytes — as every other transport.  The outcome's books are the
/// **sum** of the per-partition snapshots ([`ServiceStats::absorb`]); the
/// differential in [`run`]'s callers then proves the deployment is
/// stats-conserving and verdict-identical to one service.
fn run_front_job(job: &Job, section: &SectionContext) -> Result<ScenarioOutcome, ExecError> {
    let workers = job.clients.clamp(1, 8);
    let mut services = Vec::new();
    let mut servers = Vec::new();
    let mut backends = Vec::new();
    for partition in 0..FRONT_PARTITIONS {
        let config = ServiceConfig::sharded(2).partitioned(partition, FRONT_PARTITIONS);
        let service = Arc::new(VerifierService::new(
            section.db.clone(),
            section.key.verification_key(),
            config,
        ));
        let server_config = ServerConfig {
            max_connections: job.clients + job.scale + 8,
            limits: NetLimits::server()
                .with_read_timeout(Some(Duration::from_secs(5)))
                .with_write_timeout(Some(Duration::from_secs(5))),
            pool: PoolConfig::with_workers(workers),
            ..ServerConfig::default()
        };
        let server = VerifierServer::bind("127.0.0.1:0", Arc::clone(&service), server_config)?;
        backends.push(server.local_addr());
        services.push(service);
        servers.push(server);
    }
    let front_config = ServerConfig {
        max_connections: job.clients + job.scale + 8,
        limits: NetLimits::server()
            .with_read_timeout(Some(Duration::from_secs(5)))
            .with_write_timeout(Some(Duration::from_secs(5))),
        ..ServerConfig::default()
    };
    let front = FanOutFront::bind("127.0.0.1:0", backends, front_config)?;
    let addr = front.local_addr();
    let outcome = (|| -> Result<ScenarioOutcome, ExecError> {
        let mut opener = ProverClient::connect(addr)?;
        for (slot, traffic_slot) in section.traffic.iter().enumerate() {
            let (envelope, bytes) =
                opener.request_challenge(&job.workload, traffic_slot.input.clone())?;
            if envelope.session != SessionId(slot as u64 + 1) || bytes != traffic_slot.challenge {
                return Err(ExecError::ChallengeMismatch { job: job.index, slot });
            }
        }
        let mut observations = socket_phase1(job, &section.traffic, addr)?;
        for slot in phase2_slots(job, &section.traffic) {
            let (_, verdict) = opener.submit_evidence(&section.traffic[slot].evidence)?;
            observations.push(Observation { code: verdict.reason_code, latency_us: None });
        }
        drop(opener);
        let mut stats = ServiceStats::default();
        let mut live = 0usize;
        for service in &services {
            stats.absorb(&service.stats());
            live += service.live_sessions();
        }
        Ok(collect_outcome_from_books(job, Transport::Front, observations, stats, live))
    })();
    front.shutdown();
    for server in servers {
        server.shutdown();
    }
    outcome
}

/// Expands `spec` and executes every job over the transports `options`
/// enables, pool first.
///
/// # Errors
///
/// Propagates enumeration, generation, transport and determinism failures;
/// the report is all-or-nothing.
pub fn run(spec: &FleetSpec, options: ExecOptions) -> Result<FleetReport, ExecError> {
    let mut spec = spec.clone();
    if let Some(scale) = options.scale_override {
        for section in &mut spec.sections {
            section.scale = scale.max(1);
        }
    }
    let jobs = enumerate(&spec)?;
    let mut outcomes = Vec::new();
    let mut sections: BTreeMap<usize, SectionContext> = BTreeMap::new();
    for job in &jobs {
        if let std::collections::btree_map::Entry::Vacant(e) = sections.entry(job.section) {
            e.insert(prepare_section(&spec.name, job)?);
        }
        let section = &sections[&job.section];
        if options.pool {
            outcomes.push(run_pool_job(job, section)?);
        }
        if options.socket {
            outcomes.push(run_socket_job(job, section, Transport::Socket)?);
        }
        if options.epoll {
            outcomes.push(run_socket_job(job, section, Transport::Epoll)?);
        }
        if options.front {
            outcomes.push(run_front_job(job, section)?);
        }
    }
    Ok(FleetReport { spec_name: spec.name.clone(), outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_pauses_are_monotone_for_ramp() {
        let early = arrival_pause(Arrival::Ramp, 100, 0, 8);
        let late = arrival_pause(Arrival::Ramp, 100, 7, 8);
        assert!(early > late, "ramp starts slow and speeds up");
        assert_eq!(arrival_pause(Arrival::Burst, 100, 3, 8), Duration::ZERO);
        assert_eq!(arrival_pause(Arrival::Uniform, 100, 3, 8), Duration::from_micros(100));
    }

    #[test]
    fn percentiles_index_sorted_samples() {
        assert_eq!(percentile_us(&[], 0.5), 0);
        assert_eq!(percentile_us(&[7], 0.99), 7);
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&samples, 0.50), 51, "rank rounds to nearest");
        assert_eq!(percentile_us(&samples, 0.99), 99);
    }

    #[test]
    fn a_tiny_fleet_runs_identically_on_every_transport() {
        let spec = FleetSpec::parse(
            "fleet unit\nscale = 4\n[workload fig4-loop]\nadversaries = honest, forge\nfaults = none, duplicate-frame\n",
        )
        .unwrap();
        let report = run(&spec, ExecOptions::default()).expect("runs");
        assert_eq!(report.outcomes.len(), 8, "2 jobs × 4 transports");
        for group in report.outcomes.chunks(4) {
            let pool = &group[0];
            assert_eq!(pool.transport, Transport::Pool);
            assert_eq!(group[1].transport, Transport::Socket);
            assert_eq!(group[2].transport, Transport::Epoll);
            assert_eq!(group[3].transport, Transport::Front);
            for other in &group[1..] {
                let label = format!("{} vs {}", pool.job.label(), other.transport.name());
                assert_eq!(pool.verdicts, other.verdicts, "{label}");
                assert!(other.conserved, "{label}");
                assert_eq!(pool.stats.accepted, other.stats.accepted, "{label}");
                assert_eq!(pool.live, other.live, "{label}");
            }
            assert!(pool.conserved);
        }
        let first = &report.outcomes[0];
        assert_eq!(first.accepted_verdicts, 2, "two honest slots of four");
        assert_eq!(first.verdicts.get(&code::BAD_SIGNATURE), Some(&2));
    }
}

//! The shared session-driving core: turn an adversary class into a concrete
//! slot behaviour for a workload, and pre-generate a fleet's traffic against
//! a template service.
//!
//! Several harnesses used to carry private copies of the same loop — open a
//! session, fetch the challenge, answer it honestly / adversarially / with a
//! forged signature, keep the bytes.  This module is the single copy: the
//! fleet executor, `lofat serve-bench`, the e14 network differential suite
//! and `lofat sessions` all generate their traffic here.
//!
//! The load-bearing trick is **nonce determinism**: a fresh
//! [`VerifierService`] issues nonces in open order, so evidence generated
//! against a throwaway template service answers *any* fresh instance whose
//! sessions are opened in the same order — including one behind a TCP server
//! or a worker pool.  That is what makes pool-vs-socket runs byte-comparable.

use crate::spec::Adversary;
use lofat::session::ProverSession;
use lofat::wire::{Envelope, EvidenceMsg, Message, WireError};
use lofat::{LofatError, Prover, ServiceError, VerifierService};
use lofat_crypto::Digest;
use lofat_rv32::Program;
use lofat_workloads::attack;
use std::fmt;

/// What one session slot does with its challenge.
pub enum SlotBehaviour {
    /// Answer honestly.
    Honest,
    /// Answer honestly, then flip one authenticator byte (breaks the
    /// signature; expected `BAD_SIGNATURE`).
    Forge,
    /// Answer honestly in phase 1; the harness re-submits the same evidence
    /// in phase 2 (expected `NONCE_REPLAYED`).
    Replay,
    /// Run the attested execution under a fault-injection hook.
    Fault(attack::Fault),
}

impl fmt::Debug for SlotBehaviour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotBehaviour::Honest => write!(f, "Honest"),
            SlotBehaviour::Forge => write!(f, "Forge"),
            SlotBehaviour::Replay => write!(f, "Replay"),
            SlotBehaviour::Fault(_) => write!(f, "Fault(..)"),
        }
    }
}

/// One slot's pre-generated traffic.
#[derive(Debug, Clone)]
pub struct TrafficSlot {
    /// The session's input vector.
    pub input: Vec<u32>,
    /// Whether the harness should re-submit this slot's evidence in a second
    /// phase (the [`Adversary::Replay`] class).
    pub replay: bool,
    /// Encoded challenge envelope, as a fresh service issues it.
    pub challenge: Vec<u8>,
    /// Encoded evidence envelope answering that challenge.
    pub evidence: Vec<u8>,
}

/// Errors from behaviour resolution and traffic generation.
#[derive(Debug)]
#[non_exhaustive]
pub enum DriveError {
    /// The adversary class targets a symbol this workload does not export.
    MissingSymbol {
        /// The class that needs the symbol.
        adversary: Adversary,
        /// The symbol the workload lacks.
        symbol: &'static str,
    },
    /// The template service refused a session or challenge.
    Service(ServiceError),
    /// Challenge or evidence bytes failed to (de)code.
    Wire(WireError),
    /// The prover failed to execute or sign.
    Prover(LofatError),
}

impl fmt::Display for DriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriveError::MissingSymbol { adversary, symbol } => {
                write!(
                    f,
                    "adversary `{}` needs symbol `{symbol}` this workload does not export",
                    adversary.name()
                )
            }
            DriveError::Service(e) => write!(f, "template service: {e}"),
            DriveError::Wire(e) => write!(f, "wire codec: {e}"),
            DriveError::Prover(e) => write!(f, "prover: {e}"),
        }
    }
}

impl std::error::Error for DriveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriveError::MissingSymbol { .. } => None,
            DriveError::Service(e) => Some(e),
            DriveError::Wire(e) => Some(e),
            DriveError::Prover(e) => Some(e),
        }
    }
}

fn require_symbol(
    program: &Program,
    adversary: Adversary,
    symbol: &'static str,
) -> Result<u32, DriveError> {
    program.symbol(symbol).ok_or(DriveError::MissingSymbol { adversary, symbol })
}

/// Resolves an adversary class to the concrete behaviour it plays against
/// `program`, binding the stock attack constructors to the workload's
/// exported symbols.
///
/// # Errors
///
/// [`DriveError::MissingSymbol`] when the class targets a symbol the workload
/// does not export (e.g. `code-pointer` needs the dispatch table).
pub fn behaviour_for(adversary: Adversary, program: &Program) -> Result<SlotBehaviour, DriveError> {
    Ok(match adversary {
        Adversary::Honest => SlotBehaviour::Honest,
        Adversary::Forge => SlotBehaviour::Forge,
        Adversary::Replay => SlotBehaviour::Replay,
        Adversary::Poke => {
            let input = require_symbol(program, adversary, "input")?;
            SlotBehaviour::Fault(attack::poke_at_instruction(2, input, 1))
        }
        Adversary::LoopCounter => {
            let input = require_symbol(program, adversary, "input")?;
            SlotBehaviour::Fault(attack::loop_counter_attack(input, 50))
        }
        Adversary::NonControlData => {
            let input = require_symbol(program, adversary, "input")?;
            SlotBehaviour::Fault(attack::non_control_data_attack(input, 9))
        }
        Adversary::CodePointer => {
            let table = require_symbol(program, adversary, "table")?;
            let target = require_symbol(program, adversary, "op_clear")?;
            SlotBehaviour::Fault(attack::code_pointer_attack(table, 0, target))
        }
        Adversary::ReturnAddress => {
            let process = require_symbol(program, adversary, "process")?;
            let privileged = require_symbol(program, adversary, "privileged")?;
            SlotBehaviour::Fault(attack::return_address_attack(process + 8, 12, privileged))
        }
        Adversary::DataOnly => {
            let output = require_symbol(program, adversary, "motor_pulses")?;
            SlotBehaviour::Fault(attack::data_only_attack(output, 9999))
        }
    })
}

/// Pre-generates traffic for a sequence of `(input, behaviour)` slots against
/// a throwaway `template` service: opens one session per slot **in order**
/// (so nonces match any fresh service driven the same way), fetches the
/// challenge and produces the evidence the behaviour dictates.
///
/// # Errors
///
/// Propagates template-service refusals, codec failures and prover execution
/// errors; nothing is half-generated.
pub fn generate_traffic(
    template: &VerifierService,
    prover: &mut Prover,
    slots: impl IntoIterator<Item = (Vec<u32>, SlotBehaviour)>,
) -> Result<Vec<TrafficSlot>, DriveError> {
    let mut traffic = Vec::new();
    for (input, behaviour) in slots {
        let id = template.open_session(input.clone()).map_err(DriveError::Service)?;
        let challenge = template
            .challenge_envelope(id)
            .map_err(DriveError::Service)?
            .encode()
            .map_err(DriveError::Wire)?;
        let mut replay = false;
        let evidence = match behaviour {
            SlotBehaviour::Honest => {
                ProverSession::new(prover).handle_bytes(&challenge).map_err(DriveError::Prover)?
            }
            SlotBehaviour::Replay => {
                replay = true;
                ProverSession::new(prover).handle_bytes(&challenge).map_err(DriveError::Prover)?
            }
            SlotBehaviour::Forge => {
                let decoded = Envelope::decode(&challenge).map_err(DriveError::Wire)?;
                let (_, run) =
                    ProverSession::new(prover).respond(&decoded).map_err(DriveError::Prover)?;
                let mut report = run.report;
                let mut bytes = report.authenticator.as_bytes().to_vec();
                bytes[0] ^= 0x01;
                report.authenticator = Digest::from_bytes(bytes);
                Envelope::new(id, Message::Evidence(EvidenceMsg { report }))
                    .encode()
                    .map_err(DriveError::Wire)?
            }
            SlotBehaviour::Fault(mut fault) => {
                let decoded = Envelope::decode(&challenge).map_err(DriveError::Wire)?;
                let (envelope, _run) = ProverSession::new(prover)
                    .respond_with_adversary(&decoded, &mut fault)
                    .map_err(DriveError::Prover)?;
                envelope.encode().map_err(DriveError::Wire)?
            }
        };
        traffic.push(TrafficSlot { input, replay, challenge, evidence });
    }
    Ok(traffic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lofat::wire::{code, SessionId, VerdictMsg};
    use lofat::{EngineConfig, MeasurementDatabase, ServiceConfig, Verifier};
    use lofat_crypto::DeviceKey;
    use lofat_workloads::catalog;

    fn harness(name: &str) -> (Program, VerifierService, VerifierService, Prover) {
        let workload = catalog::by_name(name).expect("catalogue workload");
        let program = workload.program().expect("assembles");
        let key = DeviceKey::from_seed("driver-tests");
        let verifier =
            Verifier::new(program.clone(), workload.name, key.verification_key()).expect("cfg");
        let db = MeasurementDatabase::build(
            &verifier,
            EngineConfig::default(),
            vec![workload.default_input.clone()],
        )
        .expect("reference measurements");
        let template =
            VerifierService::new(db.clone(), key.verification_key(), ServiceConfig::default());
        let fresh = VerifierService::new(db, key.verification_key(), ServiceConfig::default());
        let prover = Prover::new(program.clone(), workload.name, key);
        (program, template, fresh, prover)
    }

    fn verdict(bytes: &[u8]) -> VerdictMsg {
        match Envelope::decode(bytes).expect("verdict decodes").message {
            Message::Verdict(v) => v,
            other => panic!("expected verdict, got {other:?}"),
        }
    }

    #[test]
    fn pregenerated_traffic_answers_a_fresh_service() {
        let (program, template, fresh, mut prover) = harness("fig4-loop");
        let input = catalog::by_name("fig4-loop").unwrap().default_input;
        let slots: Vec<(Vec<u32>, SlotBehaviour)> =
            [Adversary::Honest, Adversary::Forge, Adversary::Replay, Adversary::Poke]
                .into_iter()
                .map(|a| (input.clone(), behaviour_for(a, &program).expect("applicable")))
                .collect();
        let traffic = generate_traffic(&template, &mut prover, slots).expect("generates");
        assert_eq!(traffic.len(), 4);
        assert!(traffic[2].replay && !traffic[0].replay);

        // Open the same sessions on the fresh instance: challenges match byte
        // for byte, and the evidence produces the expected verdicts.
        for (i, slot) in traffic.iter().enumerate() {
            let id = fresh.open_session(slot.input.clone()).expect("capacity");
            assert_eq!(id, SessionId(i as u64 + 1));
            let challenge =
                fresh.challenge_envelope(id).expect("challenge").encode().expect("encode");
            assert_eq!(challenge, slot.challenge, "slot {i} challenge differs");
        }
        let codes: Vec<u16> = traffic
            .iter()
            .map(|s| verdict(&fresh.handle_bytes(&s.evidence).expect("verdict")).reason_code)
            .collect();
        assert_eq!(
            codes,
            vec![code::ACCEPTED, code::BAD_SIGNATURE, code::ACCEPTED, code::AUTHENTICATOR_MISMATCH]
        );
        // Replaying the replay slot now bounces.
        let again = verdict(&fresh.handle_bytes(&traffic[2].evidence).expect("verdict"));
        assert_eq!(again.reason_code, code::NONCE_REPLAYED);
    }

    #[test]
    fn missing_symbols_are_typed_errors() {
        let (program, ..) = harness("fig4-loop");
        match behaviour_for(Adversary::CodePointer, &program) {
            Err(DriveError::MissingSymbol { adversary: Adversary::CodePointer, symbol }) => {
                assert_eq!(symbol, "table");
            }
            other => panic!("expected MissingSymbol, got {other:?}"),
        }
        match behaviour_for(Adversary::DataOnly, &program) {
            Err(DriveError::MissingSymbol { symbol: "motor_pulses", .. }) => {}
            other => panic!("expected MissingSymbol, got {other:?}"),
        }
    }

    #[test]
    fn stock_attacks_bind_to_their_victim_workloads() {
        for (workload, adversary) in [
            ("dispatch", Adversary::CodePointer),
            ("return-victim", Adversary::ReturnAddress),
            ("syringe-pump", Adversary::DataOnly),
        ] {
            let (program, ..) = harness(workload);
            assert!(
                matches!(behaviour_for(adversary, &program), Ok(SlotBehaviour::Fault(_))),
                "{workload} should support {}",
                adversary.name()
            );
        }
    }
}

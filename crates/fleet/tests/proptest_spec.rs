//! Property-based tests of the fleet spec format.
//!
//! The parser and `to_text` together define the format; the properties pin
//! the contract the rest of the pipeline leans on: formatting a spec and
//! re-parsing it is the identity, the canonical form is a fixed point,
//! hostile/truncated text is rejected with a typed error (never a panic),
//! and the enumerator's job count is exactly the declared cross-product.

use lofat_fleet::spec::{Adversary, Arrival, FaultClass, FleetSpec, InputSpec, WorkloadPlan};
use lofat_fleet::{enumerate_jobs, job_count};
use proptest::prelude::*;

/// Picks a non-empty subsequence of `all` in stable order, driven by `mask`.
fn subset<T: Copy>(all: &[T], mask: u64) -> Vec<T> {
    let picked: Vec<T> =
        all.iter().enumerate().filter(|(i, _)| mask >> i & 1 == 1).map(|(_, &item)| item).collect();
    if picked.is_empty() {
        vec![all[mask as usize % all.len()]]
    } else {
        picked
    }
}

/// Builds one fully-resolved workload section from a handful of integer draws.
/// Every field stays within what the parser can express, so `to_text` must
/// round-trip it exactly.
fn section(
    workload: String,
    adv_mask: u64,
    dims: u64,
    scale: usize,
    inputs: InputSpec,
) -> WorkloadPlan {
    WorkloadPlan {
        workload,
        inputs,
        adversaries: subset(&Adversary::ALL, adv_mask),
        clients: subset(&[1, 2, 3, 4, 6, 8], dims),
        arrivals: subset(&[Arrival::Burst, Arrival::Uniform, Arrival::Ramp], dims >> 6),
        faults: subset(
            &[
                FaultClass::None,
                FaultClass::DropConnection,
                FaultClass::SlowLoris,
                FaultClass::DuplicateFrame,
                FaultClass::OversizedPrefix,
            ],
            dims >> 9,
        ),
        scale,
        interval_us: (dims >> 14 & 0x3ff) + 1,
        fault_every: (dims >> 24 & 0x7) as usize + 1,
    }
}

fn input_spec(selector: u64) -> InputSpec {
    match selector % 3 {
        0 => InputSpec::Default,
        1 => InputSpec::Explicit(vec![vec![(selector >> 2) as u32 % 97 + 1]]),
        _ => InputSpec::Explicit(vec![
            vec![(selector >> 2) as u32 % 97 + 1, (selector >> 9) as u32 % 13 + 1],
            vec![(selector >> 16) as u32 % 7 + 1],
        ]),
    }
}

/// A random but well-formed spec: 1–3 sections, arbitrary names from the
/// accepted charset, every dimension non-empty.
fn build_spec(
    name: String,
    section_names: Vec<String>,
    masks: (u64, u64, u64),
    scale: usize,
    inputs_selector: u64,
) -> FleetSpec {
    let (adv_mask, dims, extra) = masks;
    let sections = section_names
        .into_iter()
        .enumerate()
        .map(|(i, workload)| {
            let rot = i as u64 * 7 + 1;
            section(
                workload,
                adv_mask.rotate_right(rot as u32),
                dims.rotate_right(rot as u32),
                scale + i,
                input_spec(inputs_selector.rotate_right(rot as u32)),
            )
        })
        .collect();
    FleetSpec {
        name,
        scale,
        interval_us: extra & 0x3ff | 1,
        fault_every: (extra >> 10 & 0x7) as usize + 1,
        sections,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// `parse(to_text(spec)) == spec` for arbitrary well-formed specs, and the
    /// canonical text is a fixed point of the round trip.
    #[test]
    fn format_then_parse_is_identity(
        name in "[a-z][a-z0-9._-]{0,11}",
        w1 in "[a-z][a-z0-9-]{0,7}",
        w2 in "[A-Z0-9._-]{1,8}",
        masks in (1u64..u64::MAX, 1u64..u64::MAX, 0u64..u64::MAX),
        scale in 1usize..64,
        sections in 1usize..4,
    ) {
        let section_names = [w1.clone(), w2, format!("{w1}-alt")];
        let spec = build_spec(name, section_names[..sections].to_vec(), masks, scale, masks.2);
        let canonical = spec.to_text();
        let reparsed = FleetSpec::parse(&canonical);
        prop_assert_eq!(&reparsed, &Ok(spec), "canonical text:\n{}", canonical);
        prop_assert_eq!(
            reparsed.expect("just matched Ok").to_text(),
            canonical,
            "to_text is not a fixed point"
        );
    }

    /// Truncating well-formed text anywhere never panics the parser: it either
    /// still parses (the cut fell on a whole-line boundary past the last
    /// required element) or fails with a typed error.
    #[test]
    fn truncated_specs_fail_closed(
        masks in (1u64..u64::MAX, 1u64..u64::MAX, 0u64..u64::MAX),
        scale in 1usize..16,
        cut_fraction in 0u32..1000,
    ) {
        let spec = build_spec(
            "trunc".to_string(),
            vec!["alpha".to_string(), "beta".to_string()],
            masks,
            scale,
            masks.1,
        );
        let canonical = spec.to_text();
        let mut cut = canonical.len() * cut_fraction as usize / 1000;
        while !canonical.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &canonical[..cut];
        match FleetSpec::parse(truncated) {
            Ok(reparsed) => {
                // Only a cut past the last section's final key can still parse,
                // and then only as a prefix of the original spec.
                prop_assert_eq!(&reparsed.name, &spec.name);
                prop_assert!(reparsed.sections.len() <= spec.sections.len());
            }
            Err(err) => {
                // Typed rejection; Display must not panic either.
                let _ = err.to_string();
            }
        }
    }

    /// Re-assigning any key the canonical form already wrote is a duplicate-key
    /// rejection, and an invented key is unknown — the format has no silent
    /// last-write-wins semantics anywhere.
    #[test]
    fn duplicate_and_unknown_keys_are_rejected(
        masks in (1u64..u64::MAX, 1u64..u64::MAX, 0u64..u64::MAX),
        scale in 1usize..16,
        hostile_key in "[a-z][a-z-]{0,10}",
    ) {
        let spec = build_spec(
            "dup".to_string(),
            vec!["alpha".to_string()],
            masks,
            scale,
            masks.0,
        );
        let canonical = spec.to_text();

        let duplicated = format!("{canonical}scale = 1\n");
        prop_assert!(
            matches!(
                FleetSpec::parse(&duplicated),
                Err(lofat_fleet::SpecError::DuplicateKey { .. })
            ),
            "trailing duplicate `scale` must be rejected"
        );

        const KNOWN: [&str; 8] = [
            "scale", "interval-us", "fault-every", "inputs", "adversaries", "clients",
            "arrival", "faults",
        ];
        if !KNOWN.contains(&hostile_key.as_str()) {
            let hostile = format!("{canonical}{hostile_key} = 1\n");
            prop_assert!(
                matches!(
                    FleetSpec::parse(&hostile),
                    Err(lofat_fleet::SpecError::UnknownKey { .. })
                ),
                "invented key `{}` must be rejected",
                hostile_key
            );
        }
    }

    /// The enumerator expands exactly the declared cross-product: for every
    /// section, one job per (clients × arrival × fault) combination, in order.
    #[test]
    fn enumeration_count_is_the_cross_product(
        masks in (1u64..u64::MAX, 1u64..u64::MAX, 0u64..u64::MAX),
        scale in 1usize..8,
        sections in 1usize..3,
    ) {
        // Real catalogue workloads with symbol-free adversaries so the
        // enumerator's validation pass accepts every section.
        let names = ["fig4-loop".to_string(), "gcd".to_string()];
        let mut spec = build_spec("count".to_string(), names[..sections].to_vec(), masks, scale, 0);
        for section in &mut spec.sections {
            section.adversaries =
                subset(&[Adversary::Honest, Adversary::Forge, Adversary::Replay], masks.0);
            section.inputs = InputSpec::Default;
        }
        let jobs = enumerate_jobs(&spec).expect("catalogue sections enumerate");
        let expected: usize = spec
            .sections
            .iter()
            .map(|s| s.clients.len() * s.arrivals.len() * s.faults.len())
            .sum();
        prop_assert_eq!(jobs.len(), expected);
        prop_assert_eq!(job_count(&spec), expected);
        for (i, job) in jobs.iter().enumerate() {
            prop_assert_eq!(job.index, i, "jobs are dense in enumeration order");
        }
    }
}

//! Property-based tests of the RV32 substrate: instruction encode/decode round
//! trips, ALU semantics against a Rust reference model, and assembler/CPU
//! integration on randomly generated straight-line programs.

use lofat_rv32::asm::assemble;
use lofat_rv32::isa::{AluImmOp, AluOp, BranchCond, Instruction, LoadWidth, Reg, StoreWidth};
use lofat_rv32::{Cpu, Program};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Mulhsu),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

fn any_branch_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn any_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (any_alu_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instruction::Alu { op, rd, rs1, rs2 }),
        (any_reg(), any_reg(), -2048i32..=2047).prop_map(|(rd, rs1, imm)| Instruction::AluImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm
        }),
        (any_reg(), any_reg(), 0i32..=31).prop_map(|(rd, rs1, imm)| Instruction::AluImm {
            op: AluImmOp::Slli,
            rd,
            rs1,
            imm
        }),
        (any_reg(), any_reg(), -2048i32..=2047).prop_map(|(rd, rs1, offset)| Instruction::Load {
            width: LoadWidth::Word,
            rd,
            rs1,
            offset
        }),
        (any_reg(), any_reg(), -2048i32..=2047).prop_map(|(rs2, rs1, offset)| Instruction::Store {
            width: StoreWidth::Word,
            rs2,
            rs1,
            offset
        }),
        (any_branch_cond(), any_reg(), any_reg(), -2048i32..=2047).prop_map(
            |(cond, rs1, rs2, half)| Instruction::Branch { cond, rs1, rs2, offset: half * 2 }
        ),
        (any_reg(), -524_288i32..=524_287)
            .prop_map(|(rd, half)| Instruction::Jal { rd, offset: half * 2 }),
        (any_reg(), any_reg(), -2048i32..=2047).prop_map(|(rd, rs1, offset)| Instruction::Jalr {
            rd,
            rs1,
            offset
        }),
        (any_reg(), -524_288i32..=524_287)
            .prop_map(|(rd, upper)| Instruction::Lui { rd, imm: upper << 12 }),
        (any_reg(), -524_288i32..=524_287)
            .prop_map(|(rd, upper)| Instruction::Auipc { rd, imm: upper << 12 }),
        Just(Instruction::Ecall),
        Just(Instruction::Ebreak),
        Just(Instruction::Fence),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Every representable instruction survives an encode/decode round trip.
    #[test]
    fn encode_decode_roundtrip(inst in any_instruction()) {
        let word = inst.encode();
        let decoded = Instruction::decode(word, 0x1000).expect("decode");
        prop_assert_eq!(inst, decoded);
    }

    /// Decoding an arbitrary word either fails or re-encodes to an equivalent word
    /// (decode is the partial inverse of encode on its image).
    #[test]
    fn decode_then_encode_is_stable(word in any::<u32>()) {
        if let Ok(inst) = Instruction::decode(word, 0) {
            let reencoded = inst.encode();
            let redecoded = Instruction::decode(reencoded, 0).expect("re-decode");
            prop_assert_eq!(inst, redecoded);
        }
    }

    /// The CPU's register-register ALU agrees with a Rust reference model.
    #[test]
    fn alu_matches_reference(op in any_alu_op(), a in any::<u32>(), b in any::<u32>()) {
        let a2 = Reg::parse("a2").unwrap();
        let program = Program::from_instructions(&[
            Instruction::Alu { op, rd: Reg::A0, rs1: Reg::A1, rs2: a2 },
            Instruction::Ecall,
        ]);
        let mut cpu = Cpu::new(&program).expect("load");
        cpu.set_reg(Reg::A1, a);
        cpu.set_reg(Reg::parse("a2").unwrap(), b);
        let exit = cpu.run(1000).expect("run");
        let expected = reference_alu(op, a, b);
        prop_assert_eq!(exit.register_a0, expected);
    }

    /// Stored words can always be loaded back from the data segment.
    #[test]
    fn store_load_roundtrip(value in any::<u32>(), offset in 0u32..1000) {
        let offset = (offset & !3) as i32;
        let program = Program::from_instructions(&[
            Instruction::Store { width: StoreWidth::Word, rs2: Reg::A1, rs1: Reg::GP, offset },
            Instruction::Load { width: LoadWidth::Word, rd: Reg::A0, rs1: Reg::GP, offset },
            Instruction::Ecall,
        ]);
        let mut cpu = Cpu::new(&program).expect("load");
        cpu.set_reg(Reg::A1, value);
        let exit = cpu.run(1000).expect("run");
        prop_assert_eq!(exit.register_a0, value);
    }

    /// A generated counting loop computes the expected sum for any bound, and the
    /// assembler/CPU pipeline agrees with the arithmetic model.
    #[test]
    fn assembled_sum_loop_is_correct(n in 0u32..500) {
        let source = format!(
            ".text\nmain:\n    li a0, 0\n    li t0, {n}\n    beqz t0, done\nloop:\n    add a0, a0, t0\n    addi t0, t0, -1\n    bnez t0, loop\ndone:\n    ecall\n"
        );
        let program = assemble(&source).expect("assemble");
        let mut cpu = Cpu::new(&program).expect("load");
        let exit = cpu.run(100_000).expect("run");
        let expected: u32 = (1..=n).sum();
        prop_assert_eq!(exit.register_a0, expected);
        prop_assert_eq!(exit.reason, lofat_rv32::ExitReason::Ecall);
    }

    /// The zero register stays zero no matter what is written to it.
    #[test]
    fn zero_register_is_immutable(value in any::<u32>()) {
        let program = Program::from_instructions(&[
            Instruction::AluImm { op: AluImmOp::Addi, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 1 },
            Instruction::Ecall,
        ]);
        let mut cpu = Cpu::new(&program).expect("load");
        cpu.set_reg(Reg::ZERO, value);
        cpu.run(100).expect("run");
        prop_assert_eq!(cpu.reg(Reg::ZERO), 0);
    }
}

fn reference_alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1f),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1f),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        AluOp::Mulhsu => (((a as i32 as i64) * (b as i64)) >> 32) as u32,
        AluOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else if (a as i32) == i32::MIN && (b as i32) == -1 {
                a
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else if (a as i32) == i32::MIN && (b as i32) == -1 {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        AluOp::Remu => a.checked_rem(b).unwrap_or(a),
    }
}

//! Exhaustive assemble → encode → decode → disassemble round-trips.
//!
//! Three layers, together covering every variant of `isa::Instruction`:
//!
//! 1. every (op, width, cond) variant survives `encode` → `decode` bit-exactly,
//!    including negative and extreme immediates;
//! 2. an assembly program using every base mnemonic assembles, and every emitted
//!    word decodes back to an instruction that re-encodes to the identical word
//!    (the disassembler listing renders each line);
//! 3. every pseudo-instruction expands to its documented base-instruction
//!    sequence;
//! 4. a negative layer asserts the decoder's *rejection* behaviour: every
//!    reserved or illegal encoding must produce a typed
//!    [`Rv32Error::DecodeInvalid`] — on direct decode and through both CPU
//!    execution paths — and must never panic or alias to a real instruction.

use lofat_rv32::asm::assemble;
use lofat_rv32::disasm::{listing, listing_lines};
use lofat_rv32::isa::{AluImmOp, AluOp, BranchCond, Instruction, LoadWidth, Reg, StoreWidth};
use lofat_rv32::program::{Program, DEFAULT_TEXT_BASE};
use lofat_rv32::trace::NullSink;
use lofat_rv32::{Cpu, Rv32Error};

const ALU_OPS: [AluOp; 18] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Mulhsu,
    AluOp::Mulhu,
    AluOp::Div,
    AluOp::Divu,
    AluOp::Rem,
    AluOp::Remu,
];

const ALU_IMM_OPS: [AluImmOp; 9] = [
    AluImmOp::Addi,
    AluImmOp::Slti,
    AluImmOp::Sltiu,
    AluImmOp::Xori,
    AluImmOp::Ori,
    AluImmOp::Andi,
    AluImmOp::Slli,
    AluImmOp::Srli,
    AluImmOp::Srai,
];

const LOAD_WIDTHS: [LoadWidth; 5] = [
    LoadWidth::Byte,
    LoadWidth::Half,
    LoadWidth::Word,
    LoadWidth::ByteUnsigned,
    LoadWidth::HalfUnsigned,
];

const STORE_WIDTHS: [StoreWidth; 3] = [StoreWidth::Byte, StoreWidth::Half, StoreWidth::Word];

const BRANCH_CONDS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::Ltu,
    BranchCond::Geu,
];

fn assert_roundtrip(inst: Instruction) {
    let word = inst.encode();
    let decoded = Instruction::decode(word, 0x1000)
        .unwrap_or_else(|e| panic!("decode {inst} ({word:#010x}): {e}"));
    assert_eq!(inst, decoded, "encode/decode round trip for {inst}");
    assert_eq!(decoded.encode(), word, "re-encode is stable for {inst}");
}

#[test]
fn every_alu_variant_round_trips() {
    let (r1, r2, r3) = (Reg::new(5), Reg::new(10), Reg::new(31));
    for op in ALU_OPS {
        assert_roundtrip(Instruction::Alu { op, rd: r1, rs1: r2, rs2: r3 });
        assert_roundtrip(Instruction::Alu { op, rd: Reg::ZERO, rs1: Reg::ZERO, rs2: Reg::ZERO });
    }
}

#[test]
fn every_alu_imm_variant_round_trips() {
    for op in ALU_IMM_OPS {
        let imms: &[i32] = match op {
            // Shift amounts are 5-bit unsigned.
            AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai => &[0, 1, 17, 31],
            _ => &[-2048, -1, 0, 1, 2047],
        };
        for &imm in imms {
            assert_roundtrip(Instruction::AluImm { op, rd: Reg::new(7), rs1: Reg::new(28), imm });
        }
    }
}

#[test]
fn every_load_store_variant_round_trips() {
    for width in LOAD_WIDTHS {
        for offset in [-2048, -4, 0, 3, 2047] {
            assert_roundtrip(Instruction::Load {
                width,
                rd: Reg::new(9),
                rs1: Reg::new(18),
                offset,
            });
        }
    }
    for width in STORE_WIDTHS {
        for offset in [-2048, -4, 0, 3, 2047] {
            assert_roundtrip(Instruction::Store {
                width,
                rs2: Reg::new(9),
                rs1: Reg::new(18),
                offset,
            });
        }
    }
}

#[test]
fn every_branch_jump_and_system_variant_round_trips() {
    for cond in BRANCH_CONDS {
        for offset in [-4096, -2, 0, 2, 4094] {
            assert_roundtrip(Instruction::Branch {
                cond,
                rs1: Reg::new(6),
                rs2: Reg::new(21),
                offset,
            });
        }
    }
    for offset in [-1_048_576, -2, 0, 2, 1_048_574] {
        assert_roundtrip(Instruction::Jal { rd: Reg::RA, offset });
    }
    for offset in [-2048, -1, 0, 1, 2047] {
        assert_roundtrip(Instruction::Jalr { rd: Reg::RA, rs1: Reg::new(15), offset });
    }
    for upper in [i32::MIN, -4096, 0, 4096, i32::MAX & !0xfff] {
        assert_roundtrip(Instruction::Lui { rd: Reg::new(20), imm: upper });
        assert_roundtrip(Instruction::Auipc { rd: Reg::new(20), imm: upper });
    }
    assert_roundtrip(Instruction::Ecall);
    assert_roundtrip(Instruction::Ebreak);
    assert_roundtrip(Instruction::Fence);
}

/// Assembly source exercising every base mnemonic the assembler knows.
const ALL_MNEMONICS: &str = r#".text
main:
    add t0, t1, t2
    sub t0, t1, t2
    sll t0, t1, t2
    slt t0, t1, t2
    sltu t0, t1, t2
    xor t0, t1, t2
    srl t0, t1, t2
    sra t0, t1, t2
    or t0, t1, t2
    and t0, t1, t2
    mul t0, t1, t2
    mulh t0, t1, t2
    mulhsu t0, t1, t2
    mulhu t0, t1, t2
    div t0, t1, t2
    divu t0, t1, t2
    rem t0, t1, t2
    remu t0, t1, t2
    addi t0, t1, -42
    slti t0, t1, 11
    sltiu t0, t1, 11
    xori t0, t1, 0x55
    ori t0, t1, 0x55
    andi t0, t1, 0x55
    slli t0, t1, 3
    srli t0, t1, 3
    srai t0, t1, 3
    lb a0, -8(sp)
    lh a0, -8(sp)
    lw a0, -8(sp)
    lbu a0, -8(sp)
    lhu a0, -8(sp)
    sb a0, 12(sp)
    sh a0, 12(sp)
    sw a0, 12(sp)
target:
    beq a0, a1, target
    bne a0, a1, target
    blt a0, a1, target
    bge a0, a1, target
    bltu a0, a1, target
    bgeu a0, a1, target
    lui a2, 0xfffff
    auipc a3, 0
    jal ra, target
    jalr ra, a4, 16
    fence
    ebreak
    ecall
"#;

#[test]
fn assembled_mnemonics_decode_and_reencode_bit_exactly() {
    let program = assemble(ALL_MNEMONICS).expect("assemble every mnemonic");
    let lines = listing_lines(&program);
    assert_eq!(lines.len(), program.text.len());
    for line in &lines {
        let inst = line
            .inst
            .unwrap_or_else(|| panic!("word {:#010x} at {:#x} must decode", line.word, line.addr));
        assert_eq!(
            inst.encode(),
            line.word,
            "decode({:#010x}) -> {inst} -> encode must be bit-exact",
            line.word
        );
    }
    // The rendered listing names every mnemonic we assembled.
    let text = listing(&program);
    for mnemonic in [
        "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and", "mul", "mulh",
        "mulhsu", "mulhu", "div", "divu", "rem", "remu", "addi", "slti", "sltiu", "xori", "ori",
        "andi", "slli", "srli", "srai", "lb", "lh", "lw", "lbu", "lhu", "sb", "sh", "sw", "beq",
        "bne", "blt", "bge", "bltu", "bgeu", "lui", "auipc", "jal", "jalr", "fence", "ebreak",
        "ecall",
    ] {
        assert!(
            text.lines().any(|l| l.contains(&format!(" {mnemonic} "))
                || l.trim_end().ends_with(&format!(" {mnemonic}"))),
            "listing must contain `{mnemonic}`:\n{text}"
        );
    }
}

/// Assembles a single instruction line (plus an `ecall` terminator) and returns
/// the decoded text-segment instructions.
fn expand(line: &str) -> Vec<Instruction> {
    let source = format!(".text\nmain:\n    {line}\n");
    let program = assemble(&source).unwrap_or_else(|e| panic!("assemble `{line}`: {e}"));
    program.iter_instructions().map(|(_, inst)| inst).collect()
}

#[test]
fn pseudo_instructions_expand_to_documented_sequences() {
    use Instruction::*;

    let t0 = Reg::parse("t0").unwrap();
    let t1 = Reg::parse("t1").unwrap();
    let a0 = Reg::A0;

    // Small `li` fits a single addi from x0.
    assert_eq!(
        expand("li t0, 42"),
        vec![AluImm { op: AluImmOp::Addi, rd: t0, rs1: Reg::ZERO, imm: 42 }]
    );
    // Large `li` needs lui + addi.
    assert_eq!(
        expand("li t0, 0x12345678"),
        vec![
            Lui { rd: t0, imm: 0x12345000 },
            AluImm { op: AluImmOp::Addi, rd: t0, rs1: t0, imm: 0x678 },
        ]
    );
    // When the low half is ≥ 0x800 the upper part is rounded up so the
    // sign-extended addi lands on the target.
    assert_eq!(
        expand("li t0, 0x12345abc"),
        vec![
            Lui { rd: t0, imm: 0x12346000 },
            AluImm { op: AluImmOp::Addi, rd: t0, rs1: t0, imm: 0xabc - 0x1000 },
        ]
    );
    assert_eq!(
        expand("nop"),
        vec![AluImm { op: AluImmOp::Addi, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 }]
    );
    assert_eq!(expand("mv a0, t0"), vec![AluImm { op: AluImmOp::Addi, rd: a0, rs1: t0, imm: 0 }]);
    assert_eq!(expand("not a0, t0"), vec![AluImm { op: AluImmOp::Xori, rd: a0, rs1: t0, imm: -1 }]);
    assert_eq!(expand("neg a0, t0"), vec![Alu { op: AluOp::Sub, rd: a0, rs1: Reg::ZERO, rs2: t0 }]);
    assert_eq!(
        expand("seqz a0, t0"),
        vec![AluImm { op: AluImmOp::Sltiu, rd: a0, rs1: t0, imm: 1 }]
    );
    assert_eq!(
        expand("snez a0, t0"),
        vec![Alu { op: AluOp::Sltu, rd: a0, rs1: Reg::ZERO, rs2: t0 }]
    );
    assert_eq!(expand("jr t0"), vec![Jalr { rd: Reg::ZERO, rs1: t0, offset: 0 }]);
    assert_eq!(expand("ret"), vec![Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 }]);
    assert_eq!(expand("jalr t0"), vec![Jalr { rd: Reg::RA, rs1: t0, offset: 0 }]);

    // Branch aliases against a label at the instruction itself (offset 0).
    assert_eq!(
        expand("beqz t0, main"),
        vec![Branch { cond: BranchCond::Eq, rs1: t0, rs2: Reg::ZERO, offset: 0 }]
    );
    assert_eq!(
        expand("bnez t0, main"),
        vec![Branch { cond: BranchCond::Ne, rs1: t0, rs2: Reg::ZERO, offset: 0 }]
    );
    assert_eq!(
        expand("bltz t0, main"),
        vec![Branch { cond: BranchCond::Lt, rs1: t0, rs2: Reg::ZERO, offset: 0 }]
    );
    assert_eq!(
        expand("bgez t0, main"),
        vec![Branch { cond: BranchCond::Ge, rs1: t0, rs2: Reg::ZERO, offset: 0 }]
    );
    assert_eq!(
        expand("blez t0, main"),
        vec![Branch { cond: BranchCond::Ge, rs1: Reg::ZERO, rs2: t0, offset: 0 }]
    );
    assert_eq!(
        expand("bgtz t0, main"),
        vec![Branch { cond: BranchCond::Lt, rs1: Reg::ZERO, rs2: t0, offset: 0 }]
    );
    // Swapped-operand aliases.
    assert_eq!(
        expand("bgt t0, t1, main"),
        vec![Branch { cond: BranchCond::Lt, rs1: t1, rs2: t0, offset: 0 }]
    );
    assert_eq!(
        expand("ble t0, t1, main"),
        vec![Branch { cond: BranchCond::Ge, rs1: t1, rs2: t0, offset: 0 }]
    );
    assert_eq!(
        expand("bgtu t0, t1, main"),
        vec![Branch { cond: BranchCond::Ltu, rs1: t1, rs2: t0, offset: 0 }]
    );
    assert_eq!(
        expand("bleu t0, t1, main"),
        vec![Branch { cond: BranchCond::Geu, rs1: t1, rs2: t0, offset: 0 }]
    );
    // Jump aliases.
    assert_eq!(expand("j main"), vec![Jal { rd: Reg::ZERO, offset: 0 }]);
    assert_eq!(expand("call main"), vec![Jal { rd: Reg::RA, offset: 0 }]);
    assert_eq!(expand("tail main"), vec![Jal { rd: Reg::ZERO, offset: 0 }]);

    // `la` always expands to exactly lui + addi (8 bytes).
    let la = expand("la t0, 0x2000");
    assert_eq!(la.len(), 2, "la is a fixed 8-byte sequence, got {la:?}");
    assert!(matches!(la[0], Lui { rd, .. } if rd == t0));
    assert!(matches!(la[1], AluImm { op: AluImmOp::Addi, rd, rs1, .. } if rd == t0 && rs1 == t0));
}

// --- Negative suite: reserved and illegal encodings -------------------------

/// Asserts `word` is rejected with a typed decode error carrying the right
/// pc and word — directly, and through both CPU execution paths (which must
/// fault on the first step without retiring anything or moving the pc).
fn assert_rejected(word: u32, why: &str) {
    match Instruction::decode(word, 0x1000) {
        Err(Rv32Error::DecodeInvalid { pc, word: reported }) => {
            assert_eq!(pc, 0x1000, "{why}: fault pc for {word:#010x}");
            assert_eq!(reported, word, "{why}: fault word for {word:#010x}");
        }
        Err(other) => panic!("{why}: {word:#010x} raised {other:?}, want DecodeInvalid"),
        Ok(inst) => panic!("{why}: {word:#010x} aliased to `{inst}`"),
    }
    let program = Program { text: vec![word], ..Program::from_instructions(&[Instruction::Ecall]) };
    for predecode in [true, false] {
        let path = if predecode { "predecode" } else { "fetch" };
        let mut cpu = Cpu::new(&program).expect("invalid words load (literal-pool rule)");
        cpu.set_predecode(predecode);
        match cpu.step(&mut NullSink) {
            Err(Rv32Error::DecodeInvalid { pc, word: reported }) => {
                assert_eq!(pc, DEFAULT_TEXT_BASE, "{why}/{path}: fault pc");
                assert_eq!(reported, word, "{why}/{path}: fault word");
            }
            other => panic!("{why}/{path}: {word:#010x} stepped to {other:?}"),
        }
        assert_eq!(cpu.instructions(), 0, "{why}/{path}: faulting instruction must not retire");
        assert_eq!(cpu.pc(), DEFAULT_TEXT_BASE, "{why}/{path}: faulting instruction moved pc");
    }
}

#[test]
fn reserved_encodings_are_rejected_on_every_path() {
    let cases: &[(u32, &str)] = &[
        // Compressed / short encodings: bits 1:0 must be 11.
        (0x0000_0000, "all-zero word (canonical illegal instruction)"),
        (0x0000_0001, "16-bit encoding quadrant 0"),
        (0x0000_4002, "16-bit encoding quadrant 2"),
        (0xffff_ffff, "all-ones word"),
        // OP-IMM shifts: funct7 (bits 31:25) is part of the encoding.
        (0x0200_9093, "slli with funct7 = 0000001"),
        (0x8000_9093, "slli with funct7 = 1000000"),
        (0x0200_d093, "srli with funct7 = 0000001"),
        (0x6000_d093, "srai with funct7 = 1100000 (bogus)"),
        // OP: undefined funct7/funct3 combinations.
        (0x4000_1033, "sub-family funct7 with sll funct3"),
        (0x4000_7033, "sub-family funct7 with and funct3"),
        (0x0600_0033, "funct7 = 0000011 (neither base nor M)"),
        (0xfe00_0033, "funct7 = 1111111"),
        // LOAD: funct3 3/6/7 are RV64 or reserved widths.
        (0x0000_3003, "ld (RV64 load width)"),
        (0x0000_6003, "lwu (RV64 load width)"),
        (0x0000_7003, "load funct3 = 111"),
        // STORE: funct3 > 2 is RV64 or reserved.
        (0x0000_3023, "sd (RV64 store width)"),
        (0x0000_7023, "store funct3 = 111"),
        // BRANCH: funct3 2/3 are reserved.
        (0x0000_2063, "branch funct3 = 010"),
        (0x0000_3063, "branch funct3 = 011"),
        // JALR requires funct3 = 0.
        (0x0000_1067, "jalr with funct3 = 001"),
        // MISC-MEM: only fence (funct3 = 0) is supported.
        (0x0000_100f, "fence.i"),
        (0x0000_200f, "misc-mem funct3 = 010"),
        // SYSTEM: only the canonical ecall/ebreak words exist in this subset.
        (0x0000_0173, "ecall with rd = x2"),
        (0x0008_0073, "ecall with rs1 = a6"),
        (0x0000_4073, "csrrwi (Zicsr, unsupported)"),
        (0x0010_0173, "ebreak with rd = x2"),
        (0x3020_0073, "mret (privileged, unsupported)"),
        (0x1050_0073, "wfi (privileged, unsupported)"),
        // Major opcodes outside the RV32IM subset.
        (0x0000_0007, "flw (RV32F)"),
        (0x0000_0027, "fsw (RV32F)"),
        (0x0000_202f, "amo (RV32A)"),
        (0x0000_0043, "fmadd (RV32F)"),
        (0x0000_005b, "custom opcode 1011011"),
        (0x0000_007f, "opcode 1111111"),
    ];
    for &(word, why) in cases {
        assert_rejected(word, why);
    }
}

/// Single-bit corruptions of canonical words must never alias back onto a
/// *different* valid instruction that re-encodes to the original: whatever
/// still decodes must be the faithful image of the corrupted word.
#[test]
fn bit_flips_never_alias() {
    let canon: &[u32] = &[
        Instruction::Ecall.encode(),
        Instruction::Ebreak.encode(),
        Instruction::Fence.encode(),
        Instruction::AluImm { op: AluImmOp::Slli, rd: Reg::new(1), rs1: Reg::new(1), imm: 1 }
            .encode(),
        Instruction::Jalr { rd: Reg::RA, rs1: Reg::new(15), offset: -4 }.encode(),
    ];
    for &word in canon {
        for bit in 0..32 {
            let mutated = word ^ (1 << bit);
            if let Ok(inst) = Instruction::decode(mutated, 0x1000) {
                // FENCE is the one deliberate exception: the spec makes the
                // pred/succ/rd/rs1 fields ordering annotations every RV32I
                // implementation must accept (external toolchains emit
                // `fence iorw,iorw` = 0x0ff0000f), and the unit `Fence`
                // canonicalises them away on re-encode.
                if mutated & 0x7f == 0x0f {
                    assert_eq!(inst, Instruction::Fence);
                    continue;
                }
                assert_eq!(
                    inst.encode(),
                    mutated,
                    "bit {bit} of {word:#010x}: `{inst}` does not re-encode to {mutated:#010x}"
                );
            }
        }
    }
}

//! Minimal ELF32 loader for externally-assembled static RV32 executables.
//!
//! The supported surface is deliberately tiny: little-endian `ELFCLASS32`
//! `ET_EXEC` images for `EM_RISCV`, with one executable `PT_LOAD` segment
//! (the text) and at most one writable `PT_LOAD` segment (the data).  That is
//! exactly the shape `riscv32-unknown-elf-gcc -nostdlib -static` (or a bare
//! assembler + linker script) produces for the freestanding programs this
//! simulator attests.  Everything else — dynamic objects, interpreters,
//! relocations, extra segment types, writable-and-executable segments — is
//! rejected with a typed [`ElfError`] instead of being half-loaded.
//!
//! The loader maps the segments onto the [`Program`] image model: the
//! executable segment becomes the instruction words, the writable segment the
//! initialised data, and the stack keeps the simulator's fixed layout
//! ([`crate::program::DEFAULT_STACK_BASE`]).

use crate::program::{Program, DEFAULT_DATA_BASE, DEFAULT_STACK_BASE, DEFAULT_STACK_SIZE};
use std::collections::BTreeMap;
use std::fmt;

/// ELF magic: `\x7fELF`.
const MAGIC: [u8; 4] = [0x7f, b'E', b'L', b'F'];
/// `EI_CLASS` value for 32-bit objects.
const ELFCLASS32: u8 = 1;
/// `EI_DATA` value for little-endian objects.
const ELFDATA2LSB: u8 = 1;
/// `e_type` value for executable objects.
const ET_EXEC: u16 = 2;
/// `e_machine` value for RISC-V.
const EM_RISCV: u16 = 243;
/// `p_type` value for loadable segments.
const PT_LOAD: u32 = 1;
/// Segment flag: executable.
const PF_X: u32 = 1;
/// Segment flag: writable.
const PF_W: u32 = 2;
/// Size of the ELF32 file header.
const EHDR_SIZE: usize = 52;
/// Size of one ELF32 program header.
const PHDR_SIZE: usize = 32;

/// Typed rejection reasons of the ELF32 loader.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ElfError {
    /// The file is shorter than a structure the header claims it contains.
    Truncated {
        /// What was being read when the file ended.
        what: &'static str,
    },
    /// The file does not start with `\x7fELF`.
    BadMagic,
    /// `EI_CLASS` is not `ELFCLASS32`.
    NotElf32,
    /// `EI_DATA` is not little-endian.
    NotLittleEndian,
    /// `e_type` is not `ET_EXEC` (dynamic/relocatable objects unsupported).
    NotExecutable {
        /// The actual `e_type` value.
        e_type: u16,
    },
    /// `e_machine` is not `EM_RISCV`.
    WrongMachine {
        /// The actual `e_machine` value.
        e_machine: u16,
    },
    /// `e_phentsize` is not the ELF32 program-header size.
    BadPhentsize {
        /// The actual `e_phentsize` value.
        size: u16,
    },
    /// A program header has a type other than `PT_LOAD` or `PT_NULL`.
    UnsupportedSegment {
        /// The unsupported `p_type` value.
        p_type: u32,
    },
    /// A loadable segment is both writable and executable.
    WritableText {
        /// The segment's virtual address.
        vaddr: u32,
    },
    /// A loadable segment's `p_memsz` is smaller than its `p_filesz`.
    MemszBelowFilesz {
        /// The segment's virtual address.
        vaddr: u32,
    },
    /// The image has no executable `PT_LOAD` segment.
    NoTextSegment,
    /// The image has more than one executable or more than one writable
    /// `PT_LOAD` segment.
    TooManySegments {
        /// `"text"` or `"data"`.
        which: &'static str,
    },
    /// The executable segment is not 4-byte aligned (address or size).
    MisalignedText {
        /// The segment's virtual address.
        vaddr: u32,
    },
    /// The entry point lies outside the executable segment or is misaligned.
    BadEntry {
        /// The entry address.
        entry: u32,
    },
    /// Two loadable segments overlap, or one collides with the simulator's
    /// fixed stack region.
    SegmentCollision {
        /// Description of the colliding pair.
        detail: String,
    },
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::Truncated { what } => write!(f, "truncated ELF file while reading {what}"),
            ElfError::BadMagic => write!(f, "not an ELF file (bad magic)"),
            ElfError::NotElf32 => write!(f, "not a 32-bit ELF object"),
            ElfError::NotLittleEndian => write!(f, "not a little-endian ELF object"),
            ElfError::NotExecutable { e_type } => {
                write!(f, "unsupported e_type {e_type} (only static ET_EXEC is supported)")
            }
            ElfError::WrongMachine { e_machine } => {
                write!(f, "unsupported e_machine {e_machine} (expected RISC-V, {EM_RISCV})")
            }
            ElfError::BadPhentsize { size } => {
                write!(f, "unsupported e_phentsize {size} (expected {PHDR_SIZE})")
            }
            ElfError::UnsupportedSegment { p_type } => {
                write!(f, "unsupported program header type {p_type:#x} (only PT_LOAD)")
            }
            ElfError::WritableText { vaddr } => {
                write!(f, "segment at {vaddr:#010x} is both writable and executable")
            }
            ElfError::MemszBelowFilesz { vaddr } => {
                write!(f, "segment at {vaddr:#010x} has p_memsz < p_filesz")
            }
            ElfError::NoTextSegment => write!(f, "no executable PT_LOAD segment"),
            ElfError::TooManySegments { which } => {
                write!(f, "more than one {which} PT_LOAD segment")
            }
            ElfError::MisalignedText { vaddr } => {
                write!(f, "executable segment at {vaddr:#010x} is not 4-byte aligned")
            }
            ElfError::BadEntry { entry } => {
                write!(f, "entry point {entry:#010x} outside the executable segment")
            }
            ElfError::SegmentCollision { detail } => write!(f, "segment collision: {detail}"),
        }
    }
}

impl std::error::Error for ElfError {}

/// One parsed `PT_LOAD` program header plus its file bytes, zero-extended to
/// `p_memsz`.
struct LoadSegment {
    vaddr: u32,
    bytes: Vec<u8>,
    executable: bool,
    writable: bool,
}

fn read_u16(bytes: &[u8], at: usize, what: &'static str) -> Result<u16, ElfError> {
    let slice = bytes.get(at..at + 2).ok_or(ElfError::Truncated { what })?;
    Ok(u16::from_le_bytes([slice[0], slice[1]]))
}

fn read_u32(bytes: &[u8], at: usize, what: &'static str) -> Result<u32, ElfError> {
    let slice = bytes.get(at..at + 4).ok_or(ElfError::Truncated { what })?;
    Ok(u32::from_le_bytes([slice[0], slice[1], slice[2], slice[3]]))
}

/// Parses a static RV32 ELF32 executable into a [`Program`] image.
///
/// # Errors
///
/// Returns a typed [`ElfError`] for anything outside the supported shape; the
/// loader never maps a partially-validated image.
pub fn parse(bytes: &[u8]) -> Result<Program, ElfError> {
    if bytes.len() < EHDR_SIZE {
        return Err(ElfError::Truncated { what: "file header" });
    }
    if bytes[0..4] != MAGIC {
        return Err(ElfError::BadMagic);
    }
    if bytes[4] != ELFCLASS32 {
        return Err(ElfError::NotElf32);
    }
    if bytes[5] != ELFDATA2LSB {
        return Err(ElfError::NotLittleEndian);
    }
    let e_type = read_u16(bytes, 16, "e_type")?;
    if e_type != ET_EXEC {
        return Err(ElfError::NotExecutable { e_type });
    }
    let e_machine = read_u16(bytes, 18, "e_machine")?;
    if e_machine != EM_RISCV {
        return Err(ElfError::WrongMachine { e_machine });
    }
    let entry = read_u32(bytes, 24, "e_entry")?;
    let phoff = read_u32(bytes, 28, "e_phoff")? as usize;
    let phentsize = read_u16(bytes, 42, "e_phentsize")?;
    if phentsize as usize != PHDR_SIZE {
        return Err(ElfError::BadPhentsize { size: phentsize });
    }
    let phnum = read_u16(bytes, 44, "e_phnum")? as usize;

    let mut segments: Vec<LoadSegment> = Vec::new();
    for index in 0..phnum {
        let at = phoff + index * PHDR_SIZE;
        let p_type = read_u32(bytes, at, "program header")?;
        if p_type == 0 {
            continue; // PT_NULL: explicitly ignorable.
        }
        if p_type != PT_LOAD {
            return Err(ElfError::UnsupportedSegment { p_type });
        }
        let p_offset = read_u32(bytes, at + 4, "p_offset")? as usize;
        let p_vaddr = read_u32(bytes, at + 8, "p_vaddr")?;
        let p_filesz = read_u32(bytes, at + 16, "p_filesz")? as usize;
        let p_memsz = read_u32(bytes, at + 20, "p_memsz")? as usize;
        let p_flags = read_u32(bytes, at + 24, "p_flags")?;
        if p_memsz < p_filesz {
            return Err(ElfError::MemszBelowFilesz { vaddr: p_vaddr });
        }
        if p_memsz == 0 {
            continue; // Nothing to map.
        }
        let executable = p_flags & PF_X != 0;
        let writable = p_flags & PF_W != 0;
        if executable && writable {
            return Err(ElfError::WritableText { vaddr: p_vaddr });
        }
        let file_bytes = bytes
            .get(p_offset..p_offset + p_filesz)
            .ok_or(ElfError::Truncated { what: "segment contents" })?;
        let mut segment_bytes = file_bytes.to_vec();
        segment_bytes.resize(p_memsz, 0);
        segments.push(LoadSegment { vaddr: p_vaddr, bytes: segment_bytes, executable, writable });
    }

    // Collision checks: among the loadable segments and against the fixed
    // stack region the simulator always maps.
    let range = |s: &LoadSegment| (u64::from(s.vaddr), u64::from(s.vaddr) + s.bytes.len() as u64);
    for (i, a) in segments.iter().enumerate() {
        let (a_lo, a_hi) = range(a);
        for b in segments.iter().skip(i + 1) {
            let (b_lo, b_hi) = range(b);
            if a_lo < b_hi && b_lo < a_hi {
                return Err(ElfError::SegmentCollision {
                    detail: format!("segments at {:#010x} and {:#010x}", a.vaddr, b.vaddr),
                });
            }
        }
        let stack_lo = u64::from(DEFAULT_STACK_BASE);
        let stack_hi = stack_lo + u64::from(DEFAULT_STACK_SIZE);
        if a_lo < stack_hi && stack_lo < a_hi {
            return Err(ElfError::SegmentCollision {
                detail: format!(
                    "segment at {:#010x} overlaps the stack region [{:#010x}, {:#010x})",
                    a.vaddr, DEFAULT_STACK_BASE, stack_hi
                ),
            });
        }
    }

    let mut text: Option<&LoadSegment> = None;
    let mut data: Option<&LoadSegment> = None;
    for segment in &segments {
        let slot = if segment.executable { &mut text } else { &mut data };
        let which = if segment.executable { "text" } else { "data" };
        if slot.replace(segment).is_some() {
            return Err(ElfError::TooManySegments { which });
        }
    }
    let text = text.ok_or(ElfError::NoTextSegment)?;
    if text.vaddr % 4 != 0 || text.bytes.len() % 4 != 0 {
        return Err(ElfError::MisalignedText { vaddr: text.vaddr });
    }
    let text_end = text.vaddr + text.bytes.len() as u32;
    if entry < text.vaddr || entry >= text_end || entry % 4 != 0 {
        return Err(ElfError::BadEntry { entry });
    }
    let words: Vec<u32> =
        text.bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();

    let (data_base, data_bytes) = match data {
        Some(segment) => {
            debug_assert!(segment.writable, "non-executable PT_LOAD is data");
            (segment.vaddr, segment.bytes.clone())
        }
        None => (DEFAULT_DATA_BASE, Vec::new()),
    };

    Ok(Program {
        text_base: text.vaddr,
        text: words,
        data_base,
        data: data_bytes,
        entry,
        symbols: BTreeMap::new(),
        stack_size: DEFAULT_STACK_SIZE,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluImmOp, Instruction, Reg};
    use crate::Cpu;

    /// Builds a minimal ELF32 image in memory: header, program headers,
    /// then the segment contents appended in order.
    fn build_elf(
        e_type: u16,
        machine: u16,
        entry: u32,
        phdrs: &[(u32, u32, Vec<u8>, u32)],
    ) -> Vec<u8> {
        // phdrs: (p_type, p_vaddr, contents, p_flags); p_memsz == p_filesz.
        let phoff = EHDR_SIZE;
        let data_off = phoff + phdrs.len() * PHDR_SIZE;
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(ELFCLASS32);
        out.push(ELFDATA2LSB);
        out.push(1); // EI_VERSION
        out.resize(16, 0); // padding
        out.extend_from_slice(&e_type.to_le_bytes());
        out.extend_from_slice(&machine.to_le_bytes());
        out.extend_from_slice(&1u32.to_le_bytes()); // e_version
        out.extend_from_slice(&entry.to_le_bytes());
        out.extend_from_slice(&(phoff as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // e_shoff
        out.extend_from_slice(&0u32.to_le_bytes()); // e_flags
        out.extend_from_slice(&(EHDR_SIZE as u16).to_le_bytes());
        out.extend_from_slice(&(PHDR_SIZE as u16).to_le_bytes());
        out.extend_from_slice(&(phdrs.len() as u16).to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // e_shentsize
        out.extend_from_slice(&0u16.to_le_bytes()); // e_shnum
        out.extend_from_slice(&0u16.to_le_bytes()); // e_shstrndx
        assert_eq!(out.len(), EHDR_SIZE);
        let mut offset = data_off;
        for (p_type, vaddr, contents, flags) in phdrs {
            out.extend_from_slice(&p_type.to_le_bytes());
            out.extend_from_slice(&(offset as u32).to_le_bytes());
            out.extend_from_slice(&vaddr.to_le_bytes()); // p_vaddr
            out.extend_from_slice(&vaddr.to_le_bytes()); // p_paddr
            out.extend_from_slice(&(contents.len() as u32).to_le_bytes()); // p_filesz
            out.extend_from_slice(&(contents.len() as u32).to_le_bytes()); // p_memsz
            out.extend_from_slice(&flags.to_le_bytes());
            out.extend_from_slice(&4u32.to_le_bytes()); // p_align
            offset += contents.len();
        }
        for (_, _, contents, _) in phdrs {
            out.extend_from_slice(contents);
        }
        out
    }

    fn text_bytes() -> Vec<u8> {
        // addi a0, zero, 7; ecall
        let insts = [
            Instruction::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 7 },
            Instruction::Ecall,
        ];
        insts.iter().flat_map(|i| i.encode().to_le_bytes()).collect()
    }

    #[test]
    fn loads_and_runs_a_minimal_executable() {
        let elf = build_elf(
            ET_EXEC,
            EM_RISCV,
            0x1000,
            &[
                (PT_LOAD, 0x1000, text_bytes(), 5),      // r-x
                (PT_LOAD, 0x10000, vec![1, 2, 3, 4], 6), // rw-
            ],
        );
        let program = parse(&elf).expect("parse");
        assert_eq!(program.text_base, 0x1000);
        assert_eq!(program.entry, 0x1000);
        assert_eq!(program.data_base, 0x10000);
        assert_eq!(program.data, vec![1, 2, 3, 4]);
        let mut cpu = Cpu::new(&program).expect("load");
        let exit = cpu.run(1_000).expect("run");
        assert_eq!(exit.register_a0, 7);
    }

    #[test]
    fn text_only_image_gets_default_data_base() {
        let elf = build_elf(ET_EXEC, EM_RISCV, 0x1000, &[(PT_LOAD, 0x1000, text_bytes(), 5)]);
        let program = parse(&elf).expect("parse");
        assert_eq!(program.data_base, DEFAULT_DATA_BASE);
        assert!(program.data.is_empty());
    }

    #[test]
    fn rejections_are_typed() {
        let good = build_elf(ET_EXEC, EM_RISCV, 0x1000, &[(PT_LOAD, 0x1000, text_bytes(), 5)]);

        assert_eq!(parse(&[]), Err(ElfError::Truncated { what: "file header" }));
        let mut bad = good.clone();
        bad[0] = 0;
        assert_eq!(parse(&bad), Err(ElfError::BadMagic));
        let mut bad = good.clone();
        bad[4] = 2; // ELFCLASS64
        assert_eq!(parse(&bad), Err(ElfError::NotElf32));
        let mut bad = good.clone();
        bad[5] = 2; // big-endian
        assert_eq!(parse(&bad), Err(ElfError::NotLittleEndian));

        let dynamic = build_elf(3, EM_RISCV, 0x1000, &[(PT_LOAD, 0x1000, text_bytes(), 5)]);
        assert_eq!(parse(&dynamic), Err(ElfError::NotExecutable { e_type: 3 }));
        let x86 = build_elf(ET_EXEC, 3, 0x1000, &[(PT_LOAD, 0x1000, text_bytes(), 5)]);
        assert_eq!(parse(&x86), Err(ElfError::WrongMachine { e_machine: 3 }));

        // PT_INTERP (3) → unsupported segment type.
        let interp = build_elf(
            ET_EXEC,
            EM_RISCV,
            0x1000,
            &[(PT_LOAD, 0x1000, text_bytes(), 5), (3, 0, b"/lib/ld.so".to_vec(), 4)],
        );
        assert_eq!(parse(&interp), Err(ElfError::UnsupportedSegment { p_type: 3 }));

        // Writable + executable segment.
        let wx = build_elf(ET_EXEC, EM_RISCV, 0x1000, &[(PT_LOAD, 0x1000, text_bytes(), 7)]);
        assert_eq!(parse(&wx), Err(ElfError::WritableText { vaddr: 0x1000 }));

        // No executable segment at all.
        let noexec = build_elf(ET_EXEC, EM_RISCV, 0x1000, &[(PT_LOAD, 0x10000, vec![0; 8], 6)]);
        assert_eq!(parse(&noexec), Err(ElfError::NoTextSegment));

        // Entry outside the text segment.
        let badentry = build_elf(ET_EXEC, EM_RISCV, 0x2000, &[(PT_LOAD, 0x1000, text_bytes(), 5)]);
        assert_eq!(parse(&badentry), Err(ElfError::BadEntry { entry: 0x2000 }));

        // Misaligned entry.
        let odd = build_elf(ET_EXEC, EM_RISCV, 0x1002, &[(PT_LOAD, 0x1000, text_bytes(), 5)]);
        assert_eq!(parse(&odd), Err(ElfError::BadEntry { entry: 0x1002 }));

        // Segment overlapping the fixed stack region.
        let clash = build_elf(
            ET_EXEC,
            EM_RISCV,
            0x1000,
            &[(PT_LOAD, 0x1000, text_bytes(), 5), (PT_LOAD, DEFAULT_STACK_BASE, vec![0; 16], 6)],
        );
        assert!(matches!(parse(&clash), Err(ElfError::SegmentCollision { .. })));

        // Two executable segments.
        let two_text = build_elf(
            ET_EXEC,
            EM_RISCV,
            0x1000,
            &[(PT_LOAD, 0x1000, text_bytes(), 5), (PT_LOAD, 0x3000, text_bytes(), 5)],
        );
        assert_eq!(parse(&two_text), Err(ElfError::TooManySegments { which: "text" }));

        // Truncated segment contents.
        let mut short = good;
        short.truncate(short.len() - 2);
        assert_eq!(parse(&short), Err(ElfError::Truncated { what: "segment contents" }));
    }
}

//! In-order RV32IM core model with cycle accounting and a trace port.
//!
//! The model approximates the single-issue 4-stage Pulpino core the paper prototypes
//! on: one instruction retires per cycle, with extra cycles charged for taken
//! control-flow transfers (pipeline refill), loads (memory access) and division.  The
//! exact per-instruction costs are configurable through [`CpuConfig`]; the LO-FAT
//! claims only depend on the *relative* comparison between attested and un-attested
//! runs, which this model supports exactly (the trace port is pure observation and
//! never stalls the core).

use crate::error::Rv32Error;
use crate::isa::{AluImmOp, AluOp, Instruction, Reg};
use crate::mem::Memory;
use crate::program::Program;
use crate::trace::{BranchInfo, BranchKind, NullSink, RetiredInst, TraceSink};

/// Per-instruction-class cycle costs of the core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CpuConfig {
    /// Extra cycles for a taken conditional branch (pipeline flush).
    pub taken_branch_penalty: u64,
    /// Extra cycles for `jal`/`jalr` (always-taken transfers).
    pub jump_penalty: u64,
    /// Extra cycles for loads.
    pub load_penalty: u64,
    /// Extra cycles for multiplication.
    pub mul_penalty: u64,
    /// Extra cycles for division/remainder.
    pub div_penalty: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        // Approximation of the 4-stage RI5CY/Pulpino core: 1 cycle per instruction,
        // 2 extra cycles to refill the pipeline on taken branches, 1 for jumps and
        // loads, multi-cycle serial divider.
        Self {
            taken_branch_penalty: 2,
            jump_penalty: 1,
            load_penalty: 1,
            mul_penalty: 0,
            div_penalty: 31,
        }
    }
}

/// Why the program stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExitReason {
    /// The program executed `ecall` (normal termination in this environment).
    Ecall,
    /// The program executed `ebreak`.
    Ebreak,
}

/// Information about a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExitInfo {
    /// Why the program stopped.
    pub reason: ExitReason,
    /// Value of `a0` at exit (the program's result / exit code).
    pub register_a0: u32,
    /// Total cycles consumed according to the timing model.
    pub cycles: u64,
    /// Number of retired instructions.
    pub instructions: u64,
}

/// The RV32IM core.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; 32],
    pc: u32,
    memory: Memory,
    config: CpuConfig,
    cycles: u64,
    instructions: u64,
    /// Values printed via the `print` environment call (a7 = 1), for examples/tests.
    console: Vec<u32>,
    /// Base address of the predecoded text segment.
    text_base: u32,
    /// Text segment decoded once at load time, indexed by `(pc - text_base) / 4`.
    /// `None` marks words that do not decode (e.g. literal pools); those fall back
    /// to decode-on-fetch so the fault is reported exactly as before.
    predecoded: Vec<Option<Instruction>>,
    /// When `false`, every step fetches and decodes from memory (the verified
    /// fallback path; also used by the differential regression tests).
    predecode_enabled: bool,
    /// Set when the memory may have been mutated behind the cache's back (any
    /// `memory_mut` access); the next step re-decodes the text segment.
    predecode_stale: bool,
}

impl Cpu {
    /// Creates a core with the program loaded and registers initialised
    /// (`pc = entry`, `sp` at the top of the stack, `gp` at the data base).
    ///
    /// # Errors
    ///
    /// Fails if the program image cannot be loaded (see [`Program::build_memory`]).
    pub fn new(program: &Program) -> Result<Self, Rv32Error> {
        Self::with_config(program, CpuConfig::default())
    }

    /// Creates a core with an explicit timing configuration.
    ///
    /// # Errors
    ///
    /// Fails if the program image cannot be loaded (see [`Program::build_memory`]).
    pub fn with_config(program: &Program, config: CpuConfig) -> Result<Self, Rv32Error> {
        let memory = program.build_memory()?;
        let mut regs = [0u32; 32];
        regs[Reg::SP.index()] = program.initial_sp();
        regs[Reg::GP.index()] = program.data_base;
        let mut cpu = Self {
            regs,
            pc: program.entry,
            memory,
            config,
            cycles: 0,
            instructions: 0,
            console: Vec::new(),
            text_base: program.text_base,
            predecoded: Vec::new(),
            predecode_enabled: true,
            predecode_stale: false,
        };
        cpu.rebuild_predecode()?;
        Ok(cpu)
    }

    /// Enables or disables the predecoded-execution fast path.
    ///
    /// With predecoding disabled every step performs the original
    /// fetch-from-memory + decode round trip; results are identical either way
    /// (the differential regression suite asserts this over the whole workload
    /// catalogue), only the simulation throughput differs.
    pub fn set_predecode(&mut self, enabled: bool) {
        self.predecode_enabled = enabled;
    }

    /// Returns `true` while the predecoded fast path is enabled.
    pub fn predecode_enabled(&self) -> bool {
        self.predecode_enabled
    }

    /// (Re-)decodes the text segment into the dense predecode table.
    ///
    /// Runs once at construction and again after any `memory_mut` access (the
    /// only way the code bytes can change: direct stores into the `rx` text
    /// segment fault before they modify anything).
    fn rebuild_predecode(&mut self) -> Result<(), Rv32Error> {
        let text_len = self
            .memory
            .segments()
            .iter()
            .find(|s| s.base == self.text_base && s.perms.execute)
            .map(|s| s.bytes.len() / 4)
            .unwrap_or(0);
        self.predecoded.clear();
        self.predecoded.reserve(text_len);
        for index in 0..text_len {
            let pc = self.text_base + (index as u32) * 4;
            let word = self.memory.fetch(pc)?;
            self.predecoded.push(Instruction::decode(word, pc).ok());
        }
        self.predecode_stale = false;
        Ok(())
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Reads a register.
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs[reg.index()]
    }

    /// Writes a register (writes to `zero` are ignored, as in hardware).
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        if !reg.is_zero() {
            self.regs[reg.index()] = value;
        }
    }

    /// Immutable view of the memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable view of the memory (used by the attack-injection utilities).
    ///
    /// Conservatively marks the predecode table stale: the caller may poke any
    /// byte, including the text segment, so the next step re-decodes the code
    /// from memory (self-modifying-memory safety for the fast path).
    pub fn memory_mut(&mut self) -> &mut Memory {
        self.predecode_stale = true;
        &mut self.memory
    }

    /// Values emitted through the `print` environment call (`a7 = 1`).
    pub fn console(&self) -> &[u32] {
        &self.console
    }

    /// Runs until the program exits, without tracing.
    ///
    /// # Errors
    ///
    /// Propagates execution faults and returns [`Rv32Error::CycleLimitExceeded`] if
    /// the program does not exit within `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> Result<ExitInfo, Rv32Error> {
        self.run_traced(max_cycles, &mut NullSink)
    }

    /// Runs until the program exits, reporting every retired instruction to `sink`.
    ///
    /// # Errors
    ///
    /// Propagates execution faults and returns [`Rv32Error::CycleLimitExceeded`] if
    /// the program does not exit within `max_cycles`.
    pub fn run_traced<S: TraceSink>(
        &mut self,
        max_cycles: u64,
        sink: &mut S,
    ) -> Result<ExitInfo, Rv32Error> {
        loop {
            if let Some(exit) = self.step(sink)? {
                return Ok(exit);
            }
            if self.cycles > max_cycles {
                return Err(Rv32Error::CycleLimitExceeded { limit: max_cycles });
            }
        }
    }

    /// Returns the decoded instruction at `pc`: a predecode-table lookup on the
    /// fast path, the original fetch + decode round trip otherwise.
    #[inline]
    fn fetch_decoded(&mut self, pc: u32) -> Result<Instruction, Rv32Error> {
        if self.predecode_enabled {
            if self.predecode_stale {
                self.rebuild_predecode()?;
            }
            let offset = pc.wrapping_sub(self.text_base);
            if offset & 3 == 0 {
                if let Some(Some(inst)) = self.predecoded.get((offset / 4) as usize) {
                    return Ok(*inst);
                }
            }
        }
        // Verified fallback: out-of-text PCs, misaligned PCs and non-decodable
        // words go through the memory model so faults are reported identically to
        // the decode-on-fetch path.
        let word = self.memory.fetch(pc)?;
        Instruction::decode(word, pc)
    }

    /// Executes a single instruction, reporting it to `sink`.
    ///
    /// Returns `Some(exit)` when the program terminates.
    ///
    /// # Errors
    ///
    /// Propagates fetch/decode/memory faults.
    pub fn step<S: TraceSink>(&mut self, sink: &mut S) -> Result<Option<ExitInfo>, Rv32Error> {
        let pc = self.pc;
        let inst = self.fetch_decoded(pc)?;

        let mut next_pc = pc.wrapping_add(4);
        let mut branch: Option<BranchInfo> = None;
        let mut extra_cycles = 0u64;
        let mut exit: Option<ExitReason> = None;

        match inst {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let value = alu(op, a, b);
                self.set_reg(rd, value);
                extra_cycles += match op {
                    AluOp::Mul | AluOp::Mulh | AluOp::Mulhsu | AluOp::Mulhu => {
                        self.config.mul_penalty
                    }
                    AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => self.config.div_penalty,
                    _ => 0,
                };
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let a = self.reg(rs1);
                let value = alu_imm(op, a, imm);
                self.set_reg(rd, value);
            }
            Instruction::Load { width, rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let raw = self.memory.load(addr, width.bytes())?;
                let value = match width {
                    crate::isa::LoadWidth::Byte => (raw as u8) as i8 as i32 as u32,
                    crate::isa::LoadWidth::Half => (raw as u16) as i16 as i32 as u32,
                    _ => raw,
                };
                self.set_reg(rd, value);
                extra_cycles += self.config.load_penalty;
            }
            Instruction::Store { width, rs2, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                self.memory.store(addr, width.bytes(), self.reg(rs2))?;
            }
            Instruction::Branch { cond, rs1, rs2, offset } => {
                let taken = cond.evaluate(self.reg(rs1), self.reg(rs2));
                let target = pc.wrapping_add(offset as u32);
                if taken {
                    next_pc = target;
                    extra_cycles += self.config.taken_branch_penalty;
                }
                branch = Some(BranchInfo { kind: BranchKind::Conditional, taken, target });
            }
            Instruction::Lui { rd, imm } => self.set_reg(rd, imm as u32),
            Instruction::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm as u32)),
            Instruction::Jal { rd, offset } => {
                let target = pc.wrapping_add(offset as u32);
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
                extra_cycles += self.config.jump_penalty;
                let kind =
                    if rd.is_link() { BranchKind::DirectCall } else { BranchKind::DirectJump };
                branch = Some(BranchInfo { kind, taken: true, target });
            }
            Instruction::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
                extra_cycles += self.config.jump_penalty;
                let kind = if inst.is_return() {
                    BranchKind::Return
                } else if rd.is_link() {
                    BranchKind::IndirectCall
                } else {
                    BranchKind::IndirectJump
                };
                branch = Some(BranchInfo { kind, taken: true, target });
            }
            Instruction::Ecall => {
                // a7 = 1 requests a host "print" of a0; anything else terminates.
                if self.reg(Reg::A7) == 1 {
                    let value = self.reg(Reg::A0);
                    self.console.push(value);
                } else {
                    exit = Some(ExitReason::Ecall);
                }
            }
            Instruction::Ebreak => exit = Some(ExitReason::Ebreak),
            Instruction::Fence => {}
        }

        self.cycles += 1 + extra_cycles;
        self.instructions += 1;

        let retired = RetiredInst { cycle: self.cycles, pc, inst, next_pc, branch };
        sink.retire(&retired);

        self.pc = next_pc;

        Ok(exit.map(|reason| ExitInfo {
            reason,
            register_a0: self.reg(Reg::A0),
            cycles: self.cycles,
            instructions: self.instructions,
        }))
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1f),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1f),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        AluOp::Mulhsu => (((a as i32 as i64) * (b as i64)) >> 32) as u32,
        AluOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else if (a as i32) == i32::MIN && (b as i32) == -1 {
                a
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else if (a as i32) == i32::MIN && (b as i32) == -1 {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        AluOp::Remu => a.checked_rem(b).unwrap_or(a),
    }
}

fn alu_imm(op: AluImmOp, a: u32, imm: i32) -> u32 {
    match op {
        AluImmOp::Addi => a.wrapping_add(imm as u32),
        AluImmOp::Slti => u32::from((a as i32) < imm),
        AluImmOp::Sltiu => u32::from(a < imm as u32),
        AluImmOp::Xori => a ^ (imm as u32),
        AluImmOp::Ori => a | (imm as u32),
        AluImmOp::Andi => a & (imm as u32),
        AluImmOp::Slli => a.wrapping_shl(imm as u32 & 0x1f),
        AluImmOp::Srli => a.wrapping_shr(imm as u32 & 0x1f),
        AluImmOp::Srai => ((a as i32).wrapping_shr(imm as u32 & 0x1f)) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BranchCond, LoadWidth, StoreWidth};
    use crate::program::Program;
    use crate::trace::VecSink;

    fn build(instructions: &[Instruction]) -> Cpu {
        let program = Program::from_instructions(instructions);
        Cpu::new(&program).expect("load")
    }

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instruction {
        Instruction::AluImm { op: AluImmOp::Addi, rd, rs1, imm }
    }

    #[test]
    fn arithmetic_loop_executes() {
        // a0 = 0; t0 = 5; loop { a0 += t0; t0 -= 1 } while t0 != 0; ecall
        let t1 = Reg::new(6);
        let insts = vec![
            addi(Reg::A0, Reg::ZERO, 0),
            addi(Reg::T0, Reg::ZERO, 5),
            Instruction::Alu { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, rs2: Reg::T0 },
            addi(Reg::T0, Reg::T0, -1),
            Instruction::Branch { cond: BranchCond::Ne, rs1: Reg::T0, rs2: Reg::ZERO, offset: -8 },
            Instruction::Ecall,
        ];
        let _ = t1;
        let mut cpu = build(&insts);
        let exit = cpu.run(1_000).unwrap();
        assert_eq!(exit.reason, ExitReason::Ecall);
        assert_eq!(exit.register_a0, 15);
        assert_eq!(exit.instructions, 2 + 3 * 5 + 1);
    }

    #[test]
    fn zero_register_is_hardwired() {
        let insts = vec![addi(Reg::ZERO, Reg::ZERO, 123), Instruction::Ecall];
        let mut cpu = build(&insts);
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn loads_and_stores_hit_data_segment() {
        let data_base = crate::program::DEFAULT_DATA_BASE as i32;
        // gp points at the data base, store then load back.
        let insts = vec![
            addi(Reg::T0, Reg::ZERO, 77),
            Instruction::Store { width: StoreWidth::Word, rs2: Reg::T0, rs1: Reg::GP, offset: 8 },
            Instruction::Load { width: LoadWidth::Word, rd: Reg::A0, rs1: Reg::GP, offset: 8 },
            Instruction::Ecall,
        ];
        let mut cpu = build(&insts);
        let exit = cpu.run(100).unwrap();
        assert_eq!(exit.register_a0, 77);
        let _ = data_base;
    }

    #[test]
    fn signed_byte_load_sign_extends() {
        let insts = vec![
            addi(Reg::T0, Reg::ZERO, -1),
            Instruction::Store { width: StoreWidth::Byte, rs2: Reg::T0, rs1: Reg::GP, offset: 0 },
            Instruction::Load { width: LoadWidth::Byte, rd: Reg::A0, rs1: Reg::GP, offset: 0 },
            Instruction::Load {
                width: LoadWidth::ByteUnsigned,
                rd: Reg::A1,
                rs1: Reg::GP,
                offset: 0,
            },
            Instruction::Ecall,
        ];
        let mut cpu = build(&insts);
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg::A0), u32::MAX);
        assert_eq!(cpu.reg(Reg::A1), 0xff);
    }

    #[test]
    fn call_and_return_trace_kinds() {
        // main: jal ra, func ; ecall        (func at +8)
        // func: jalr zero, ra, 0
        let insts = vec![
            Instruction::Jal { rd: Reg::RA, offset: 8 },
            Instruction::Ecall,
            Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 },
        ];
        let mut cpu = build(&insts);
        let mut sink = VecSink::new();
        cpu.run_traced(100, &mut sink).unwrap();
        let kinds: Vec<_> = sink.events.iter().filter_map(|e| e.branch.map(|b| b.kind)).collect();
        assert_eq!(kinds, vec![BranchKind::DirectCall, BranchKind::Return]);
        // The return's (Src, Dest) pair points back to the instruction after the call.
        let ret = sink.events.iter().find(|e| e.inst.is_return()).unwrap();
        assert_eq!(ret.src_dest().unwrap().1, crate::program::DEFAULT_TEXT_BASE + 4);
    }

    #[test]
    fn timing_model_charges_penalties() {
        let config = CpuConfig::default();
        // Not-taken branch: no penalty; taken branch: penalty.
        let insts_not_taken = vec![
            Instruction::Branch { cond: BranchCond::Ne, rs1: Reg::ZERO, rs2: Reg::ZERO, offset: 8 },
            Instruction::Ecall,
        ];
        let mut cpu = build(&insts_not_taken);
        let exit = cpu.run(100).unwrap();
        assert_eq!(exit.cycles, 2); // two instructions, no penalties

        let insts_taken = vec![
            Instruction::Branch { cond: BranchCond::Eq, rs1: Reg::ZERO, rs2: Reg::ZERO, offset: 8 },
            Instruction::Ecall, // skipped
            Instruction::Ecall,
        ];
        let mut cpu = build(&insts_taken);
        let exit = cpu.run(100).unwrap();
        assert_eq!(exit.cycles, 1 + config.taken_branch_penalty + 1);
    }

    #[test]
    fn division_by_zero_follows_riscv_semantics() {
        let insts = vec![
            addi(Reg::T0, Reg::ZERO, 10),
            Instruction::Alu { op: AluOp::Div, rd: Reg::A0, rs1: Reg::T0, rs2: Reg::ZERO },
            Instruction::Alu { op: AluOp::Rem, rd: Reg::A1, rs1: Reg::T0, rs2: Reg::ZERO },
            Instruction::Ecall,
        ];
        let mut cpu = build(&insts);
        cpu.run(200).unwrap();
        assert_eq!(cpu.reg(Reg::A0), u32::MAX);
        assert_eq!(cpu.reg(Reg::A1), 10);
    }

    #[test]
    fn cycle_limit_enforced() {
        // Infinite loop: j .
        let insts = vec![Instruction::Jal { rd: Reg::ZERO, offset: 0 }];
        let mut cpu = build(&insts);
        assert!(matches!(cpu.run(50), Err(Rv32Error::CycleLimitExceeded { limit: 50 })));
    }

    #[test]
    fn store_to_code_segment_faults() {
        let insts = vec![
            // t0 = text base (0x1000), then attempt to overwrite the first instruction.
            Instruction::Lui { rd: Reg::T0, imm: crate::program::DEFAULT_TEXT_BASE as i32 },
            Instruction::Store { width: StoreWidth::Word, rs2: Reg::ZERO, rs1: Reg::T0, offset: 0 },
            Instruction::Ecall,
        ];
        let mut cpu = build(&insts);
        assert!(matches!(cpu.run(100), Err(Rv32Error::MemoryPermission { .. })));
    }

    #[test]
    fn print_ecall_appends_to_console_and_continues() {
        let insts = vec![
            addi(Reg::A0, Reg::ZERO, 42),
            addi(Reg::A7, Reg::ZERO, 1),
            Instruction::Ecall,
            addi(Reg::A7, Reg::ZERO, 0),
            Instruction::Ecall,
        ];
        let mut cpu = build(&insts);
        let exit = cpu.run(100).unwrap();
        assert_eq!(exit.reason, ExitReason::Ecall);
        assert_eq!(cpu.console(), &[42]);
    }

    #[test]
    fn ebreak_exits_with_reason() {
        let insts = vec![Instruction::Ebreak];
        let mut cpu = build(&insts);
        let exit = cpu.run(10).unwrap();
        assert_eq!(exit.reason, ExitReason::Ebreak);
    }

    #[test]
    fn predecode_and_fallback_agree() {
        let insts = vec![
            addi(Reg::A0, Reg::ZERO, 0),
            addi(Reg::T0, Reg::ZERO, 7),
            Instruction::Alu { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, rs2: Reg::T0 },
            addi(Reg::T0, Reg::T0, -1),
            Instruction::Branch { cond: BranchCond::Ne, rs1: Reg::T0, rs2: Reg::ZERO, offset: -8 },
            Instruction::Ecall,
        ];
        let mut fast = build(&insts);
        assert!(fast.predecode_enabled());
        let mut slow = build(&insts);
        slow.set_predecode(false);
        let fast_exit = fast.run(1_000).unwrap();
        let slow_exit = slow.run(1_000).unwrap();
        assert_eq!(fast_exit, slow_exit);
        assert_eq!(fast.regs, slow.regs);
    }

    #[test]
    fn predecode_invalidated_by_memory_poke() {
        // Run `addi a0, zero, 1; ecall`, but poke the first instruction into
        // `addi a0, zero, 99` through the adversary/loader interface before
        // stepping: the predecode table must notice the self-modified code.
        let insts = vec![addi(Reg::A0, Reg::ZERO, 1), Instruction::Ecall];
        let mut cpu = build(&insts);
        let patched = addi(Reg::A0, Reg::ZERO, 99).encode();
        cpu.memory_mut()
            .poke_bytes(crate::program::DEFAULT_TEXT_BASE, &patched.to_le_bytes())
            .unwrap();
        let exit = cpu.run(10).unwrap();
        assert_eq!(exit.register_a0, 99, "stale predecode served the old instruction");
    }

    #[test]
    fn predecode_falls_back_outside_text() {
        // Jump into the data segment: the fallback path must report the same
        // permission fault the decode-on-fetch core raises.
        let insts = vec![
            Instruction::Lui { rd: Reg::T0, imm: crate::program::DEFAULT_DATA_BASE as i32 },
            Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::T0, offset: 0 },
        ];
        let mut fast = build(&insts);
        let mut slow = build(&insts);
        slow.set_predecode(false);
        let fast_err = fast.run(10).unwrap_err();
        let slow_err = slow.run(10).unwrap_err();
        assert!(matches!(fast_err, Rv32Error::MemoryPermission { .. }));
        assert_eq!(format!("{fast_err:?}"), format!("{slow_err:?}"));
    }
}

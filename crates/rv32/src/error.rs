//! Error types for the RV32 substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the RV32 substrate (assembler, memory and CPU).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rv32Error {
    /// The assembler rejected the source program.
    Assembly {
        /// 1-based source line of the offending construct.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An instruction word could not be decoded.
    DecodeInvalid {
        /// Program counter of the undecodable word.
        pc: u32,
        /// The raw instruction word.
        word: u32,
    },
    /// A memory access touched an unmapped address.
    MemoryUnmapped {
        /// The faulting address.
        addr: u32,
        /// Size of the attempted access in bytes.
        size: u32,
    },
    /// A memory access violated segment permissions (e.g. a store into the code segment).
    MemoryPermission {
        /// The faulting address.
        addr: u32,
        /// What the access attempted.
        access: AccessKind,
    },
    /// A misaligned access or jump target.
    Misaligned {
        /// The misaligned address.
        addr: u32,
        /// Required alignment in bytes.
        required: u32,
    },
    /// The CPU exceeded the caller-supplied cycle budget without exiting.
    CycleLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// The program image is invalid (e.g. empty code segment or overlapping segments).
    InvalidProgram {
        /// Human-readable description of the problem.
        message: String,
    },
}

/// The kind of memory access that faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch.
    Execute,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
            AccessKind::Execute => write!(f, "execute"),
        }
    }
}

impl fmt::Display for Rv32Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rv32Error::Assembly { line, message } => {
                write!(f, "assembly error at line {line}: {message}")
            }
            Rv32Error::DecodeInvalid { pc, word } => {
                write!(f, "invalid instruction word {word:#010x} at pc {pc:#010x}")
            }
            Rv32Error::MemoryUnmapped { addr, size } => {
                write!(f, "unmapped memory access of {size} bytes at {addr:#010x}")
            }
            Rv32Error::MemoryPermission { addr, access } => {
                write!(f, "permission violation: {access} access at {addr:#010x}")
            }
            Rv32Error::Misaligned { addr, required } => {
                write!(f, "misaligned access at {addr:#010x}, requires {required}-byte alignment")
            }
            Rv32Error::CycleLimitExceeded { limit } => {
                write!(f, "cycle limit of {limit} exceeded without program exit")
            }
            Rv32Error::InvalidProgram { message } => write!(f, "invalid program: {message}"),
        }
    }
}

impl Error for Rv32Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_key_information() {
        let e = Rv32Error::Assembly { line: 12, message: "unknown mnemonic `bogus`".into() };
        assert!(e.to_string().contains("line 12"));
        let e = Rv32Error::MemoryPermission { addr: 0x100, access: AccessKind::Write };
        assert!(e.to_string().contains("write"));
        let e = Rv32Error::CycleLimitExceeded { limit: 5 };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Rv32Error>();
    }
}

//! Memory model with permissioned segments.
//!
//! The paper's program-memory abstraction (Fig. 1) splits memory into a read-execute
//! code segment and a read-write data segment: code cannot be overwritten at run time
//! and data cannot be executed.  [`Memory`] enforces exactly those permissions, which
//! is what makes the LO-FAT adversary model meaningful in simulation: the attacker
//! (fault injection in `lofat-workloads`) can corrupt any writable data but can never
//! patch the attested binary.

use crate::error::{AccessKind, Rv32Error};

/// Permissions of a memory segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Permissions {
    /// Loads allowed.
    pub read: bool,
    /// Stores allowed.
    pub write: bool,
    /// Instruction fetch allowed.
    pub execute: bool,
}

impl Permissions {
    /// Read + execute (code segment).
    pub const RX: Permissions = Permissions { read: true, write: false, execute: true };
    /// Read + write (data segment).
    pub const RW: Permissions = Permissions { read: true, write: true, execute: false };
}

/// A contiguous memory segment.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Segment {
    /// Human-readable name (`.text`, `.data`, `stack`, …).
    pub name: String,
    /// Base address of the segment.
    pub base: u32,
    /// Segment contents.
    pub bytes: Vec<u8>,
    /// Access permissions.
    pub perms: Permissions,
}

impl Segment {
    /// Creates a segment from its parts.
    pub fn new(name: impl Into<String>, base: u32, bytes: Vec<u8>, perms: Permissions) -> Self {
        Self { name: name.into(), base, bytes, perms }
    }

    /// End address (exclusive).
    pub fn end(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }

    fn contains(&self, addr: u32, size: u32) -> bool {
        // Checked arithmetic: an access near u32::MAX must report "not
        // contained" (→ typed unmapped fault), not wrap around or overflow.
        addr >= self.base && addr.checked_add(size).is_some_and(|end| end <= self.end())
    }
}

/// A flat memory made of non-overlapping permissioned segments.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    segments: Vec<Segment>,
    /// Index of the segment that served the most recent access.  Real programs
    /// exhibit strong locality (data accesses hit `.data` or the stack run after
    /// run), so probing this segment first turns the linear segment scan into a
    /// single bounds check on the hot path.
    last_hit: std::cell::Cell<usize>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a segment.
    ///
    /// # Errors
    ///
    /// Returns [`Rv32Error::InvalidProgram`] if the segment overlaps an existing one.
    pub fn add_segment(&mut self, segment: Segment) -> Result<(), Rv32Error> {
        for existing in &self.segments {
            let overlaps = segment.base < existing.end() && existing.base < segment.end();
            if overlaps && !segment.bytes.is_empty() && !existing.bytes.is_empty() {
                return Err(Rv32Error::InvalidProgram {
                    message: format!(
                        "segment `{}` [{:#x}, {:#x}) overlaps `{}` [{:#x}, {:#x})",
                        segment.name,
                        segment.base,
                        segment.end(),
                        existing.name,
                        existing.base,
                        existing.end()
                    ),
                });
            }
        }
        self.segments.push(segment);
        Ok(())
    }

    /// Returns the segments of this memory.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    fn segment_for(&self, addr: u32, size: u32) -> Result<&Segment, Rv32Error> {
        let last = self.last_hit.get();
        if let Some(segment) = self.segments.get(last) {
            if segment.contains(addr, size) {
                return Ok(segment);
            }
        }
        let index = self
            .segments
            .iter()
            .position(|s| s.contains(addr, size))
            .ok_or(Rv32Error::MemoryUnmapped { addr, size })?;
        self.last_hit.set(index);
        Ok(&self.segments[index])
    }

    fn segment_for_mut(&mut self, addr: u32, size: u32) -> Result<&mut Segment, Rv32Error> {
        let last = self.last_hit.get();
        let index = if self.segments.get(last).is_some_and(|s| s.contains(addr, size)) {
            last
        } else {
            let index = self
                .segments
                .iter()
                .position(|s| s.contains(addr, size))
                .ok_or(Rv32Error::MemoryUnmapped { addr, size })?;
            self.last_hit.set(index);
            index
        };
        Ok(&mut self.segments[index])
    }

    /// Loads `size ∈ {1, 2, 4}` bytes as a little-endian value.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses or segments without read permission.
    pub fn load(&self, addr: u32, size: u32) -> Result<u32, Rv32Error> {
        let segment = self.segment_for(addr, size)?;
        if !segment.perms.read {
            return Err(Rv32Error::MemoryPermission { addr, access: AccessKind::Read });
        }
        let offset = (addr - segment.base) as usize;
        let mut value = 0u32;
        for i in 0..size as usize {
            value |= u32::from(segment.bytes[offset + i]) << (8 * i);
        }
        Ok(value)
    }

    /// Stores `size ∈ {1, 2, 4}` bytes of `value` little-endian.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses or segments without write permission (e.g. the
    /// code segment, reproducing the paper's `rx` protection).
    pub fn store(&mut self, addr: u32, size: u32, value: u32) -> Result<(), Rv32Error> {
        let segment = self.segment_for_mut(addr, size)?;
        if !segment.perms.write {
            return Err(Rv32Error::MemoryPermission { addr, access: AccessKind::Write });
        }
        let offset = (addr - segment.base) as usize;
        for i in 0..size as usize {
            segment.bytes[offset + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Fetches a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Fails on unmapped or non-executable addresses and on misaligned PCs.
    pub fn fetch(&self, pc: u32) -> Result<u32, Rv32Error> {
        if !pc.is_multiple_of(4) {
            return Err(Rv32Error::Misaligned { addr: pc, required: 4 });
        }
        // Plain scan, not the `last_hit` cache: fetches hit the text segment
        // (placed first by the loader) while loads/stores hit data/stack, so
        // sharing the cache between them would thrash it on every access.
        let segment = self
            .segments
            .iter()
            .find(|s| s.contains(pc, 4))
            .ok_or(Rv32Error::MemoryUnmapped { addr: pc, size: 4 })?;
        if !segment.perms.execute {
            return Err(Rv32Error::MemoryPermission { addr: pc, access: AccessKind::Execute });
        }
        let offset = (pc - segment.base) as usize;
        Ok(u32::from_le_bytes([
            segment.bytes[offset],
            segment.bytes[offset + 1],
            segment.bytes[offset + 2],
            segment.bytes[offset + 3],
        ]))
    }

    /// Overwrites bytes in a segment regardless of permissions.
    ///
    /// This models the *adversary* of the paper (arbitrary writes to writable memory)
    /// as well as the loader; it is used by the attack-injection utilities in
    /// `lofat-workloads`.  It still refuses to touch unmapped memory.
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped.
    pub fn poke_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Rv32Error> {
        let segment = self.segment_for_mut(addr, bytes.len() as u32)?;
        let offset = (addr - segment.base) as usize;
        segment.bytes[offset..offset + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads bytes from a segment regardless of permissions (loader/debugger view).
    ///
    /// # Errors
    ///
    /// Fails if the range is unmapped.
    pub fn peek_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, Rv32Error> {
        let segment = self.segment_for(addr, len)?;
        let offset = (addr - segment.base) as usize;
        Ok(segment.bytes[offset..offset + len as usize].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory() -> Memory {
        let mut mem = Memory::new();
        mem.add_segment(Segment::new(".text", 0x1000, vec![0u8; 64], Permissions::RX)).unwrap();
        mem.add_segment(Segment::new(".data", 0x2000, vec![0u8; 64], Permissions::RW)).unwrap();
        mem
    }

    #[test]
    fn load_store_roundtrip() {
        let mut mem = memory();
        mem.store(0x2000, 4, 0xdead_beef).unwrap();
        assert_eq!(mem.load(0x2000, 4).unwrap(), 0xdead_beef);
        assert_eq!(mem.load(0x2000, 1).unwrap(), 0xef);
        assert_eq!(mem.load(0x2002, 2).unwrap(), 0xdead);
        mem.store(0x2010, 1, 0xff).unwrap();
        assert_eq!(mem.load(0x2010, 4).unwrap(), 0x0000_00ff);
    }

    #[test]
    fn code_segment_is_not_writable() {
        let mut mem = memory();
        let err = mem.store(0x1000, 4, 1).unwrap_err();
        assert!(matches!(err, Rv32Error::MemoryPermission { access: AccessKind::Write, .. }));
    }

    #[test]
    fn data_segment_is_not_executable() {
        let mem = memory();
        let err = mem.fetch(0x2000).unwrap_err();
        assert!(matches!(err, Rv32Error::MemoryPermission { access: AccessKind::Execute, .. }));
    }

    #[test]
    fn unmapped_access_detected() {
        let mem = memory();
        assert!(matches!(mem.load(0x5000, 4), Err(Rv32Error::MemoryUnmapped { .. })));
        // Access straddling the end of a segment is unmapped too.
        assert!(matches!(mem.load(0x103e, 4), Err(Rv32Error::MemoryUnmapped { .. })));
    }

    #[test]
    fn misaligned_fetch_rejected() {
        let mem = memory();
        assert!(matches!(mem.fetch(0x1002), Err(Rv32Error::Misaligned { .. })));
    }

    #[test]
    fn overlapping_segments_rejected() {
        let mut mem = memory();
        let err = mem
            .add_segment(Segment::new("overlap", 0x1010, vec![0u8; 16], Permissions::RW))
            .unwrap_err();
        assert!(matches!(err, Rv32Error::InvalidProgram { .. }));
    }

    #[test]
    fn poke_bypasses_permissions_but_not_mapping() {
        let mut mem = memory();
        // The adversary can flip bits in writable memory via poke; the loader can also
        // initialise the code segment this way.
        mem.poke_bytes(0x1000, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mem.peek_bytes(0x1000, 4).unwrap(), vec![1, 2, 3, 4]);
        assert!(mem.poke_bytes(0x9000, &[0]).is_err());
    }
}

//! Program images produced by the assembler and consumed by the CPU and the CFG
//! analysis.

use crate::error::Rv32Error;
use crate::isa::Instruction;
use crate::mem::{Memory, Permissions, Segment};
use std::collections::BTreeMap;

/// Default base address of the code segment.
pub const DEFAULT_TEXT_BASE: u32 = 0x0000_1000;
/// Default base address of the data segment.
pub const DEFAULT_DATA_BASE: u32 = 0x0001_0000;
/// Default base address of the stack segment (stack grows down from the end).
pub const DEFAULT_STACK_BASE: u32 = 0x0002_0000;
/// Default stack size in bytes.
pub const DEFAULT_STACK_SIZE: u32 = 0x8000;

/// An assembled program image: code, initialised data and symbols.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Program {
    /// Base address of the code segment.
    pub text_base: u32,
    /// Encoded instruction words, in address order.
    pub text: Vec<u32>,
    /// Base address of the data segment.
    pub data_base: u32,
    /// Initialised data bytes.
    pub data: Vec<u8>,
    /// Entry point (address of the first executed instruction).
    pub entry: u32,
    /// Label → address map (both code and data labels).
    pub symbols: BTreeMap<String, u32>,
    /// Size of the zero-initialised stack segment created by the loader.
    pub stack_size: u32,
}

impl Program {
    /// Creates a program from raw instruction words placed at [`DEFAULT_TEXT_BASE`].
    ///
    /// This constructor is mainly useful in unit tests; workloads normally come from
    /// [`crate::asm::assemble`].
    pub fn from_instructions(instructions: &[Instruction]) -> Self {
        Self {
            text_base: DEFAULT_TEXT_BASE,
            text: instructions.iter().map(Instruction::encode).collect(),
            data_base: DEFAULT_DATA_BASE,
            data: Vec::new(),
            entry: DEFAULT_TEXT_BASE,
            symbols: BTreeMap::new(),
            stack_size: DEFAULT_STACK_SIZE,
        }
    }

    /// End address (exclusive) of the code segment.
    pub fn text_end(&self) -> u32 {
        self.text_base + (self.text.len() as u32) * 4
    }

    /// Looks up a symbol's address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Returns the decoded instruction at `pc`, if `pc` lies in the code segment.
    ///
    /// # Errors
    ///
    /// Returns a decode error for invalid words; `None`-like out-of-range PCs are
    /// reported as [`Rv32Error::MemoryUnmapped`].
    pub fn instruction_at(&self, pc: u32) -> Result<Instruction, Rv32Error> {
        if pc < self.text_base || pc >= self.text_end() || !pc.is_multiple_of(4) {
            return Err(Rv32Error::MemoryUnmapped { addr: pc, size: 4 });
        }
        let index = ((pc - self.text_base) / 4) as usize;
        Instruction::decode(self.text[index], pc)
    }

    /// Iterates over `(pc, instruction)` pairs of the code segment, skipping words
    /// that fail to decode (e.g. literal pools).
    pub fn iter_instructions(&self) -> impl Iterator<Item = (u32, Instruction)> + '_ {
        self.text.iter().enumerate().filter_map(move |(i, &word)| {
            let pc = self.text_base + (i as u32) * 4;
            Instruction::decode(word, pc).ok().map(|inst| (pc, inst))
        })
    }

    /// Builds the loaded memory image: `rx` text, `rw` data and an `rw` stack.
    ///
    /// # Errors
    ///
    /// Returns [`Rv32Error::InvalidProgram`] if the program has no code or its
    /// segments overlap.
    pub fn build_memory(&self) -> Result<Memory, Rv32Error> {
        if self.text.is_empty() {
            return Err(Rv32Error::InvalidProgram { message: "empty code segment".into() });
        }
        let mut memory = Memory::new();
        let text_bytes: Vec<u8> = self.text.iter().flat_map(|w| w.to_le_bytes()).collect();
        memory.add_segment(Segment::new(".text", self.text_base, text_bytes, Permissions::RX))?;
        // Always map a data segment so workloads can use globals even when the image
        // carries no initialised data.
        let mut data = self.data.clone();
        let min_data = 4096;
        if data.len() < min_data {
            data.resize(min_data, 0);
        }
        memory.add_segment(Segment::new(".data", self.data_base, data, Permissions::RW))?;
        memory.add_segment(Segment::new(
            "stack",
            DEFAULT_STACK_BASE,
            vec![0u8; self.stack_size as usize],
            Permissions::RW,
        ))?;
        Ok(memory)
    }

    /// Address the stack pointer is initialised to (top of the stack segment).
    pub fn initial_sp(&self) -> u32 {
        DEFAULT_STACK_BASE + self.stack_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluImmOp, Reg};

    fn nop() -> Instruction {
        Instruction::AluImm { op: AluImmOp::Addi, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 }
    }

    #[test]
    fn from_instructions_builds_image() {
        let program = Program::from_instructions(&[nop(), Instruction::Ecall]);
        assert_eq!(program.text.len(), 2);
        assert_eq!(program.entry, DEFAULT_TEXT_BASE);
        assert_eq!(program.text_end(), DEFAULT_TEXT_BASE + 8);
        assert_eq!(program.instruction_at(DEFAULT_TEXT_BASE).unwrap(), nop());
        assert!(program.instruction_at(DEFAULT_TEXT_BASE + 8).is_err());
        assert!(program.instruction_at(DEFAULT_TEXT_BASE + 1).is_err());
    }

    #[test]
    fn memory_layout_has_three_segments() {
        let program = Program::from_instructions(&[nop()]);
        let memory = program.build_memory().unwrap();
        let names: Vec<_> = memory.segments().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec![".text", ".data", "stack"]);
        assert!(program.initial_sp() > DEFAULT_STACK_BASE);
    }

    #[test]
    fn empty_program_rejected() {
        let program = Program {
            text_base: DEFAULT_TEXT_BASE,
            text: vec![],
            data_base: DEFAULT_DATA_BASE,
            data: vec![],
            entry: DEFAULT_TEXT_BASE,
            symbols: BTreeMap::new(),
            stack_size: DEFAULT_STACK_SIZE,
        };
        assert!(program.build_memory().is_err());
    }

    #[test]
    fn iter_instructions_yields_all_valid_words() {
        let program = Program::from_instructions(&[nop(), nop(), Instruction::Ecall]);
        assert_eq!(program.iter_instructions().count(), 3);
    }
}

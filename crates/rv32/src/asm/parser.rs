//! Line and operand parsing for the assembler.

use super::err;
use crate::error::Rv32Error;
use crate::isa::Reg;

/// A parsed operand.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Operand {
    /// A register name.
    Reg(Reg),
    /// An integer literal (decimal, hex `0x…`, binary `0b…`, possibly negative).
    Literal(i64),
    /// A symbol reference (label or `.equ` constant).
    Symbol(String),
    /// A memory operand `offset(base)`.
    Memory {
        /// Byte offset (literal or symbolic, resolved at emission time).
        offset: Box<Operand>,
        /// Base address register.
        base: Reg,
    },
}

/// One statement on a line.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Statement {
    /// An assembler directive such as `.word 1, 2`.
    Directive {
        /// Directive name including the leading dot.
        name: String,
        /// Directive operands.
        operands: Vec<Operand>,
    },
    /// A machine or pseudo instruction.
    Instruction {
        /// Lower-cased mnemonic.
        mnemonic: String,
        /// Instruction operands.
        operands: Vec<Operand>,
    },
}

/// A fully parsed source line: zero or more labels plus an optional statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct Line {
    /// Labels defined on this line.
    pub labels: Vec<String>,
    /// The statement, if the line is not blank/label-only.
    pub statement: Option<Statement>,
}

/// Parses one source line.
pub(crate) fn parse_line(raw: &str, line_no: usize) -> Result<Line, Rv32Error> {
    // Strip comments.
    let without_hash = raw.split('#').next().unwrap_or("");
    let code = without_hash.split("//").next().unwrap_or("").trim();
    let mut line = Line::default();
    if code.is_empty() {
        return Ok(line);
    }

    let mut rest = code;
    // Peel off leading `label:` definitions.
    while let Some(colon) = rest.find(':') {
        let candidate = rest[..colon].trim();
        if !candidate.is_empty()
            && is_identifier(candidate)
            && !rest[..colon].contains(char::is_whitespace)
        {
            line.labels.push(candidate.to_string());
            rest = rest[colon + 1..].trim();
        } else {
            break;
        }
    }
    if rest.is_empty() {
        return Ok(line);
    }

    let (head, tail) = match rest.find(char::is_whitespace) {
        Some(pos) => (&rest[..pos], rest[pos..].trim()),
        None => (rest, ""),
    };
    let operands = parse_operands(tail, line_no)?;
    let statement = if let Some(stripped) = head.strip_prefix('.') {
        Statement::Directive { name: format!(".{}", stripped.to_ascii_lowercase()), operands }
    } else {
        Statement::Instruction { mnemonic: head.to_ascii_lowercase(), operands }
    };
    line.statement = Some(statement);
    Ok(line)
}

fn parse_operands(text: &str, line_no: usize) -> Result<Vec<Operand>, Rv32Error> {
    let text = text.trim();
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',').map(|part| parse_operand(part.trim(), line_no)).collect()
}

fn parse_operand(text: &str, line_no: usize) -> Result<Operand, Rv32Error> {
    if text.is_empty() {
        return Err(err(line_no, "empty operand".to_string()));
    }
    // Memory operand `offset(base)` or `(base)`.
    if let Some(open) = text.find('(') {
        let close = text
            .rfind(')')
            .ok_or_else(|| err(line_no, format!("unterminated memory operand `{text}`")))?;
        let offset_text = text[..open].trim();
        let base_text = text[open + 1..close].trim();
        let base = Reg::parse(base_text)
            .ok_or_else(|| err(line_no, format!("unknown base register `{base_text}`")))?;
        let offset = if offset_text.is_empty() {
            Operand::Literal(0)
        } else {
            parse_scalar(offset_text, line_no)?
        };
        return Ok(Operand::Memory { offset: Box::new(offset), base });
    }
    if let Some(reg) = Reg::parse(text) {
        return Ok(Operand::Reg(reg));
    }
    parse_scalar(text, line_no)
}

fn parse_scalar(text: &str, line_no: usize) -> Result<Operand, Rv32Error> {
    if let Some(value) = parse_int(text) {
        return Ok(Operand::Literal(value));
    }
    if is_identifier(text) {
        return Ok(Operand::Symbol(text.to_string()));
    }
    Err(err(line_no, format!("cannot parse operand `{text}`")))
}

fn parse_int(text: &str) -> Option<i64> {
    let (negative, digits) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text.strip_prefix('+').unwrap_or(text)),
    };
    let value = if let Some(hex) = digits.strip_prefix("0x").or_else(|| digits.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = digits.strip_prefix("0b").or_else(|| digits.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()?
    } else if digits.chars().all(|c| c.is_ascii_digit()) && !digits.is_empty() {
        digits.parse().ok()?
    } else {
        return None;
    };
    Some(if negative { -value } else { value })
}

fn is_identifier(text: &str) -> bool {
    let mut chars = text.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_and_comment_lines() {
        assert_eq!(parse_line("", 1).unwrap(), Line::default());
        assert_eq!(parse_line("   # only a comment", 1).unwrap(), Line::default());
        assert_eq!(parse_line("// slashes too", 1).unwrap(), Line::default());
    }

    #[test]
    fn labels_and_instruction_on_one_line() {
        let line = parse_line("loop: addi t0, t0, -1  # decrement", 1).unwrap();
        assert_eq!(line.labels, vec!["loop".to_string()]);
        match line.statement.unwrap() {
            Statement::Instruction { mnemonic, operands } => {
                assert_eq!(mnemonic, "addi");
                assert_eq!(operands.len(), 3);
                assert_eq!(operands[2], Operand::Literal(-1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn memory_operands() {
        let line = parse_line("lw ra, 12(sp)", 1).unwrap();
        match line.statement.unwrap() {
            Statement::Instruction { operands, .. } => {
                assert_eq!(operands[0], Operand::Reg(Reg::RA));
                assert_eq!(
                    operands[1],
                    Operand::Memory { offset: Box::new(Operand::Literal(12)), base: Reg::SP }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        let line = parse_line("lw a0, (a1)", 1).unwrap();
        match line.statement.unwrap() {
            Statement::Instruction { operands, .. } => {
                assert_eq!(
                    operands[1],
                    Operand::Memory {
                        offset: Box::new(Operand::Literal(0)),
                        base: Reg::parse("a1").unwrap()
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn directives_and_numbers() {
        let line = parse_line(".word 0x10, 0b101, -3, label", 1).unwrap();
        match line.statement.unwrap() {
            Statement::Directive { name, operands } => {
                assert_eq!(name, ".word");
                assert_eq!(operands[0], Operand::Literal(16));
                assert_eq!(operands[1], Operand::Literal(5));
                assert_eq!(operands[2], Operand::Literal(-3));
                assert_eq!(operands[3], Operand::Symbol("label".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_operands_are_rejected() {
        assert!(parse_line("addi t0, t0, 1(", 3).is_err());
        assert!(parse_line("lw a0, 4(bogus)", 3).is_err());
        assert!(parse_line("addi t0, t0, 12abc", 3).is_err());
    }

    #[test]
    fn label_only_line() {
        let line = parse_line("main:", 1).unwrap();
        assert_eq!(line.labels, vec!["main".to_string()]);
        assert!(line.statement.is_none());
    }
}

//! Assembler integration tests: assemble, run on the core and check results.

use super::*;
use crate::cpu::{Cpu, ExitReason};
use crate::isa::Reg;
use crate::trace::VecSink;

fn run(source: &str) -> (Cpu, crate::cpu::ExitInfo) {
    let program = assemble(source).expect("assemble");
    let mut cpu = Cpu::new(&program).expect("load");
    let exit = cpu.run(1_000_000).expect("run");
    (cpu, exit)
}

#[test]
fn quickstart_sum_loop() {
    let (_, exit) = run(r#"
        .text
        main:
            li   a0, 0
            li   t0, 10
        loop:
            add  a0, a0, t0
            addi t0, t0, -1
            bnez t0, loop
            ecall
    "#);
    assert_eq!(exit.reason, ExitReason::Ecall);
    assert_eq!(exit.register_a0, 55);
}

#[test]
fn call_ret_and_stack() {
    let (_, exit) = run(r#"
        .text
        main:
            addi sp, sp, -16
            sw   ra, 12(sp)
            li   a0, 4
            call square
            lw   ra, 12(sp)
            addi sp, sp, 16
            ecall
        square:
            mul  a0, a0, a0
            ret
    "#);
    assert_eq!(exit.register_a0, 16);
}

#[test]
fn data_section_word_and_la() {
    let (_, exit) = run(r#"
        .data
        values:
            .word 3, 5, 7, 11
        .text
        main:
            la   t0, values
            lw   a0, 0(t0)
            lw   t1, 4(t0)
            add  a0, a0, t1
            lw   t1, 12(t0)
            add  a0, a0, t1
            ecall
    "#);
    assert_eq!(exit.register_a0, 3 + 5 + 11);
}

#[test]
fn li_large_immediates() {
    let (cpu, exit) = run(r#"
        .text
        main:
            li   a0, 0x12345678
            li   a1, -100000
            li   a2, 2047
            li   a3, -2048
            ecall
    "#);
    assert_eq!(exit.register_a0, 0x1234_5678);
    assert_eq!(cpu.reg(Reg::A1), (-100_000i32) as u32);
    assert_eq!(cpu.reg(Reg::parse("a2").unwrap()), 2047);
    assert_eq!(cpu.reg(Reg::parse("a3").unwrap()), (-2048i32) as u32);
}

#[test]
fn equ_constants() {
    let (_, exit) = run(r#"
        .equ ITERATIONS, 6
        .equ STEP, 2
        .text
        main:
            li   a0, 0
            li   t0, ITERATIONS
        loop:
            addi a0, a0, STEP
            addi t0, t0, -1
            bnez t0, loop
            ecall
    "#);
    assert_eq!(exit.register_a0, 12);
}

#[test]
fn branch_pseudo_ops() {
    let (_, exit) = run(r#"
        .text
        main:
            li   a0, 0
            li   t0, 5
            li   t1, 3
            bgt  t0, t1, greater
            li   a0, 111
            ecall
        greater:
            ble  t1, t0, lesser
            li   a0, 222
            ecall
        lesser:
            li   a0, 42
            ecall
    "#);
    assert_eq!(exit.register_a0, 42);
}

#[test]
fn indirect_call_through_register() {
    let (_, exit) = run(r#"
        .text
        main:
            la   t1, target
            jalr ra, t1, 0
            ecall
        target:
            li   a0, 99
            ret
    "#);
    assert_eq!(exit.register_a0, 99);
}

#[test]
fn symbols_and_entry_point() {
    let program = assemble(
        r#"
        .text
        helper:
            ret
        main:
            li a0, 1
            ecall
    "#,
    )
    .unwrap();
    // Entry point is `main`, not the first instruction.
    assert_eq!(program.entry, program.symbol("main").unwrap());
    assert!(program.symbol("helper").unwrap() < program.entry);
}

#[test]
fn print_syscall_collects_console_output() {
    let (cpu, _) = run(r#"
        .text
        main:
            li   a7, 1
            li   a0, 7
            ecall
            li   a0, 13
            ecall
            li   a7, 0
            ecall
    "#);
    assert_eq!(cpu.console(), &[7, 13]);
}

#[test]
fn trace_contains_expected_branch_count() {
    let program = assemble(
        r#"
        .text
        main:
            li   t0, 4
        loop:
            addi t0, t0, -1
            bnez t0, loop
            ecall
    "#,
    )
    .unwrap();
    let mut cpu = Cpu::new(&program).unwrap();
    let mut sink = VecSink::new();
    cpu.run_traced(10_000, &mut sink).unwrap();
    // The loop branch executes 4 times: taken 3 times, not taken once.
    let branches: Vec<_> = sink.events.iter().filter(|e| e.branch.is_some()).collect();
    assert_eq!(branches.len(), 4);
    assert_eq!(sink.taken_branches().count(), 3);
}

#[test]
fn errors_report_line_numbers() {
    let err = assemble(".text\nmain:\n    bogus t0, t1\n").unwrap_err();
    match err {
        Rv32Error::Assembly { line, message } => {
            assert_eq!(line, 3);
            assert!(message.contains("bogus"));
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn duplicate_label_rejected() {
    let err = assemble(".text\nx:\nx:\n    ecall\n").unwrap_err();
    assert!(matches!(err, Rv32Error::Assembly { .. }));
}

#[test]
fn undefined_symbol_rejected() {
    let err = assemble(".text\nmain:\n    j nowhere\n").unwrap_err();
    match err {
        Rv32Error::Assembly { message, .. } => assert!(message.contains("nowhere")),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn branch_out_of_range_rejected() {
    // Force a branch past the ±4 KiB window using .space inside .text.
    let source =
        format!(".text\nmain:\n    beqz zero, far\n    .space {}\nfar:\n    ecall\n", 8192);
    let err = assemble(&source).unwrap_err();
    match err {
        Rv32Error::Assembly { message, .. } => assert!(message.contains("range")),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn immediate_out_of_range_rejected() {
    assert!(assemble(".text\nmain:\n    addi a0, a0, 5000\n").is_err());
    assert!(assemble(".text\nmain:\n    slli a0, a0, 33\n").is_err());
}

#[test]
fn instruction_in_data_section_rejected() {
    assert!(assemble(".data\n    addi a0, a0, 1\n").is_err());
}

#[test]
fn empty_program_rejected() {
    assert!(assemble("\n# nothing here\n").is_err());
}

#[test]
fn custom_bases_via_builder() {
    let program = Assembler::new()
        .text_base(0x4000)
        .data_base(0x18000)
        .assemble(".data\nv: .word 9\n.text\nmain:\n    la t0, v\n    lw a0, 0(t0)\n    ecall\n")
        .unwrap();
    assert_eq!(program.text_base, 0x4000);
    assert_eq!(program.symbol("v"), Some(0x18000));
    let mut cpu = Cpu::new(&program).unwrap();
    let exit = cpu.run(1000).unwrap();
    assert_eq!(exit.register_a0, 9);
}

#[test]
fn fibonacci_recursive() {
    let (_, exit) = run(r#"
        .text
        main:
            li   a0, 10
            call fib
            ecall
        # fib(n): if n < 2 return n else fib(n-1) + fib(n-2)
        fib:
            li   t0, 2
            blt  a0, t0, fib_base
            addi sp, sp, -16
            sw   ra, 12(sp)
            sw   a0, 8(sp)
            addi a0, a0, -1
            call fib
            sw   a0, 4(sp)
            lw   a0, 8(sp)
            addi a0, a0, -2
            call fib
            lw   t1, 4(sp)
            add  a0, a0, t1
            lw   ra, 12(sp)
            addi sp, sp, 16
            ret
        fib_base:
            ret
    "#);
    assert_eq!(exit.register_a0, 55);
}

//! A two-pass assembler for a practical subset of the GNU `as` RV32IM syntax.
//!
//! The evaluation workloads of the LO-FAT reproduction are written in assembly (the
//! paper runs code segments extracted from real embedded applications on Pulpino; we
//! have no external RISC-V toolchain in this environment, so the workloads are
//! assembled by this module).  Supported features:
//!
//! * `.text` / `.data` sections, `.word`, `.half`, `.byte`, `.space`, `.align`,
//!   `.globl` (accepted and ignored), `.equ NAME, value`;
//! * labels (`name:`), `#` and `//` comments;
//! * all RV32I base instructions plus the M extension;
//! * the common pseudo-instructions (`li`, `la`, `mv`, `not`, `neg`, `seqz`, `snez`,
//!   `nop`, `j`, `jr`, `jal label`, `jalr rs`, `call`, `tail`, `ret`, `beqz`, `bnez`,
//!   `blez`, `bgez`, `bltz`, `bgtz`, `bgt`, `ble`, `bgtu`, `bleu`).
//!
//! # Example
//!
//! ```
//! use lofat_rv32::asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!     .text
//!     main:
//!         li   a0, 7
//!         call double
//!         ecall
//!     double:
//!         add  a0, a0, a0
//!         ret
//!     "#,
//! )?;
//! assert!(program.symbol("double").is_some());
//! # Ok::<(), lofat_rv32::Rv32Error>(())
//! ```

mod parser;
mod pseudo;

use crate::error::Rv32Error;
use crate::isa::Instruction;
use crate::program::{Program, DEFAULT_DATA_BASE, DEFAULT_STACK_SIZE, DEFAULT_TEXT_BASE};
use parser::{parse_line, Line, Operand, Statement};
use std::collections::BTreeMap;

/// Assembles `source` with the default memory layout.
///
/// # Errors
///
/// Returns [`Rv32Error::Assembly`] describing the first offending source line.
pub fn assemble(source: &str) -> Result<Program, Rv32Error> {
    Assembler::new().assemble(source)
}

/// Configurable assembler (text/data base addresses, stack size).
///
/// # Example
///
/// ```
/// use lofat_rv32::asm::Assembler;
///
/// let program = Assembler::new()
///     .text_base(0x8000)
///     .assemble(".text\nstart: ecall\n")?;
/// assert_eq!(program.text_base, 0x8000);
/// # Ok::<(), lofat_rv32::Rv32Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Assembler {
    text_base: u32,
    data_base: u32,
    stack_size: u32,
}

impl Default for Assembler {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

impl Assembler {
    /// Creates an assembler with the default memory layout.
    pub fn new() -> Self {
        Self {
            text_base: DEFAULT_TEXT_BASE,
            data_base: DEFAULT_DATA_BASE,
            stack_size: DEFAULT_STACK_SIZE,
        }
    }

    /// Sets the base address of the code segment.
    pub fn text_base(mut self, base: u32) -> Self {
        self.text_base = base;
        self
    }

    /// Sets the base address of the data segment.
    pub fn data_base(mut self, base: u32) -> Self {
        self.data_base = base;
        self
    }

    /// Sets the size of the stack segment created by the loader.
    pub fn stack_size(mut self, size: u32) -> Self {
        self.stack_size = size;
        self
    }

    /// Assembles `source` into a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`Rv32Error::Assembly`] describing the first offending source line.
    pub fn assemble(&self, source: &str) -> Result<Program, Rv32Error> {
        let lines: Vec<(usize, Line)> = source
            .lines()
            .enumerate()
            .map(|(i, raw)| parse_line(raw, i + 1).map(|l| (i + 1, l)))
            .collect::<Result<_, _>>()?;

        // Pass 1: lay out sections, record symbol addresses.
        let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
        let mut equs: BTreeMap<String, i64> = BTreeMap::new();
        let mut section = Section::Text;
        let mut text_pc = self.text_base;
        let mut data_pc = self.data_base;

        for (line_no, line) in &lines {
            for label in &line.labels {
                let addr = match section {
                    Section::Text => text_pc,
                    Section::Data => data_pc,
                };
                if symbols.insert(label.clone(), addr).is_some() {
                    return Err(err(*line_no, format!("duplicate label `{label}`")));
                }
            }
            match &line.statement {
                Some(Statement::Directive { name, operands }) => match name.as_str() {
                    ".text" => section = Section::Text,
                    ".data" => section = Section::Data,
                    ".globl" | ".global" | ".section" | ".type" | ".size" => {}
                    ".equ" | ".set" => {
                        let (name, value) = parse_equ(operands, *line_no, &equs)?;
                        equs.insert(name, value);
                    }
                    ".word" => {
                        advance(&mut section, &mut text_pc, &mut data_pc, 4 * operands.len() as u32)
                    }
                    ".half" => {
                        advance(&mut section, &mut text_pc, &mut data_pc, 2 * operands.len() as u32)
                    }
                    ".byte" => {
                        advance(&mut section, &mut text_pc, &mut data_pc, operands.len() as u32)
                    }
                    ".space" | ".zero" => {
                        let n = expect_literal(operands, 0, *line_no, &equs)?;
                        advance(&mut section, &mut text_pc, &mut data_pc, n as u32);
                    }
                    ".align" => {
                        let n = expect_literal(operands, 0, *line_no, &equs)?;
                        let align = 1u32 << n;
                        let pc = match section {
                            Section::Text => &mut text_pc,
                            Section::Data => &mut data_pc,
                        };
                        *pc = pc.div_ceil(align) * align;
                    }
                    other => return Err(err(*line_no, format!("unsupported directive `{other}`"))),
                },
                Some(Statement::Instruction { mnemonic, operands }) => {
                    if section != Section::Text {
                        return Err(err(*line_no, "instruction outside .text section".to_string()));
                    }
                    let size = pseudo::instruction_size(mnemonic, operands, *line_no, &equs)?;
                    text_pc += size;
                }
                None => {}
            }
        }

        // Pass 2: emit code and data.
        let mut text: Vec<u32> = Vec::new();
        let mut data: Vec<u8> = Vec::new();
        let mut section = Section::Text;
        let mut text_pc = self.text_base;
        let mut data_pc = self.data_base;

        let ctx = EmitContext { symbols: &symbols, equs: &equs };

        for (line_no, line) in &lines {
            match &line.statement {
                Some(Statement::Directive { name, operands }) => match name.as_str() {
                    ".text" => section = Section::Text,
                    ".data" => section = Section::Data,
                    ".globl" | ".global" | ".section" | ".type" | ".size" | ".equ" | ".set" => {}
                    ".word" => {
                        for op in operands {
                            let value = ctx.resolve(op, *line_no)? as u32;
                            emit_data(
                                &mut section,
                                &mut text,
                                &mut data,
                                &mut text_pc,
                                &mut data_pc,
                                &value.to_le_bytes(),
                            );
                        }
                    }
                    ".half" => {
                        for op in operands {
                            let value = ctx.resolve(op, *line_no)? as u16;
                            emit_data(
                                &mut section,
                                &mut text,
                                &mut data,
                                &mut text_pc,
                                &mut data_pc,
                                &value.to_le_bytes(),
                            );
                        }
                    }
                    ".byte" => {
                        for op in operands {
                            let value = ctx.resolve(op, *line_no)? as u8;
                            emit_data(
                                &mut section,
                                &mut text,
                                &mut data,
                                &mut text_pc,
                                &mut data_pc,
                                &[value],
                            );
                        }
                    }
                    ".space" | ".zero" => {
                        let n = expect_literal(operands, 0, *line_no, &equs)?;
                        emit_data(
                            &mut section,
                            &mut text,
                            &mut data,
                            &mut text_pc,
                            &mut data_pc,
                            &vec![0u8; n as usize],
                        );
                    }
                    ".align" => {
                        let n = expect_literal(operands, 0, *line_no, &equs)?;
                        let align = 1u32 << n;
                        match section {
                            Section::Text => {
                                while !text_pc.is_multiple_of(align) {
                                    text.push(
                                        Instruction::AluImm {
                                            op: crate::isa::AluImmOp::Addi,
                                            rd: crate::isa::Reg::ZERO,
                                            rs1: crate::isa::Reg::ZERO,
                                            imm: 0,
                                        }
                                        .encode(),
                                    );
                                    text_pc += 4;
                                }
                            }
                            Section::Data => {
                                while !data_pc.is_multiple_of(align) {
                                    data.push(0);
                                    data_pc += 1;
                                }
                            }
                        }
                    }
                    _ => unreachable!("rejected in pass 1"),
                },
                Some(Statement::Instruction { mnemonic, operands }) => {
                    let instructions = pseudo::expand(mnemonic, operands, text_pc, *line_no, &ctx)?;
                    for inst in instructions {
                        text.push(inst.encode());
                        text_pc += 4;
                    }
                }
                None => {}
            }
        }

        let entry = symbols
            .get("main")
            .or_else(|| symbols.get("_start"))
            .copied()
            .unwrap_or(self.text_base);

        if text.is_empty() {
            return Err(Rv32Error::Assembly {
                line: 0,
                message: "program contains no instructions".into(),
            });
        }

        Ok(Program {
            text_base: self.text_base,
            text,
            data_base: self.data_base,
            data,
            entry,
            symbols,
            stack_size: self.stack_size,
        })
    }
}

/// Symbol-resolution context shared with the pseudo-instruction expander.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EmitContext<'a> {
    symbols: &'a BTreeMap<String, u32>,
    equs: &'a BTreeMap<String, i64>,
}

impl EmitContext<'_> {
    /// Resolves an operand to an integer value (literal, `.equ` constant or label).
    pub(crate) fn resolve(&self, operand: &Operand, line: usize) -> Result<i64, Rv32Error> {
        match operand {
            Operand::Literal(v) => Ok(*v),
            Operand::Symbol(name) => {
                if let Some(v) = self.equs.get(name) {
                    Ok(*v)
                } else if let Some(addr) = self.symbols.get(name) {
                    Ok(i64::from(*addr))
                } else {
                    Err(err(line, format!("undefined symbol `{name}`")))
                }
            }
            other => Err(err(line, format!("expected an immediate or symbol, found {other:?}"))),
        }
    }
}

fn parse_equ(
    operands: &[Operand],
    line: usize,
    equs: &BTreeMap<String, i64>,
) -> Result<(String, i64), Rv32Error> {
    if operands.len() != 2 {
        return Err(err(line, ".equ expects `name, value`".to_string()));
    }
    let name = match &operands[0] {
        Operand::Symbol(s) => s.clone(),
        other => return Err(err(line, format!("invalid .equ name {other:?}"))),
    };
    let value = match &operands[1] {
        Operand::Literal(v) => *v,
        Operand::Symbol(s) => {
            *equs.get(s).ok_or_else(|| err(line, format!("undefined constant `{s}` in .equ")))?
        }
        other => return Err(err(line, format!("invalid .equ value {other:?}"))),
    };
    Ok((name, value))
}

fn expect_literal(
    operands: &[Operand],
    index: usize,
    line: usize,
    equs: &BTreeMap<String, i64>,
) -> Result<i64, Rv32Error> {
    match operands.get(index) {
        Some(Operand::Literal(v)) => Ok(*v),
        Some(Operand::Symbol(s)) => {
            equs.get(s).copied().ok_or_else(|| err(line, format!("undefined constant `{s}`")))
        }
        _ => Err(err(line, "expected a literal operand".to_string())),
    }
}

fn advance(section: &mut Section, text_pc: &mut u32, data_pc: &mut u32, bytes: u32) {
    match section {
        Section::Text => *text_pc += bytes,
        Section::Data => *data_pc += bytes,
    }
}

fn emit_data(
    section: &mut Section,
    text: &mut Vec<u32>,
    data: &mut Vec<u8>,
    text_pc: &mut u32,
    data_pc: &mut u32,
    bytes: &[u8],
) {
    match section {
        Section::Text => {
            // Data in the text section is rare in our workloads; pack into words.
            // Only whole words are supported to keep instruction indexing intact.
            let mut padded = bytes.to_vec();
            while !padded.len().is_multiple_of(4) {
                padded.push(0);
            }
            for chunk in padded.chunks(4) {
                text.push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
                *text_pc += 4;
            }
        }
        Section::Data => {
            data.extend_from_slice(bytes);
            *data_pc += bytes.len() as u32;
        }
    }
}

pub(crate) fn err(line: usize, message: String) -> Rv32Error {
    Rv32Error::Assembly { line, message }
}

#[cfg(test)]
mod tests;

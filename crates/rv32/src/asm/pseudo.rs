//! Translation of mnemonics (native and pseudo) into [`Instruction`]s.

use super::parser::Operand;
use super::{err, EmitContext};
use crate::error::Rv32Error;
use crate::isa::{AluImmOp, AluOp, BranchCond, Instruction, LoadWidth, Reg, StoreWidth};
use std::collections::BTreeMap;

/// Size in bytes the statement will occupy, used by pass 1 of the assembler.
pub(crate) fn instruction_size(
    mnemonic: &str,
    operands: &[Operand],
    line: usize,
    equs: &BTreeMap<String, i64>,
) -> Result<u32, Rv32Error> {
    match mnemonic {
        "li" => {
            let imm = match operands.get(1) {
                Some(Operand::Literal(v)) => *v,
                Some(Operand::Symbol(s)) => *equs.get(s).ok_or_else(|| {
                    err(line, format!("`li` needs a constant; use `la` for address `{s}`"))
                })?,
                _ => return Err(err(line, "li expects `rd, imm`".to_string())),
            };
            Ok(if fits_i12(imm) { 4 } else { 8 })
        }
        "la" => Ok(8),
        _ => Ok(4),
    }
}

/// Expands one statement into machine instructions, resolving symbols via `ctx`.
pub(crate) fn expand(
    mnemonic: &str,
    operands: &[Operand],
    pc: u32,
    line: usize,
    ctx: &EmitContext<'_>,
) -> Result<Vec<Instruction>, Rv32Error> {
    let ops = OperandReader { operands, line, ctx };
    let single = |inst: Instruction| Ok(vec![inst]);

    match mnemonic {
        // --- register-register ALU -------------------------------------------------
        "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" | "mul"
        | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
            let op = match mnemonic {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "sll" => AluOp::Sll,
                "slt" => AluOp::Slt,
                "sltu" => AluOp::Sltu,
                "xor" => AluOp::Xor,
                "srl" => AluOp::Srl,
                "sra" => AluOp::Sra,
                "or" => AluOp::Or,
                "and" => AluOp::And,
                "mul" => AluOp::Mul,
                "mulh" => AluOp::Mulh,
                "mulhsu" => AluOp::Mulhsu,
                "mulhu" => AluOp::Mulhu,
                "div" => AluOp::Div,
                "divu" => AluOp::Divu,
                "rem" => AluOp::Rem,
                _ => AluOp::Remu,
            };
            ops.expect(3)?;
            single(Instruction::Alu { op, rd: ops.reg(0)?, rs1: ops.reg(1)?, rs2: ops.reg(2)? })
        }

        // --- register-immediate ALU -------------------------------------------------
        "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli" | "srli" | "srai" => {
            let op = match mnemonic {
                "addi" => AluImmOp::Addi,
                "slti" => AluImmOp::Slti,
                "sltiu" => AluImmOp::Sltiu,
                "xori" => AluImmOp::Xori,
                "ori" => AluImmOp::Ori,
                "andi" => AluImmOp::Andi,
                "slli" => AluImmOp::Slli,
                "srli" => AluImmOp::Srli,
                _ => AluImmOp::Srai,
            };
            ops.expect(3)?;
            let imm = ops.imm(2)?;
            let shift = matches!(op, AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai);
            if shift {
                if !(0..=31).contains(&imm) {
                    return Err(err(line, format!("shift amount {imm} out of range 0..=31")));
                }
            } else if !fits_i12(imm) {
                return Err(err(line, format!("immediate {imm} does not fit in 12 bits")));
            }
            single(Instruction::AluImm { op, rd: ops.reg(0)?, rs1: ops.reg(1)?, imm: imm as i32 })
        }

        // --- loads / stores ----------------------------------------------------------
        "lb" | "lh" | "lw" | "lbu" | "lhu" => {
            let width = match mnemonic {
                "lb" => LoadWidth::Byte,
                "lh" => LoadWidth::Half,
                "lw" => LoadWidth::Word,
                "lbu" => LoadWidth::ByteUnsigned,
                _ => LoadWidth::HalfUnsigned,
            };
            ops.expect(2)?;
            let (offset, base) = ops.memory(1)?;
            single(Instruction::Load { width, rd: ops.reg(0)?, rs1: base, offset: offset as i32 })
        }
        "sb" | "sh" | "sw" => {
            let width = match mnemonic {
                "sb" => StoreWidth::Byte,
                "sh" => StoreWidth::Half,
                _ => StoreWidth::Word,
            };
            ops.expect(2)?;
            let (offset, base) = ops.memory(1)?;
            single(Instruction::Store { width, rs2: ops.reg(0)?, rs1: base, offset: offset as i32 })
        }

        // --- conditional branches ----------------------------------------------------
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            ops.expect(3)?;
            let cond = branch_cond(mnemonic);
            let offset = ops.branch_offset(2, pc)?;
            single(Instruction::Branch { cond, rs1: ops.reg(0)?, rs2: ops.reg(1)?, offset })
        }
        "beqz" | "bnez" | "bltz" | "bgez" => {
            ops.expect(2)?;
            let cond = match mnemonic {
                "beqz" => BranchCond::Eq,
                "bnez" => BranchCond::Ne,
                "bltz" => BranchCond::Lt,
                _ => BranchCond::Ge,
            };
            let offset = ops.branch_offset(1, pc)?;
            single(Instruction::Branch { cond, rs1: ops.reg(0)?, rs2: Reg::ZERO, offset })
        }
        "blez" | "bgtz" => {
            ops.expect(2)?;
            // blez rs => bge zero, rs ; bgtz rs => blt zero, rs
            let cond = if mnemonic == "blez" { BranchCond::Ge } else { BranchCond::Lt };
            let offset = ops.branch_offset(1, pc)?;
            single(Instruction::Branch { cond, rs1: Reg::ZERO, rs2: ops.reg(0)?, offset })
        }
        "bgt" | "ble" | "bgtu" | "bleu" => {
            ops.expect(3)?;
            // bgt a, b => blt b, a   ble a, b => bge b, a  (and unsigned variants)
            let cond = match mnemonic {
                "bgt" => BranchCond::Lt,
                "ble" => BranchCond::Ge,
                "bgtu" => BranchCond::Ltu,
                _ => BranchCond::Geu,
            };
            let offset = ops.branch_offset(2, pc)?;
            single(Instruction::Branch { cond, rs1: ops.reg(1)?, rs2: ops.reg(0)?, offset })
        }

        // --- jumps --------------------------------------------------------------------
        "jal" => match operands.len() {
            1 => single(Instruction::Jal { rd: Reg::RA, offset: ops.jump_offset(0, pc)? }),
            2 => single(Instruction::Jal { rd: ops.reg(0)?, offset: ops.jump_offset(1, pc)? }),
            n => Err(err(line, format!("jal expects 1 or 2 operands, found {n}"))),
        },
        "j" => {
            ops.expect(1)?;
            single(Instruction::Jal { rd: Reg::ZERO, offset: ops.jump_offset(0, pc)? })
        }
        "call" => {
            ops.expect(1)?;
            single(Instruction::Jal { rd: Reg::RA, offset: ops.jump_offset(0, pc)? })
        }
        "tail" => {
            ops.expect(1)?;
            single(Instruction::Jal { rd: Reg::ZERO, offset: ops.jump_offset(0, pc)? })
        }
        "jalr" => match operands.len() {
            1 => single(Instruction::Jalr { rd: Reg::RA, rs1: ops.reg(0)?, offset: 0 }),
            2 => single(Instruction::Jalr { rd: ops.reg(0)?, rs1: ops.reg(1)?, offset: 0 }),
            3 => {
                let imm = ops.imm(2)?;
                if !fits_i12(imm) {
                    return Err(err(line, format!("jalr offset {imm} does not fit in 12 bits")));
                }
                single(Instruction::Jalr { rd: ops.reg(0)?, rs1: ops.reg(1)?, offset: imm as i32 })
            }
            n => Err(err(line, format!("jalr expects 1-3 operands, found {n}"))),
        },
        "jr" => {
            ops.expect(1)?;
            single(Instruction::Jalr { rd: Reg::ZERO, rs1: ops.reg(0)?, offset: 0 })
        }
        "ret" => {
            ops.expect(0)?;
            single(Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 })
        }

        // --- other pseudo-instructions --------------------------------------------------
        "nop" => single(Instruction::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            imm: 0,
        }),
        "mv" => {
            ops.expect(2)?;
            single(Instruction::AluImm {
                op: AluImmOp::Addi,
                rd: ops.reg(0)?,
                rs1: ops.reg(1)?,
                imm: 0,
            })
        }
        "not" => {
            ops.expect(2)?;
            single(Instruction::AluImm {
                op: AluImmOp::Xori,
                rd: ops.reg(0)?,
                rs1: ops.reg(1)?,
                imm: -1,
            })
        }
        "neg" => {
            ops.expect(2)?;
            single(Instruction::Alu {
                op: AluOp::Sub,
                rd: ops.reg(0)?,
                rs1: Reg::ZERO,
                rs2: ops.reg(1)?,
            })
        }
        "seqz" => {
            ops.expect(2)?;
            single(Instruction::AluImm {
                op: AluImmOp::Sltiu,
                rd: ops.reg(0)?,
                rs1: ops.reg(1)?,
                imm: 1,
            })
        }
        "snez" => {
            ops.expect(2)?;
            single(Instruction::Alu {
                op: AluOp::Sltu,
                rd: ops.reg(0)?,
                rs1: Reg::ZERO,
                rs2: ops.reg(1)?,
            })
        }
        "li" => {
            ops.expect(2)?;
            let imm = ops.imm(1)?;
            Ok(load_immediate(ops.reg(0)?, imm))
        }
        "la" => {
            ops.expect(2)?;
            let addr = ops.imm(1)?;
            let mut seq = load_immediate(ops.reg(0)?, addr);
            // `la` always occupies 8 bytes (see pass 1); pad with the addi form.
            if seq.len() == 1 {
                let rd = ops.reg(0)?;
                seq = vec![
                    Instruction::Lui { rd, imm: lui_upper(addr) },
                    Instruction::AluImm { op: AluImmOp::Addi, rd, rs1: rd, imm: addi_lower(addr) },
                ];
            }
            Ok(seq)
        }

        // --- upper-immediate instructions ------------------------------------------------
        "lui" | "auipc" => {
            ops.expect(2)?;
            let upper = ops.imm(1)?;
            if !(0..=0xf_ffff).contains(&upper) {
                return Err(err(
                    line,
                    format!("{mnemonic} immediate {upper} out of range 0..=0xfffff"),
                ));
            }
            let rd = ops.reg(0)?;
            let imm = upper << 12;
            let imm = imm as u32 as i32;
            if mnemonic == "lui" {
                single(Instruction::Lui { rd, imm })
            } else {
                single(Instruction::Auipc { rd, imm })
            }
        }

        // --- system ----------------------------------------------------------------------
        "ecall" => single(Instruction::Ecall),
        "ebreak" => single(Instruction::Ebreak),
        "fence" => single(Instruction::Fence),

        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

fn branch_cond(mnemonic: &str) -> BranchCond {
    match mnemonic {
        "beq" => BranchCond::Eq,
        "bne" => BranchCond::Ne,
        "blt" => BranchCond::Lt,
        "bge" => BranchCond::Ge,
        "bltu" => BranchCond::Ltu,
        _ => BranchCond::Geu,
    }
}

fn fits_i12(value: i64) -> bool {
    (-2048..=2047).contains(&value)
}

fn lui_upper(value: i64) -> i32 {
    let value = value as i32;
    let upper = (value.wrapping_add(0x800) as u32) & 0xffff_f000;
    upper as i32
}

fn addi_lower(value: i64) -> i32 {
    let value = value as i32;
    value.wrapping_sub(lui_upper(value as i64))
}

/// Expands `li rd, imm` into one or two instructions.
fn load_immediate(rd: Reg, imm: i64) -> Vec<Instruction> {
    if fits_i12(imm) {
        vec![Instruction::AluImm { op: AluImmOp::Addi, rd, rs1: Reg::ZERO, imm: imm as i32 }]
    } else {
        vec![
            Instruction::Lui { rd, imm: lui_upper(imm) },
            Instruction::AluImm { op: AluImmOp::Addi, rd, rs1: rd, imm: addi_lower(imm) },
        ]
    }
}

/// Helper for reading typed operands with consistent error reporting.
struct OperandReader<'a> {
    operands: &'a [Operand],
    line: usize,
    ctx: &'a EmitContext<'a>,
}

impl OperandReader<'_> {
    fn expect(&self, count: usize) -> Result<(), Rv32Error> {
        if self.operands.len() == count {
            Ok(())
        } else {
            Err(err(self.line, format!("expected {count} operands, found {}", self.operands.len())))
        }
    }

    fn reg(&self, index: usize) -> Result<Reg, Rv32Error> {
        match self.operands.get(index) {
            Some(Operand::Reg(reg)) => Ok(*reg),
            other => {
                Err(err(self.line, format!("operand {index} must be a register, found {other:?}")))
            }
        }
    }

    fn imm(&self, index: usize) -> Result<i64, Rv32Error> {
        match self.operands.get(index) {
            Some(op @ (Operand::Literal(_) | Operand::Symbol(_))) => {
                self.ctx.resolve(op, self.line)
            }
            other => Err(err(
                self.line,
                format!("operand {index} must be an immediate, found {other:?}"),
            )),
        }
    }

    fn memory(&self, index: usize) -> Result<(i64, Reg), Rv32Error> {
        match self.operands.get(index) {
            Some(Operand::Memory { offset, base }) => {
                let offset = self.ctx.resolve(offset, self.line)?;
                if !fits_i12(offset) {
                    return Err(err(
                        self.line,
                        format!("memory offset {offset} does not fit in 12 bits"),
                    ));
                }
                Ok((offset, *base))
            }
            other => Err(err(
                self.line,
                format!("operand {index} must be a memory operand `offset(reg)`, found {other:?}"),
            )),
        }
    }

    /// Branch target → PC-relative offset with range/alignment checks.
    fn branch_offset(&self, index: usize, pc: u32) -> Result<i32, Rv32Error> {
        let target = self.imm(index)?;
        let offset = target - i64::from(pc);
        if offset % 2 != 0 {
            return Err(err(self.line, format!("branch target {target:#x} is misaligned")));
        }
        if !(-4096..=4094).contains(&offset) {
            return Err(err(self.line, format!("branch offset {offset} out of ±4 KiB range")));
        }
        Ok(offset as i32)
    }

    /// Jump target → PC-relative offset with range/alignment checks.
    fn jump_offset(&self, index: usize, pc: u32) -> Result<i32, Rv32Error> {
        let target = self.imm(index)?;
        let offset = target - i64::from(pc);
        if offset % 2 != 0 {
            return Err(err(self.line, format!("jump target {target:#x} is misaligned")));
        }
        if !(-1_048_576..=1_048_574).contains(&offset) {
            return Err(err(self.line, format!("jump offset {offset} out of ±1 MiB range")));
        }
        Ok(offset as i32)
    }
}

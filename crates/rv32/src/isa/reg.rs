//! RV32 integer registers.

use std::fmt;

/// One of the 32 RV32 integer registers.
///
/// The newtype guarantees the register index is always in `0..32` and provides the
/// standard ABI names used by the assembler and disassembler.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// The return-address (link) register `x1`/`ra`.
    pub const RA: Reg = Reg(1);
    /// The stack pointer `x2`/`sp`.
    pub const SP: Reg = Reg(2);
    /// The global pointer `x3`/`gp`.
    pub const GP: Reg = Reg(3);
    /// The thread pointer `x4`/`tp`.
    pub const TP: Reg = Reg(4);
    /// Temporary `t0`/`x5` — the alternate link register of the RISC-V ABI.
    pub const T0: Reg = Reg(5);
    /// Argument/return register `a0`/`x10`.
    pub const A0: Reg = Reg(10);
    /// Argument register `a1`/`x11`.
    pub const A1: Reg = Reg(11);
    /// Argument register `a7`/`x17` (system-call number by convention).
    pub const A7: Reg = Reg(17);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "register index out of range");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` when out of range.
    pub fn try_new(index: u8) -> Option<Self> {
        (index < 32).then_some(Reg(index))
    }

    /// Returns the register index in `0..32`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Returns `true` for the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if this register is a link register per the RISC-V calling
    /// convention (`ra`/`x1` or the alternate link register `t0`/`x5`).
    ///
    /// The LO-FAT branch filter uses this property to distinguish subroutine calls
    /// from plain jumps when detecting loops (§5.1).
    pub fn is_link(self) -> bool {
        self.0 == 1 || self.0 == 5
    }

    /// Returns the ABI name (`zero`, `ra`, `sp`, `a0`, …).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.index()]
    }

    /// Parses a register name: either `x<N>` or an ABI name (including `fp` for `s0`).
    pub fn parse(name: &str) -> Option<Self> {
        let name = name.trim();
        if let Some(num) = name.strip_prefix('x') {
            if let Ok(idx) = num.parse::<u8>() {
                return Reg::try_new(idx);
            }
        }
        if name == "fp" {
            return Some(Reg(8));
        }
        (0u8..32).map(Reg).find(|r| r.abi_name() == name)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_roundtrip_through_parse() {
        for idx in 0..32u8 {
            let reg = Reg::new(idx);
            assert_eq!(Reg::parse(reg.abi_name()), Some(reg));
            assert_eq!(Reg::parse(&format!("x{idx}")), Some(reg));
        }
    }

    #[test]
    fn fp_is_s0() {
        assert_eq!(Reg::parse("fp"), Reg::parse("s0"));
        assert_eq!(Reg::parse("fp").unwrap().index(), 8);
    }

    #[test]
    fn link_registers() {
        assert!(Reg::RA.is_link());
        assert!(Reg::T0.is_link());
        assert!(!Reg::A0.is_link());
        assert!(!Reg::ZERO.is_link());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Reg::try_new(32).is_none());
        assert!(Reg::parse("x32").is_none());
        assert!(Reg::parse("bogus").is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(40);
    }

    #[test]
    fn display_uses_abi_name() {
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(Reg::ZERO.to_string(), "zero");
    }
}

//! The RV32IM instruction set: registers, instruction representation, binary
//! encode/decode and disassembly.
//!
//! The representation is deliberately structured by *format class* (ALU, ALU-immediate,
//! load, store, branch, …) rather than one enum variant per mnemonic: the LO-FAT branch
//! filter and the CFG analysis only ever dispatch on the class and on a handful of
//! operand properties (does it link? is it backward? is it indirect?), so the grouped
//! shape keeps that logic small and exhaustive.

mod instruction;
mod reg;

pub use instruction::{
    AluImmOp, AluOp, BranchCond, Instruction, LoadWidth, StoreWidth, OPCODE_BRANCH, OPCODE_JAL,
    OPCODE_JALR,
};
pub use reg::Reg;

//! RV32IM instruction representation, binary encoding and decoding.

use super::reg::Reg;
use crate::error::Rv32Error;
use std::fmt;

/// Major opcode of conditional branches.
pub const OPCODE_BRANCH: u32 = 0b110_0011;
/// Major opcode of `jal`.
pub const OPCODE_JAL: u32 = 0b110_1111;
/// Major opcode of `jalr`.
pub const OPCODE_JALR: u32 = 0b110_0111;

const OPCODE_OP: u32 = 0b011_0011;
const OPCODE_OP_IMM: u32 = 0b001_0011;
const OPCODE_LOAD: u32 = 0b000_0011;
const OPCODE_STORE: u32 = 0b010_0011;
const OPCODE_LUI: u32 = 0b011_0111;
const OPCODE_AUIPC: u32 = 0b001_0111;
const OPCODE_SYSTEM: u32 = 0b111_0011;
const OPCODE_MISC_MEM: u32 = 0b000_1111;

/// Register-register ALU operations (RV32I `OP` plus the M extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    // M extension
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

impl AluOp {
    fn funct3(self) -> u32 {
        match self {
            AluOp::Add | AluOp::Sub | AluOp::Mul => 0b000,
            AluOp::Sll | AluOp::Mulh => 0b001,
            AluOp::Slt | AluOp::Mulhsu => 0b010,
            AluOp::Sltu | AluOp::Mulhu => 0b011,
            AluOp::Xor | AluOp::Div => 0b100,
            AluOp::Srl | AluOp::Sra | AluOp::Divu => 0b101,
            AluOp::Or | AluOp::Rem => 0b110,
            AluOp::And | AluOp::Remu => 0b111,
        }
    }

    fn funct7(self) -> u32 {
        match self {
            AluOp::Sub | AluOp::Sra => 0b010_0000,
            AluOp::Mul
            | AluOp::Mulh
            | AluOp::Mulhsu
            | AluOp::Mulhu
            | AluOp::Div
            | AluOp::Divu
            | AluOp::Rem
            | AluOp::Remu => 0b000_0001,
            _ => 0,
        }
    }

    /// Mnemonic as it appears in assembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Mulhsu => "mulhsu",
            AluOp::Mulhu => "mulhu",
            AluOp::Div => "div",
            AluOp::Divu => "divu",
            AluOp::Rem => "rem",
            AluOp::Remu => "remu",
        }
    }

    fn from_functs(funct3: u32, funct7: u32) -> Option<Self> {
        match (funct7, funct3) {
            (0b000_0000, 0b000) => Some(AluOp::Add),
            (0b010_0000, 0b000) => Some(AluOp::Sub),
            (0b000_0000, 0b001) => Some(AluOp::Sll),
            (0b000_0000, 0b010) => Some(AluOp::Slt),
            (0b000_0000, 0b011) => Some(AluOp::Sltu),
            (0b000_0000, 0b100) => Some(AluOp::Xor),
            (0b000_0000, 0b101) => Some(AluOp::Srl),
            (0b010_0000, 0b101) => Some(AluOp::Sra),
            (0b000_0000, 0b110) => Some(AluOp::Or),
            (0b000_0000, 0b111) => Some(AluOp::And),
            (0b000_0001, 0b000) => Some(AluOp::Mul),
            (0b000_0001, 0b001) => Some(AluOp::Mulh),
            (0b000_0001, 0b010) => Some(AluOp::Mulhsu),
            (0b000_0001, 0b011) => Some(AluOp::Mulhu),
            (0b000_0001, 0b100) => Some(AluOp::Div),
            (0b000_0001, 0b101) => Some(AluOp::Divu),
            (0b000_0001, 0b110) => Some(AluOp::Rem),
            (0b000_0001, 0b111) => Some(AluOp::Remu),
            _ => None,
        }
    }
}

/// Register-immediate ALU operations (RV32I `OP-IMM`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum AluImmOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
}

impl AluImmOp {
    fn funct3(self) -> u32 {
        match self {
            AluImmOp::Addi => 0b000,
            AluImmOp::Slti => 0b010,
            AluImmOp::Sltiu => 0b011,
            AluImmOp::Xori => 0b100,
            AluImmOp::Ori => 0b110,
            AluImmOp::Andi => 0b111,
            AluImmOp::Slli => 0b001,
            AluImmOp::Srli | AluImmOp::Srai => 0b101,
        }
    }

    /// Mnemonic as it appears in assembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Xori => "xori",
            AluImmOp::Ori => "ori",
            AluImmOp::Andi => "andi",
            AluImmOp::Slli => "slli",
            AluImmOp::Srli => "srli",
            AluImmOp::Srai => "srai",
        }
    }
}

/// Load access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum LoadWidth {
    Byte,
    Half,
    Word,
    ByteUnsigned,
    HalfUnsigned,
}

impl LoadWidth {
    fn funct3(self) -> u32 {
        match self {
            LoadWidth::Byte => 0b000,
            LoadWidth::Half => 0b001,
            LoadWidth::Word => 0b010,
            LoadWidth::ByteUnsigned => 0b100,
            LoadWidth::HalfUnsigned => 0b101,
        }
    }

    /// Mnemonic as it appears in assembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            LoadWidth::Byte => "lb",
            LoadWidth::Half => "lh",
            LoadWidth::Word => "lw",
            LoadWidth::ByteUnsigned => "lbu",
            LoadWidth::HalfUnsigned => "lhu",
        }
    }

    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            LoadWidth::Byte | LoadWidth::ByteUnsigned => 1,
            LoadWidth::Half | LoadWidth::HalfUnsigned => 2,
            LoadWidth::Word => 4,
        }
    }
}

/// Store access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum StoreWidth {
    Byte,
    Half,
    Word,
}

impl StoreWidth {
    fn funct3(self) -> u32 {
        match self {
            StoreWidth::Byte => 0b000,
            StoreWidth::Half => 0b001,
            StoreWidth::Word => 0b010,
        }
    }

    /// Mnemonic as it appears in assembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            StoreWidth::Byte => "sb",
            StoreWidth::Half => "sh",
            StoreWidth::Word => "sw",
        }
    }

    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            StoreWidth::Byte => 1,
            StoreWidth::Half => 2,
            StoreWidth::Word => 4,
        }
    }
}

/// Conditional-branch comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BranchCond {
    fn funct3(self) -> u32 {
        match self {
            BranchCond::Eq => 0b000,
            BranchCond::Ne => 0b001,
            BranchCond::Lt => 0b100,
            BranchCond::Ge => 0b101,
            BranchCond::Ltu => 0b110,
            BranchCond::Geu => 0b111,
        }
    }

    /// Mnemonic as it appears in assembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }

    /// Evaluates the condition on two register values.
    pub fn evaluate(self, lhs: u32, rhs: u32) -> bool {
        match self {
            BranchCond::Eq => lhs == rhs,
            BranchCond::Ne => lhs != rhs,
            BranchCond::Lt => (lhs as i32) < (rhs as i32),
            BranchCond::Ge => (lhs as i32) >= (rhs as i32),
            BranchCond::Ltu => lhs < rhs,
            BranchCond::Geu => lhs >= rhs,
        }
    }
}

/// A decoded RV32IM instruction.
///
/// Immediates are stored sign-extended as `i32` (shift amounts as their 5-bit value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Instruction {
    /// Register-register ALU operation (`add`, `sub`, …, `mul`, `rem`).
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// Register-immediate ALU operation (`addi`, `andi`, `slli`, …).
    AluImm {
        /// Operation.
        op: AluImmOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Sign-extended immediate (shift amount for shifts).
        imm: i32,
    },
    /// Memory load.
    Load {
        /// Access width / signedness.
        width: LoadWidth,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Sign-extended byte offset.
        offset: i32,
    },
    /// Memory store.
    Store {
        /// Access width.
        width: StoreWidth,
        /// Value register.
        rs2: Reg,
        /// Base address register.
        rs1: Reg,
        /// Sign-extended byte offset.
        offset: i32,
    },
    /// Conditional branch, PC-relative.
    Branch {
        /// Comparison condition.
        cond: BranchCond,
        /// First comparison register.
        rs1: Reg,
        /// Second comparison register.
        rs2: Reg,
        /// Sign-extended byte offset from the branch instruction.
        offset: i32,
    },
    /// Load upper immediate.
    Lui {
        /// Destination register.
        rd: Reg,
        /// The 20-bit immediate, already shifted into bits 31:12.
        imm: i32,
    },
    /// Add upper immediate to PC.
    Auipc {
        /// Destination register.
        rd: Reg,
        /// The 20-bit immediate, already shifted into bits 31:12.
        imm: i32,
    },
    /// Jump and link (direct, PC-relative).
    Jal {
        /// Link register (x0 for plain jumps).
        rd: Reg,
        /// Sign-extended byte offset from the jump instruction.
        offset: i32,
    },
    /// Jump and link register (indirect).
    Jalr {
        /// Link register (x0 for plain indirect jumps / returns).
        rd: Reg,
        /// Base register holding the target address.
        rs1: Reg,
        /// Sign-extended byte offset.
        offset: i32,
    },
    /// Environment call (used by the simulator for program exit and host services).
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// Memory fence (modelled as a no-op by the in-order core).
    Fence,
}

impl Instruction {
    /// Encodes the instruction into its 32-bit binary representation.
    pub fn encode(&self) -> u32 {
        match *self {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                encode_r(OPCODE_OP, rd, op.funct3(), rs1, rs2, op.funct7())
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let imm = match op {
                    AluImmOp::Slli | AluImmOp::Srli => imm & 0x1f,
                    AluImmOp::Srai => (imm & 0x1f) | (0b010_0000 << 5),
                    _ => imm & 0xfff,
                };
                encode_i(OPCODE_OP_IMM, rd, op.funct3(), rs1, imm)
            }
            Instruction::Load { width, rd, rs1, offset } => {
                encode_i(OPCODE_LOAD, rd, width.funct3(), rs1, offset & 0xfff)
            }
            Instruction::Store { width, rs2, rs1, offset } => {
                encode_s(OPCODE_STORE, width.funct3(), rs1, rs2, offset)
            }
            Instruction::Branch { cond, rs1, rs2, offset } => {
                encode_b(OPCODE_BRANCH, cond.funct3(), rs1, rs2, offset)
            }
            Instruction::Lui { rd, imm } => encode_u(OPCODE_LUI, rd, imm),
            Instruction::Auipc { rd, imm } => encode_u(OPCODE_AUIPC, rd, imm),
            Instruction::Jal { rd, offset } => encode_j(OPCODE_JAL, rd, offset),
            Instruction::Jalr { rd, rs1, offset } => {
                encode_i(OPCODE_JALR, rd, 0b000, rs1, offset & 0xfff)
            }
            Instruction::Ecall => OPCODE_SYSTEM,
            Instruction::Ebreak => OPCODE_SYSTEM | (1 << 20),
            Instruction::Fence => OPCODE_MISC_MEM,
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`Rv32Error::DecodeInvalid`] for encodings outside the supported
    /// RV32IM subset; `pc` is only used for error reporting.
    pub fn decode(word: u32, pc: u32) -> Result<Self, Rv32Error> {
        let opcode = word & 0x7f;
        let rd = Reg::new(((word >> 7) & 0x1f) as u8);
        let rs1 = Reg::new(((word >> 15) & 0x1f) as u8);
        let rs2 = Reg::new(((word >> 20) & 0x1f) as u8);
        let funct3 = (word >> 12) & 0x7;
        let funct7 = (word >> 25) & 0x7f;
        let invalid = || Rv32Error::DecodeInvalid { pc, word };

        let inst = match opcode {
            OPCODE_OP => {
                let op = AluOp::from_functs(funct3, funct7).ok_or_else(invalid)?;
                Instruction::Alu { op, rd, rs1, rs2 }
            }
            OPCODE_OP_IMM => {
                let imm = imm_i(word);
                let op = match funct3 {
                    0b000 => AluImmOp::Addi,
                    0b010 => AluImmOp::Slti,
                    0b011 => AluImmOp::Sltiu,
                    0b100 => AluImmOp::Xori,
                    0b110 => AluImmOp::Ori,
                    0b111 => AluImmOp::Andi,
                    0b001 => {
                        // SLLI reserves the funct7 field: only 0b000_0000 is RV32I.
                        if funct7 != 0 {
                            return Err(invalid());
                        }
                        AluImmOp::Slli
                    }
                    0b101 => {
                        if funct7 == 0b010_0000 {
                            AluImmOp::Srai
                        } else if funct7 == 0 {
                            AluImmOp::Srli
                        } else {
                            return Err(invalid());
                        }
                    }
                    _ => return Err(invalid()),
                };
                let imm = match op {
                    AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai => imm & 0x1f,
                    _ => imm,
                };
                Instruction::AluImm { op, rd, rs1, imm }
            }
            OPCODE_LOAD => {
                let width = match funct3 {
                    0b000 => LoadWidth::Byte,
                    0b001 => LoadWidth::Half,
                    0b010 => LoadWidth::Word,
                    0b100 => LoadWidth::ByteUnsigned,
                    0b101 => LoadWidth::HalfUnsigned,
                    _ => return Err(invalid()),
                };
                Instruction::Load { width, rd, rs1, offset: imm_i(word) }
            }
            OPCODE_STORE => {
                let width = match funct3 {
                    0b000 => StoreWidth::Byte,
                    0b001 => StoreWidth::Half,
                    0b010 => StoreWidth::Word,
                    _ => return Err(invalid()),
                };
                Instruction::Store { width, rs2, rs1, offset: imm_s(word) }
            }
            OPCODE_BRANCH => {
                let cond = match funct3 {
                    0b000 => BranchCond::Eq,
                    0b001 => BranchCond::Ne,
                    0b100 => BranchCond::Lt,
                    0b101 => BranchCond::Ge,
                    0b110 => BranchCond::Ltu,
                    0b111 => BranchCond::Geu,
                    _ => return Err(invalid()),
                };
                Instruction::Branch { cond, rs1, rs2, offset: imm_b(word) }
            }
            OPCODE_LUI => Instruction::Lui { rd, imm: (word & 0xffff_f000) as i32 },
            OPCODE_AUIPC => Instruction::Auipc { rd, imm: (word & 0xffff_f000) as i32 },
            OPCODE_JAL => Instruction::Jal { rd, offset: imm_j(word) },
            OPCODE_JALR => {
                if funct3 != 0 {
                    return Err(invalid());
                }
                Instruction::Jalr { rd, rs1, offset: imm_i(word) }
            }
            // ECALL/EBREAK are single exact encodings: rd, funct3 and rs1
            // must all be zero, so anything but the two canonical words is
            // reserved (previously the high-bit check alone let e.g.
            // `ecall` with a nonzero rd alias to Ecall).
            OPCODE_SYSTEM => match word {
                0x0000_0073 => Instruction::Ecall,
                0x0010_0073 => Instruction::Ebreak,
                _ => return Err(invalid()),
            },
            // FENCE is funct3 = 0 (the fm/pred/succ hint bits are ignored by
            // the in-order core); FENCE.I (funct3 = 1) and the other MISC-MEM
            // encodings are outside the supported subset.
            OPCODE_MISC_MEM => {
                if funct3 != 0 {
                    return Err(invalid());
                }
                Instruction::Fence
            }
            _ => return Err(invalid()),
        };
        Ok(inst)
    }

    /// Returns `true` for instructions that can redirect control flow
    /// (conditional branches, `jal`, `jalr`).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instruction::Branch { .. } | Instruction::Jal { .. } | Instruction::Jalr { .. }
        )
    }

    /// Returns `true` if the instruction writes a link register when jumping,
    /// i.e. it is a subroutine call in the RISC-V calling convention.
    pub fn is_linking(&self) -> bool {
        match self {
            Instruction::Jal { rd, .. } | Instruction::Jalr { rd, .. } => rd.is_link(),
            _ => false,
        }
    }

    /// Returns `true` for `jalr` instructions that look like function returns
    /// (`jalr x0, ra/t0, 0`).
    pub fn is_return(&self) -> bool {
        matches!(
            self,
            Instruction::Jalr { rd, rs1, .. } if rd.is_zero() && rs1.is_link()
        )
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {}, {}, {}", op.mnemonic(), rd, rs1, rs2)
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                write!(f, "{} {}, {}, {}", op.mnemonic(), rd, rs1, imm)
            }
            Instruction::Load { width, rd, rs1, offset } => {
                write!(f, "{} {}, {}({})", width.mnemonic(), rd, offset, rs1)
            }
            Instruction::Store { width, rs2, rs1, offset } => {
                write!(f, "{} {}, {}({})", width.mnemonic(), rs2, offset, rs1)
            }
            Instruction::Branch { cond, rs1, rs2, offset } => {
                write!(f, "{} {}, {}, {}", cond.mnemonic(), rs1, rs2, offset)
            }
            Instruction::Lui { rd, imm } => write!(f, "lui {}, {:#x}", rd, (imm as u32) >> 12),
            Instruction::Auipc { rd, imm } => write!(f, "auipc {}, {:#x}", rd, (imm as u32) >> 12),
            Instruction::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instruction::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {rs1}, {offset}"),
            Instruction::Ecall => write!(f, "ecall"),
            Instruction::Ebreak => write!(f, "ebreak"),
            Instruction::Fence => write!(f, "fence"),
        }
    }
}

fn encode_r(opcode: u32, rd: Reg, funct3: u32, rs1: Reg, rs2: Reg, funct7: u32) -> u32 {
    opcode
        | ((rd.index() as u32) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (funct7 << 25)
}

fn encode_i(opcode: u32, rd: Reg, funct3: u32, rs1: Reg, imm: i32) -> u32 {
    opcode
        | ((rd.index() as u32) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | (((imm as u32) & 0xfff) << 20)
}

fn encode_s(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, offset: i32) -> u32 {
    let imm = offset as u32;
    opcode
        | ((imm & 0x1f) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (((imm >> 5) & 0x7f) << 25)
}

fn encode_b(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, offset: i32) -> u32 {
    let imm = offset as u32;
    opcode
        | (((imm >> 11) & 0x1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 0x1) << 31)
}

fn encode_u(opcode: u32, rd: Reg, imm: i32) -> u32 {
    opcode | ((rd.index() as u32) << 7) | ((imm as u32) & 0xffff_f000)
}

fn encode_j(opcode: u32, rd: Reg, offset: i32) -> u32 {
    let imm = offset as u32;
    opcode
        | ((rd.index() as u32) << 7)
        | (((imm >> 12) & 0xff) << 12)
        | (((imm >> 11) & 0x1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 0x1) << 31)
}

fn imm_i(word: u32) -> i32 {
    (word as i32) >> 20
}

fn imm_s(word: u32) -> i32 {
    let hi = ((word as i32) >> 25) << 5;
    let lo = ((word >> 7) & 0x1f) as i32;
    hi | lo
}

fn imm_b(word: u32) -> i32 {
    let sign = ((word as i32) >> 31) << 12;
    let b11 = (((word >> 7) & 0x1) << 11) as i32;
    let b10_5 = (((word >> 25) & 0x3f) << 5) as i32;
    let b4_1 = (((word >> 8) & 0xf) << 1) as i32;
    sign | b11 | b10_5 | b4_1
}

fn imm_j(word: u32) -> i32 {
    let sign = ((word as i32) >> 31) << 20;
    let b19_12 = (((word >> 12) & 0xff) << 12) as i32;
    let b11 = (((word >> 20) & 0x1) << 11) as i32;
    let b10_1 = (((word >> 21) & 0x3ff) << 1) as i32;
    sign | b19_12 | b11 | b10_1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Instruction) {
        let word = inst.encode();
        let decoded = Instruction::decode(word, 0).expect("decode");
        assert_eq!(inst, decoded, "word {word:#010x}");
    }

    #[test]
    fn alu_roundtrips() {
        let ops = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
            AluOp::Mul,
            AluOp::Mulh,
            AluOp::Mulhsu,
            AluOp::Mulhu,
            AluOp::Div,
            AluOp::Divu,
            AluOp::Rem,
            AluOp::Remu,
        ];
        for op in ops {
            roundtrip(Instruction::Alu { op, rd: Reg::new(5), rs1: Reg::new(6), rs2: Reg::new(7) });
        }
    }

    #[test]
    fn alu_imm_roundtrips() {
        let ops = [
            (AluImmOp::Addi, -2048),
            (AluImmOp::Addi, 2047),
            (AluImmOp::Slti, -1),
            (AluImmOp::Sltiu, 100),
            (AluImmOp::Xori, -1),
            (AluImmOp::Ori, 0x7ff),
            (AluImmOp::Andi, 0xff),
            (AluImmOp::Slli, 31),
            (AluImmOp::Srli, 1),
            (AluImmOp::Srai, 17),
        ];
        for (op, imm) in ops {
            roundtrip(Instruction::AluImm { op, rd: Reg::new(1), rs1: Reg::new(2), imm });
        }
    }

    #[test]
    fn memory_roundtrips() {
        for width in [
            LoadWidth::Byte,
            LoadWidth::Half,
            LoadWidth::Word,
            LoadWidth::ByteUnsigned,
            LoadWidth::HalfUnsigned,
        ] {
            roundtrip(Instruction::Load { width, rd: Reg::new(3), rs1: Reg::new(4), offset: -16 });
        }
        for width in [StoreWidth::Byte, StoreWidth::Half, StoreWidth::Word] {
            roundtrip(Instruction::Store {
                width,
                rs2: Reg::new(8),
                rs1: Reg::new(2),
                offset: 2047,
            });
        }
    }

    #[test]
    fn branch_and_jump_roundtrips() {
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Ltu,
            BranchCond::Geu,
        ] {
            roundtrip(Instruction::Branch {
                cond,
                rs1: Reg::new(10),
                rs2: Reg::new(11),
                offset: -4096,
            });
            roundtrip(Instruction::Branch {
                cond,
                rs1: Reg::new(0),
                rs2: Reg::new(31),
                offset: 4094,
            });
        }
        roundtrip(Instruction::Jal { rd: Reg::RA, offset: -1048576 });
        roundtrip(Instruction::Jal { rd: Reg::ZERO, offset: 1048574 });
        roundtrip(Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 });
        roundtrip(Instruction::Jalr { rd: Reg::RA, rs1: Reg::new(6), offset: -4 });
    }

    #[test]
    fn upper_imm_and_system_roundtrips() {
        roundtrip(Instruction::Lui { rd: Reg::new(15), imm: 0x12345 << 12 });
        roundtrip(Instruction::Auipc { rd: Reg::new(15), imm: (0xfffff_u32 << 12) as i32 });
        roundtrip(Instruction::Ecall);
        roundtrip(Instruction::Ebreak);
        roundtrip(Instruction::Fence);
    }

    #[test]
    fn known_encoding_addi() {
        // addi sp, sp, -16  =>  0xff010113 (standard example from the paper's Fig. 3 listing)
        let inst = Instruction::AluImm { op: AluImmOp::Addi, rd: Reg::SP, rs1: Reg::SP, imm: -16 };
        assert_eq!(inst.encode(), 0xff01_0113);
    }

    #[test]
    fn known_encoding_sw_and_lw() {
        // sw ra, 12(sp) => 0x00112623 ; lw ra, 12(sp) => 0x00c12083
        let sw =
            Instruction::Store { width: StoreWidth::Word, rs2: Reg::RA, rs1: Reg::SP, offset: 12 };
        assert_eq!(sw.encode(), 0x0011_2623);
        let lw =
            Instruction::Load { width: LoadWidth::Word, rd: Reg::RA, rs1: Reg::SP, offset: 12 };
        assert_eq!(lw.encode(), 0x00c1_2083);
    }

    #[test]
    fn known_encoding_ret() {
        // jalr zero, ra, 0 => 0x00008067
        let ret = Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 };
        assert_eq!(ret.encode(), 0x0000_8067);
        assert!(ret.is_return());
        assert!(!ret.is_linking());
    }

    #[test]
    fn control_flow_classification() {
        let call = Instruction::Jal { rd: Reg::RA, offset: 64 };
        assert!(call.is_control_flow() && call.is_linking() && !call.is_return());
        let jump = Instruction::Jal { rd: Reg::ZERO, offset: -8 };
        assert!(jump.is_control_flow() && !jump.is_linking());
        let add = Instruction::Alu { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, rs2: Reg::A1 };
        assert!(!add.is_control_flow());
    }

    #[test]
    fn invalid_words_rejected() {
        assert!(Instruction::decode(0xffff_ffff, 0x40).is_err());
        assert!(Instruction::decode(0x0000_0000, 0x40).is_err());
        // SYSTEM with unsupported funct12.
        assert!(Instruction::decode(OPCODE_SYSTEM | (5 << 20), 0).is_err());
    }

    #[test]
    fn branch_condition_evaluation() {
        assert!(BranchCond::Eq.evaluate(5, 5));
        assert!(BranchCond::Ne.evaluate(5, 6));
        assert!(BranchCond::Lt.evaluate((-1i32) as u32, 0));
        assert!(!BranchCond::Ltu.evaluate((-1i32) as u32, 0));
        assert!(BranchCond::Ge.evaluate(0, (-1i32) as u32));
        assert!(BranchCond::Geu.evaluate((-1i32) as u32, 7));
    }

    #[test]
    fn display_formats_reasonably() {
        let inst =
            Instruction::Load { width: LoadWidth::Word, rd: Reg::RA, rs1: Reg::SP, offset: 12 };
        assert_eq!(inst.to_string(), "lw ra, 12(sp)");
        let inst =
            Instruction::Branch { cond: BranchCond::Ne, rs1: Reg::T0, rs2: Reg::ZERO, offset: -8 };
        assert_eq!(inst.to_string(), "bne t0, zero, -8");
    }
}

//! The per-retired-instruction trace port.
//!
//! LO-FAT's branch filter is "tightly coupled to the processor" and "extracts the
//! current program counter and instruction executed per clock cycle" (§4).  The CPU
//! model reproduces that interface: every retired instruction is reported to a
//! [`TraceSink`] as a [`RetiredInst`], carrying the branch outcome needed by the
//! path encoder (taken/not-taken) and the properties the branch filter dispatches on
//! (linking? indirect? backward?).

use crate::isa::Instruction;

/// Classification of a retired control-flow instruction, as seen by the branch filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BranchKind {
    /// A conditional branch (`beq`, `bne`, …).
    Conditional,
    /// A direct jump without linking (`jal x0` / pseudo `j`).
    DirectJump,
    /// A direct call (`jal` writing a link register).
    DirectCall,
    /// An indirect jump without linking (`jalr x0`, not a return).
    IndirectJump,
    /// An indirect call (`jalr` writing a link register).
    IndirectCall,
    /// A function return (`jalr x0, ra/t0, 0`).
    Return,
}

impl BranchKind {
    /// Returns `true` for kinds whose target cannot be derived statically
    /// (indirect jumps, indirect calls and returns).
    pub fn is_indirect(self) -> bool {
        matches!(self, BranchKind::IndirectJump | BranchKind::IndirectCall | BranchKind::Return)
    }

    /// Returns `true` if the instruction updates a link register (subroutine call).
    pub fn is_linking(self) -> bool {
        matches!(self, BranchKind::DirectCall | BranchKind::IndirectCall)
    }
}

/// Control-flow information attached to a retired branch/jump instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BranchInfo {
    /// Classification of the control-flow instruction.
    pub kind: BranchKind,
    /// Whether the control transfer happened (always `true` for jumps).
    pub taken: bool,
    /// The target address if taken (the fall-through address otherwise).
    pub target: u32,
}

impl BranchInfo {
    /// Returns `true` if this is a taken transfer to a lower address — the property
    /// the LO-FAT loop-detection heuristic keys on (§5.1).
    pub fn is_backward(&self, pc: u32) -> bool {
        self.taken && self.target <= pc
    }
}

/// One retired instruction as reported on the trace port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RetiredInst {
    /// Cycle (per the CPU timing model) at which the instruction retired.
    pub cycle: u64,
    /// Program counter of the instruction.
    pub pc: u32,
    /// The decoded instruction.
    pub inst: Instruction,
    /// Address of the next instruction that will execute.
    pub next_pc: u32,
    /// Branch information if the instruction is a control-flow instruction.
    pub branch: Option<BranchInfo>,
}

impl RetiredInst {
    /// Convenience accessor: `(Src, Dest)` pair of a *taken* control-flow transfer,
    /// i.e. the tuple LO-FAT hashes.
    pub fn src_dest(&self) -> Option<(u32, u32)> {
        match self.branch {
            Some(info) if info.taken => Some((self.pc, info.target)),
            _ => None,
        }
    }
}

/// Consumer of the retired-instruction stream.
///
/// The LO-FAT engine (`lofat::engine`), the C-FLAT baseline and the test utilities all
/// implement this trait; the CPU is generic over it so tracing costs nothing when the
/// sink is a no-op.
pub trait TraceSink {
    /// Called once per retired instruction, in program order.
    fn retire(&mut self, inst: &RetiredInst);
}

/// A sink that discards all events (un-attested execution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn retire(&mut self, _inst: &RetiredInst) {}
}

/// A sink that records every retired instruction (used by tests and the CFG tools).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// The recorded events, in retirement order.
    pub events: Vec<RetiredInst>,
}

impl VecSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns only the events that correspond to taken control-flow transfers.
    pub fn taken_branches(&self) -> impl Iterator<Item = &RetiredInst> {
        self.events.iter().filter(|e| e.branch.map(|b| b.taken).unwrap_or(false))
    }
}

impl TraceSink for VecSink {
    fn retire(&mut self, inst: &RetiredInst) {
        self.events.push(*inst);
    }
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn retire(&mut self, inst: &RetiredInst) {
        (**self).retire(inst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BranchCond, Reg};

    fn branch_event(pc: u32, taken: bool, target: u32) -> RetiredInst {
        RetiredInst {
            cycle: 0,
            pc,
            inst: Instruction::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::T0,
                rs2: Reg::ZERO,
                offset: (target as i64 - pc as i64) as i32,
            },
            next_pc: if taken { target } else { pc + 4 },
            branch: Some(BranchInfo { kind: BranchKind::Conditional, taken, target }),
        }
    }

    #[test]
    fn src_dest_only_for_taken_transfers() {
        let taken = branch_event(0x100, true, 0x80);
        assert_eq!(taken.src_dest(), Some((0x100, 0x80)));
        let not_taken = branch_event(0x100, false, 0x80);
        assert_eq!(not_taken.src_dest(), None);
    }

    #[test]
    fn backward_detection() {
        let info = BranchInfo { kind: BranchKind::Conditional, taken: true, target: 0x80 };
        assert!(info.is_backward(0x100));
        assert!(!info.is_backward(0x40));
        let not_taken = BranchInfo { kind: BranchKind::Conditional, taken: false, target: 0x80 };
        assert!(!not_taken.is_backward(0x100));
    }

    #[test]
    fn kind_properties() {
        assert!(BranchKind::Return.is_indirect());
        assert!(BranchKind::IndirectCall.is_indirect());
        assert!(!BranchKind::Conditional.is_indirect());
        assert!(BranchKind::DirectCall.is_linking());
        assert!(!BranchKind::Return.is_linking());
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut sink = VecSink::new();
        sink.retire(&branch_event(0x10, true, 0x4));
        sink.retire(&branch_event(0x20, false, 0x4));
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.taken_branches().count(), 1);
    }
}

//! RV32IM instruction-set simulator substrate for the LO-FAT reproduction.
//!
//! The LO-FAT prototype (Dessouky et al., DAC 2017) attaches its attestation engine
//! to the trace port of a Pulpino RV32 core: per clock cycle the engine observes the
//! retired program counter, the executed instruction and the branch outcome.  This
//! crate provides the equivalent software substrate:
//!
//! * [`isa`] — the RV32IM instruction set: registers, instruction representation,
//!   binary encode/decode and disassembly;
//! * [`asm`] — a two-pass assembler for a practical subset of the GNU `as` RISC-V
//!   syntax (labels, common directives and pseudo-instructions), used to build the
//!   evaluation workloads without an external toolchain;
//! * [`mem`] — a memory model with read-execute code and read-write data segments,
//!   matching the paper's `rx`/`rw` program-memory abstraction (Fig. 1);
//! * [`cpu`] — an in-order core model with a simple cycle-accounting model
//!   approximating the 4-stage Pulpino pipeline;
//! * [`trace`] — the per-retired-instruction trace port consumed by the LO-FAT
//!   branch filter.
//!
//! # Example
//!
//! ```
//! use lofat_rv32::asm::assemble;
//! use lofat_rv32::cpu::{Cpu, ExitReason};
//!
//! let program = assemble(
//!     r#"
//!     .text
//!     main:
//!         li   a0, 0
//!         li   t0, 5
//!     loop:
//!         add  a0, a0, t0
//!         addi t0, t0, -1
//!         bnez t0, loop
//!         ecall            # exit, result in a0
//!     "#,
//! )?;
//! let mut cpu = Cpu::new(&program)?;
//! let exit = cpu.run(10_000)?;
//! assert_eq!(exit.reason, ExitReason::Ecall);
//! assert_eq!(exit.register_a0, 15);
//! # Ok::<(), lofat_rv32::Rv32Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod disasm;
pub mod elf;
pub mod error;
pub mod isa;
pub mod mem;
pub mod program;
pub mod trace;

pub use cpu::{Cpu, CpuConfig, ExitInfo, ExitReason};
pub use error::Rv32Error;
pub use isa::{Instruction, Reg};
pub use mem::Memory;
pub use program::Program;
pub use trace::{BranchInfo, BranchKind, RetiredInst, TraceSink};

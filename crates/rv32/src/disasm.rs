//! Disassembly listings.
//!
//! The verifier and the evaluation tooling frequently need a human-readable view of
//! an assembled workload: which instruction sits at which address, where the labels
//! are, and which instructions are control-flow relevant (the ones the LO-FAT branch
//! filter will intercept).  [`listing`] renders exactly that.

use crate::isa::Instruction;
use crate::program::Program;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One line of a disassembly listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListingLine {
    /// Instruction address.
    pub addr: u32,
    /// Raw instruction word.
    pub word: u32,
    /// Decoded instruction (`None` for words that do not decode, e.g. literal pools).
    pub inst: Option<Instruction>,
    /// Labels defined at this address.
    pub labels: Vec<String>,
    /// Whether the LO-FAT branch filter would intercept this instruction.
    pub is_control_flow: bool,
}

/// Produces the structured listing of a program's code segment.
pub fn listing_lines(program: &Program) -> Vec<ListingLine> {
    let mut labels_by_addr: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for (name, &addr) in &program.symbols {
        if addr >= program.text_base && addr < program.text_end() {
            labels_by_addr.entry(addr).or_default().push(name.clone());
        }
    }
    for labels in labels_by_addr.values_mut() {
        labels.sort();
    }

    program
        .text
        .iter()
        .enumerate()
        .map(|(index, &word)| {
            let addr = program.text_base + (index as u32) * 4;
            let inst = Instruction::decode(word, addr).ok();
            ListingLine {
                addr,
                word,
                is_control_flow: inst.as_ref().map(Instruction::is_control_flow).unwrap_or(false),
                inst,
                labels: labels_by_addr.get(&addr).cloned().unwrap_or_default(),
            }
        })
        .collect()
}

/// Renders a textual disassembly listing of the whole code segment.
///
/// Control-flow instructions (the ones LO-FAT intercepts) are marked with `*`.
///
/// # Example
///
/// ```
/// use lofat_rv32::asm::assemble;
/// use lofat_rv32::disasm::listing;
///
/// let program = assemble(".text\nmain:\n    li a0, 1\n    ecall\n")?;
/// let text = listing(&program);
/// assert!(text.contains("main:"));
/// assert!(text.contains("ecall"));
/// # Ok::<(), lofat_rv32::Rv32Error>(())
/// ```
pub fn listing(program: &Program) -> String {
    let mut out = String::new();
    for line in listing_lines(program) {
        for label in &line.labels {
            let _ = writeln!(out, "{label}:");
        }
        let marker = if line.is_control_flow { '*' } else { ' ' };
        match &line.inst {
            Some(inst) => {
                let _ = writeln!(out, "  {:#010x}: {:08x} {marker} {inst}", line.addr, line.word);
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {:#010x}: {:08x} {marker} .word {:#x}",
                    line.addr, line.word, line.word
                );
            }
        }
    }
    out
}

/// Counts the control-flow instructions of a program — the number of sites the
/// LO-FAT branch filter watches (and the number of sites C-FLAT would instrument).
pub fn control_flow_sites(program: &Program) -> usize {
    program.iter_instructions().filter(|(_, inst)| inst.is_control_flow()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    const SOURCE: &str = r#"
        .text
        main:
            li   t0, 3
        loop:
            addi t0, t0, -1
            bnez t0, loop
            call helper
            ecall
        helper:
            ret
    "#;

    #[test]
    fn listing_contains_labels_addresses_and_mnemonics() {
        let program = assemble(SOURCE).unwrap();
        let text = listing(&program);
        assert!(text.contains("main:"));
        assert!(text.contains("loop:"));
        assert!(text.contains("helper:"));
        assert!(text.contains("ecall"));
        assert!(text.contains("jal"));
        // Control-flow marker appears for the branch and the call.
        assert!(text.contains("* "));
        // Every instruction appears once.
        assert_eq!(text.lines().filter(|l| l.contains(": ")).count(), program.text.len());
    }

    #[test]
    fn structured_lines_expose_control_flow_classification() {
        let program = assemble(SOURCE).unwrap();
        let lines = listing_lines(&program);
        assert_eq!(lines.len(), program.text.len());
        let cf = lines.iter().filter(|l| l.is_control_flow).count();
        // bnez + call + ret = 3 control-flow sites (ecall terminates but is not a branch).
        assert_eq!(cf, 3);
        assert_eq!(control_flow_sites(&program), 3);
        // Addresses are consecutive.
        for pair in lines.windows(2) {
            assert_eq!(pair[1].addr, pair[0].addr + 4);
        }
    }

    #[test]
    fn undecodable_words_are_rendered_as_data() {
        let program = assemble(".text\nmain:\n    ecall\n    .word 0xffffffff\n").unwrap();
        let text = listing(&program);
        assert!(text.contains(".word 0xffffffff"));
    }
}

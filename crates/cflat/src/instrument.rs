//! The software attestation run: measurement plus overhead accounting.

use crate::cost::InstrumentationCost;
use lofat_crypto::{Digest, Sha3_512};
use lofat_rv32::trace::{RetiredInst, TraceSink};
use lofat_rv32::{Cpu, ExitInfo, Program, Rv32Error};

/// Static instrumentation report: how many sites a binary rewriter would patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct InstrumentationReport {
    /// Number of control-flow instructions (rewrite sites) in the program.
    pub rewrite_sites: u64,
    /// Instructions in the original program.
    pub original_instructions: u64,
    /// Extra instructions added by the instrumentation.
    pub added_instructions: u64,
}

impl InstrumentationReport {
    /// Code-size overhead as a ratio of the original program size.
    pub fn code_size_overhead_ratio(&self) -> f64 {
        if self.original_instructions == 0 {
            0.0
        } else {
            self.added_instructions as f64 / self.original_instructions as f64
        }
    }
}

/// Result of one software-attested run.
#[derive(Debug, Clone, PartialEq)]
pub struct CflatRun {
    /// The cumulative measurement over all control-flow events (same hash as LO-FAT
    /// without loop compression).
    pub measurement: Digest,
    /// Number of intercepted control-flow events.
    pub events: u64,
    /// CPU cycles of the *uninstrumented* program.
    pub base_cycles: u64,
    /// Attestation overhead charged by the cost model.
    pub overhead_cycles: u64,
    /// CPU exit information of the run.
    pub exit: ExitInfo,
}

impl CflatRun {
    /// Total cycles of the instrumented run (base + overhead).
    pub fn instrumented_cycles(&self) -> u64 {
        self.base_cycles + self.overhead_cycles
    }

    /// Overhead relative to the uninstrumented run (0.35 = +35 %).
    pub fn overhead_ratio(&self) -> f64 {
        if self.base_cycles == 0 {
            0.0
        } else {
            self.overhead_cycles as f64 / self.base_cycles as f64
        }
    }
}

/// The C-FLAT-style software attestor.
#[derive(Debug, Clone, Default)]
pub struct CflatAttestor {
    cost: InstrumentationCost,
}

struct MeasuringSink {
    hasher: Sha3_512,
    events: u64,
}

impl TraceSink for MeasuringSink {
    fn retire(&mut self, inst: &RetiredInst) {
        if inst.branch.is_some() {
            self.events += 1;
            let word = (u64::from(inst.pc) << 32) | u64::from(inst.next_pc);
            self.hasher.update(word.to_le_bytes());
        }
    }
}

impl CflatAttestor {
    /// Creates an attestor with the default cost model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an attestor with a custom cost model.
    pub fn with_cost(cost: InstrumentationCost) -> Self {
        Self { cost }
    }

    /// The cost model in use.
    pub fn cost(&self) -> &InstrumentationCost {
        &self.cost
    }

    /// Static view: how many sites would be rewritten and how much code is added.
    pub fn instrumentation_report(&self, program: &Program) -> InstrumentationReport {
        let original_instructions = program.iter_instructions().count() as u64;
        let rewrite_sites =
            program.iter_instructions().filter(|(_, inst)| inst.is_control_flow()).count() as u64;
        InstrumentationReport {
            rewrite_sites,
            original_instructions,
            added_instructions: self.cost.code_size_overhead(rewrite_sites),
        }
    }

    /// Runs `program` under software attestation with input pre-loaded by the caller
    /// being unnecessary (input-free workloads), returning the measurement and the
    /// overhead model's verdict.
    ///
    /// # Errors
    ///
    /// Propagates execution errors from the CPU model.
    pub fn attest(&self, program: &Program, max_cycles: u64) -> Result<CflatRun, Rv32Error> {
        let mut cpu = Cpu::new(program)?;
        self.attest_cpu(&mut cpu, max_cycles)
    }

    /// Runs an already prepared CPU (e.g. with inputs poked into memory) under
    /// software attestation.
    ///
    /// # Errors
    ///
    /// Propagates execution errors from the CPU model.
    pub fn attest_cpu(&self, cpu: &mut Cpu, max_cycles: u64) -> Result<CflatRun, Rv32Error> {
        let mut sink = MeasuringSink { hasher: Sha3_512::new(), events: 0 };
        let exit = cpu.run_traced(max_cycles, &mut sink)?;
        let overhead_cycles = self.cost.overhead_cycles(sink.events);
        Ok(CflatRun {
            measurement: sink.hasher.finalize(),
            events: sink.events,
            base_cycles: exit.cycles,
            overhead_cycles,
            exit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lofat_rv32::asm::assemble;

    fn loop_program(iterations: u32) -> Program {
        assemble(&format!(
            ".text\nmain:\n    li t0, {iterations}\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ecall\n"
        ))
        .unwrap()
    }

    #[test]
    fn overhead_grows_linearly_with_control_flow_events() {
        let attestor = CflatAttestor::new();
        let small = attestor.attest(&loop_program(10), 100_000).unwrap();
        let large = attestor.attest(&loop_program(100), 100_000).unwrap();
        assert_eq!(small.events, 10);
        assert_eq!(large.events, 100);
        assert_eq!(large.overhead_cycles, 10 * small.overhead_cycles);
        assert!(large.overhead_ratio() > 0.5, "software attestation overhead is substantial");
    }

    #[test]
    fn straight_line_code_has_minimal_overhead() {
        let program =
            assemble(".text\nmain:\n    li a0, 1\n    addi a0, a0, 2\n    ecall\n").unwrap();
        let run = CflatAttestor::new().attest(&program, 1_000).unwrap();
        assert_eq!(run.events, 0);
        assert_eq!(run.overhead_cycles, 0);
        assert_eq!(run.instrumented_cycles(), run.base_cycles);
    }

    #[test]
    fn measurement_is_deterministic_and_input_sensitive() {
        let attestor = CflatAttestor::new();
        let a = attestor.attest(&loop_program(5), 100_000).unwrap();
        let b = attestor.attest(&loop_program(5), 100_000).unwrap();
        let c = attestor.attest(&loop_program(6), 100_000).unwrap();
        assert_eq!(a.measurement, b.measurement);
        assert_ne!(
            a.measurement, c.measurement,
            "without loop compression every iteration is hashed"
        );
    }

    #[test]
    fn instrumentation_report_counts_sites() {
        let attestor = CflatAttestor::new();
        let report = attestor.instrumentation_report(&loop_program(5));
        assert_eq!(report.rewrite_sites, 1, "one conditional branch");
        assert_eq!(report.original_instructions, 4);
        assert!(report.code_size_overhead_ratio() > 1.0);
    }

    #[test]
    fn custom_cost_model_is_respected() {
        let cost = InstrumentationCost {
            trampoline_cycles: 1,
            environment_switch_cycles: 1,
            hash_cycles_per_byte: 1,
            bytes_per_event: 8,
            instructions_per_event: 1,
        };
        let attestor = CflatAttestor::with_cost(cost);
        let run = attestor.attest(&loop_program(4), 10_000).unwrap();
        assert_eq!(run.overhead_cycles, 4 * 10);
        assert_eq!(attestor.cost().cycles_per_event(), 10);
    }
}

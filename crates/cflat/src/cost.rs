//! Cost model of software control-flow attestation.

/// Per-event cost model of the C-FLAT-style baseline.
///
/// Every intercepted control-flow event pays for (a) the trampoline that redirects
/// the instruction into the measurement routine, (b) the entry/exit of the protected
/// execution environment and (c) the software hash update over the 8-byte
/// `(Src, Dest)` pair.  The defaults are conservative estimates for a small embedded
/// core running an optimised software SHA-3 (tens of cycles per byte) with a
/// lightweight TEE transition; the original C-FLAT prototype on TrustZone pays
/// considerably more per event, so the comparison drawn from these defaults errs in
/// the software baseline's favour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct InstrumentationCost {
    /// Cycles for the rewritten branch to reach the measurement routine and return.
    pub trampoline_cycles: u64,
    /// Cycles to enter and leave the protected measurement environment.
    pub environment_switch_cycles: u64,
    /// Cycles per byte of measured data for the software hash update.
    pub hash_cycles_per_byte: u64,
    /// Bytes hashed per control-flow event (the `(Src, Dest)` pair).
    pub bytes_per_event: u64,
    /// Extra instructions emitted per rewritten control-flow instruction
    /// (code-size overhead of the instrumentation).
    pub instructions_per_event: u64,
}

impl Default for InstrumentationCost {
    fn default() -> Self {
        Self {
            trampoline_cycles: 10,
            environment_switch_cycles: 60,
            hash_cycles_per_byte: 55,
            bytes_per_event: 8,
            instructions_per_event: 6,
        }
    }
}

impl InstrumentationCost {
    /// Cycles charged for one intercepted control-flow event.
    pub fn cycles_per_event(&self) -> u64 {
        self.trampoline_cycles
            + self.environment_switch_cycles
            + self.hash_cycles_per_byte * self.bytes_per_event
    }

    /// Total overhead in cycles for `events` control-flow events.
    pub fn overhead_cycles(&self, events: u64) -> u64 {
        self.cycles_per_event() * events
    }

    /// Code-size overhead in instructions for a program with
    /// `control_flow_instructions` rewritten sites.
    pub fn code_size_overhead(&self, control_flow_instructions: u64) -> u64 {
        self.instructions_per_event * control_flow_instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cost_is_hash_dominated() {
        let cost = InstrumentationCost::default();
        assert!(cost.hash_cycles_per_byte * cost.bytes_per_event > cost.environment_switch_cycles);
        assert_eq!(cost.cycles_per_event(), 10 + 60 + 55 * 8);
    }

    #[test]
    fn overhead_is_linear_in_events() {
        let cost = InstrumentationCost::default();
        assert_eq!(cost.overhead_cycles(0), 0);
        assert_eq!(cost.overhead_cycles(10) * 2, cost.overhead_cycles(20));
    }

    #[test]
    fn code_size_scales_with_sites() {
        let cost = InstrumentationCost::default();
        assert_eq!(cost.code_size_overhead(5), 30);
    }
}

//! C-FLAT-style software control-flow attestation baseline.
//!
//! The LO-FAT paper positions its hardware engine against C-FLAT (Abera et al.,
//! CCS 2016), a *software* control-flow attestation scheme: every control-flow
//! instruction of the application is rewritten to trap into attestation code running
//! on the same processor (inside a TEE), which updates a running hash — so the
//! attestation overhead grows linearly with the number of control-flow events,
//! whereas LO-FAT's is zero.
//!
//! This crate reproduces that baseline for the comparison experiments (E2, E9).  It
//! does not rewrite binaries; instead it executes the program unmodified, observes
//! the same trace the instrumentation would intercept, computes the same cumulative
//! measurement in software, and charges a per-event cost model
//! ([`InstrumentationCost`]) for the trampoline, the context switch into the
//! measurement code and the software hash update.  The *shape* of the comparison —
//! overhead linear in control-flow events versus none — is exactly the paper's
//! claim; the absolute constants are documented, conservative estimates.
//!
//! # Example
//!
//! ```
//! use lofat_cflat::CflatAttestor;
//! use lofat_rv32::asm::assemble;
//!
//! let program = assemble(
//!     ".text\nmain:\n    li t0, 9\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ecall\n",
//! )?;
//! let run = CflatAttestor::new().attest(&program, 100_000)?;
//! assert!(run.overhead_cycles > 0);
//! assert!(run.overhead_ratio() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod instrument;

pub use cost::InstrumentationCost;
pub use instrument::{CflatAttestor, CflatRun, InstrumentationReport};

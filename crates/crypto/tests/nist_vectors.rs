//! Known-answer tests against published NIST FIPS 202 vectors, plus sign/verify
//! round-trips for the HMAC and Lamport constructions built on top of SHA-3.
//!
//! Sources:
//! * Keccak-f[1600] intermediate values from the Keccak team's reference
//!   `KeccakF-1600-IntermediateValues.txt` (permutation of the all-zero state).
//! * SHA3-256 / SHA3-512 digests of `""`, `"abc"` and one million `a`s from the
//!   NIST FIPS 202 example values.
//!
//! Every golden digest is checked twice: through the scalar sponge and through
//! the 4-lane batch path (`digest_many`), with the vector planted in each of
//! the four lane positions and in ragged tail groups of 1–3 — so the
//! multi-lane Keccak kernel is pinned to the same FIPS 202 answers in every
//! slot it can occupy.

use lofat_crypto::keccak::KeccakState;
use lofat_crypto::sign::HmacVerifier;
use lofat_crypto::{
    DeviceKey, Hmac, HmacSigner, KeccakState4, LamportKeyPair, Sha3_256, Sha3_512,
    SignatureVerifier, Signer,
};
use proptest::prelude::*;

/// First lanes of Keccak-f[1600] applied once to the all-zero state.
const KECCAK_F_ZERO_ONCE: [u64; 5] = [
    0xf125_8f79_40e1_dde7,
    0x84d5_ccf9_33c0_478a,
    0xd598_261e_a65a_a9ee,
    0xbd15_4730_6f80_494d,
    0x8b28_4e05_6253_d057,
];

/// First lanes after applying the permutation a second time.
const KECCAK_F_ZERO_TWICE: [u64; 5] = [
    0x2d5c_954d_f96e_cb3c,
    0x6a33_2cd0_7057_b56d,
    0x093d_8d12_70d7_6b6c,
    0x8a20_d9b2_5569_d094,
    0x4f9c_4f99_e5e7_f156,
];

#[test]
fn keccak_f1600_permutation_of_zero_state() {
    let mut state = KeccakState::new();
    state.permute();
    for (index, &expected) in KECCAK_F_ZERO_ONCE.iter().enumerate() {
        assert_eq!(
            state.lanes()[index],
            expected,
            "lane {index} after one permutation of the zero state"
        );
    }
    state.permute();
    for (index, &expected) in KECCAK_F_ZERO_TWICE.iter().enumerate() {
        assert_eq!(
            state.lanes()[index],
            expected,
            "lane {index} after two permutations of the zero state"
        );
    }
}

#[test]
fn sha3_256_nist_short_vectors() {
    assert_eq!(
        Sha3_256::digest(b"").to_hex(),
        "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
    );
    assert_eq!(
        Sha3_256::digest(b"abc").to_hex(),
        "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
    );
    assert_eq!(
        Sha3_256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
        "41c0dba2a9d6240849100376a8235e2c82e1b9998a999e21db32dd97496d3376"
    );
}

#[test]
fn sha3_512_nist_short_vectors() {
    assert_eq!(
        Sha3_512::digest(b"").to_hex(),
        "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a6\
         15b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26"
    );
    assert_eq!(
        Sha3_512::digest(b"abc").to_hex(),
        "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e\
         10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0"
    );
}

#[test]
fn sha3_256_nist_million_a_vector() {
    let mut hasher = Sha3_256::new();
    let chunk = [b'a'; 1000];
    for _ in 0..1000 {
        hasher.update(chunk);
    }
    assert_eq!(
        hasher.finalize().to_hex(),
        "5c8875ae474a3634ba4fd55ec85bffd661f32aca75c6d699d0cdcb6c115891c1"
    );
}

#[test]
fn sha3_512_nist_million_a_vector() {
    let mut hasher = Sha3_512::new();
    let chunk = [b'a'; 1000];
    for _ in 0..1000 {
        hasher.update(chunk);
    }
    assert_eq!(
        hasher.finalize().to_hex(),
        "3c3a876da14034ab60627c077bb98f7e120a2a5370212dffb3385a18d4f38859\
         ed311d0a9d5141ce9cc5c66ee689b266a8aa18ace8282a0e0db596c90b0a7b87"
    );
}

/// The FIPS 202 message/digest pairs for SHA3-256 (message, hex digest).
fn sha3_256_vectors() -> Vec<(Vec<u8>, &'static str)> {
    vec![
        (b"".to_vec(), "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"),
        (b"abc".to_vec(), "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq".to_vec(),
            "41c0dba2a9d6240849100376a8235e2c82e1b9998a999e21db32dd97496d3376",
        ),
        (vec![b'a'; 1_000_000], "5c8875ae474a3634ba4fd55ec85bffd661f32aca75c6d699d0cdcb6c115891c1"),
    ]
}

/// The FIPS 202 message/digest pairs for SHA3-512 (message, hex digest).
fn sha3_512_vectors() -> Vec<(Vec<u8>, &'static str)> {
    vec![
        (
            b"".to_vec(),
            "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a6\
             15b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26",
        ),
        (
            b"abc".to_vec(),
            "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e\
             10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0",
        ),
        (
            vec![b'a'; 1_000_000],
            "3c3a876da14034ab60627c077bb98f7e120a2a5370212dffb3385a18d4f38859\
             ed311d0a9d5141ce9cc5c66ee689b266a8aa18ace8282a0e0db596c90b0a7b87",
        ),
    ]
}

/// Distinct filler messages so the other lanes of a 4-lane group never hash
/// the same bytes as the vector under test (a lane-mixing bug cannot hide).
fn filler(slot: usize) -> Vec<u8> {
    vec![0xA5 ^ slot as u8; 17 * slot + 3]
}

/// Plants `message` in every lane position of a full 4-lane group and checks
/// the digest in that position against `expected`; the filler lanes are
/// cross-checked against the scalar one-shot digest.
fn check_all_lane_positions(
    message: &[u8],
    expected: &str,
    digest_many: impl Fn(&[&[u8]]) -> Vec<String>,
    digest_one: impl Fn(&[u8]) -> String,
) {
    for position in 0..4 {
        let group: Vec<Vec<u8>> = (0..4)
            .map(|slot| if slot == position { message.to_vec() } else { filler(slot) })
            .collect();
        let refs: Vec<&[u8]> = group.iter().map(Vec::as_slice).collect();
        let digests = digest_many(&refs);
        assert_eq!(digests.len(), 4);
        for (slot, digest) in digests.iter().enumerate() {
            let want =
                if slot == position { expected.to_string() } else { digest_one(&group[slot]) };
            assert_eq!(digest, &want, "lane position {position}, slot {slot}");
        }
    }
    // Ragged groups of 1–3 take the scalar tail of the batch path; the
    // vector must survive every tail length and position too.
    for len in 1..4usize {
        for position in 0..len {
            let group: Vec<Vec<u8>> = (0..len)
                .map(|slot| if slot == position { message.to_vec() } else { filler(slot) })
                .collect();
            let refs: Vec<&[u8]> = group.iter().map(Vec::as_slice).collect();
            let digests = digest_many(&refs);
            assert_eq!(digests[position], expected, "ragged group of {len}, vector at {position}");
        }
    }
}

#[test]
fn sha3_256_vectors_through_every_lane_of_the_batch_path() {
    for (message, expected) in sha3_256_vectors() {
        check_all_lane_positions(
            &message,
            expected,
            |group| Sha3_256::digest_many(group).iter().map(|d| d.to_hex()).collect(),
            |msg| Sha3_256::digest(msg).to_hex(),
        );
    }
}

#[test]
fn sha3_512_vectors_through_every_lane_of_the_batch_path() {
    for (message, expected) in sha3_512_vectors() {
        check_all_lane_positions(
            &message,
            expected,
            |group| Sha3_512::digest_many(group).iter().map(|d| d.to_hex()).collect(),
            |msg| Sha3_512::digest(msg).to_hex(),
        );
    }
}

#[test]
fn keccak_f1600_zero_state_through_the_packed_permutation() {
    // All four lanes of the packed state start at zero; one packed permute
    // must land every slot on the published intermediate values.
    let mut packed = KeccakState4::new();
    packed.permute();
    let states = packed.into_states();
    for (slot, state) in states.iter().enumerate() {
        for (index, &expected) in KECCAK_F_ZERO_ONCE.iter().enumerate() {
            assert_eq!(state.lanes()[index], expected, "slot {slot}, lane {index}");
        }
    }
}

proptest! {
    /// The dispatched packed permutation (SIMD kernel or slot-wise scalar
    /// fallback) equals four independent scalar permutations on arbitrary
    /// states — and so does the portable packed reference formulation.
    #[test]
    fn packed_permutation_matches_looped_scalar_on_random_states(
        lanes in proptest::collection::vec(any::<u64>(), 100..=100),
        rounds in 1usize..3,
    ) {
        let states: [KeccakState; 4] = std::array::from_fn(|slot| {
            let mut state = [0u64; 25];
            for (index, lane) in state.iter_mut().enumerate() {
                *lane = lanes[25 * slot + index];
            }
            KeccakState::from_lanes(state)
        });
        let mut dispatched = KeccakState4::from_states(&states);
        let mut portable = KeccakState4::from_states(&states);
        let mut looped = states;
        for _ in 0..rounds {
            dispatched.permute();
            portable.permute_portable();
            for state in &mut looped {
                state.permute();
            }
        }
        let dispatched = dispatched.into_states();
        let portable = portable.into_states();
        for slot in 0..4 {
            prop_assert_eq!(dispatched[slot].lanes(), looped[slot].lanes(), "slot {}", slot);
            prop_assert_eq!(portable[slot].lanes(), looped[slot].lanes(), "portable {}", slot);
        }
    }
}

#[test]
fn hmac_mac_and_verify_round_trip() {
    let key = b"lofat hmac key";
    let message = b"attestation report payload";
    let tag = Hmac::mac(key, message);
    assert!(Hmac::verify(key, message, &tag));
    assert!(!Hmac::verify(key, b"attestation report payloae", &tag));
    assert!(!Hmac::verify(b"other key", message, &tag));

    // Incremental MAC equals one-shot MAC across arbitrary split points.
    let mut incremental = Hmac::new(key);
    incremental.update(&message[..7]);
    incremental.update(&message[7..]);
    assert_eq!(incremental.finalize(), tag);
}

#[test]
fn hmac_signer_round_trip_through_device_key() {
    let key = DeviceKey::from_seed("nist-kat-device");
    let mut signer = HmacSigner::new(key.clone());
    let payload = b"A || L || N";
    let signature = signer.sign(payload).expect("sign");
    let verifier = HmacVerifier::new(key.verification_key());
    assert!(verifier.verify(payload, &signature).is_ok());
    assert!(verifier.verify(b"A || L || N'", &signature).is_err());
}

#[test]
fn lamport_sign_verify_round_trip() {
    let mut keypair = LamportKeyPair::from_seed(b"nist-kat-lamport");
    let public = keypair.public_key();
    let message = b"one-time attestation";
    let signature = keypair.sign(message).expect("first signature");
    assert!(public.verify(message, &signature).is_ok());
    assert!(public.verify(b"another message", &signature).is_err());
    assert!(keypair.sign(message).is_err(), "Lamport keys are strictly one-time");
}

//! Property-based tests of the cryptographic substrate.

use lofat_crypto::lamport::LamportPublicKey;
use lofat_crypto::sign::HmacVerifier;
use lofat_crypto::{
    DeviceKey, HashEngine, HashEngineConfig, Hmac, LamportKeyPair, Sha3_256, Sha3_512,
    SignatureVerifier, Signer,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Incremental hashing over arbitrary chunk boundaries equals one-shot hashing.
    #[test]
    fn sha3_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..600),
                                       split in 1usize..64) {
        let mut hasher = Sha3_512::new();
        for chunk in data.chunks(split) {
            hasher.update(chunk);
        }
        prop_assert_eq!(hasher.finalize(), Sha3_512::digest(&data));

        let mut hasher = Sha3_256::new();
        for chunk in data.chunks(split) {
            hasher.update(chunk);
        }
        prop_assert_eq!(hasher.finalize(), Sha3_256::digest(&data));
    }

    /// Different messages (virtually) never collide and the digest length is fixed.
    #[test]
    fn sha3_injective_on_small_inputs(a in proptest::collection::vec(any::<u8>(), 0..64),
                                      b in proptest::collection::vec(any::<u8>(), 0..64)) {
        let da = Sha3_512::digest(&a);
        let db = Sha3_512::digest(&b);
        prop_assert_eq!(da.len(), 64);
        if a != b {
            prop_assert_ne!(da, db);
        } else {
            prop_assert_eq!(da, db);
        }
    }

    /// HMAC verifies for the right key/message and fails for any modified message.
    #[test]
    fn hmac_verifies_and_rejects(key in proptest::collection::vec(any::<u8>(), 0..128),
                                 message in proptest::collection::vec(any::<u8>(), 0..256),
                                 flip in 0usize..256) {
        let tag = Hmac::mac(&key, &message);
        prop_assert!(Hmac::verify(&key, &message, &tag));
        if !message.is_empty() {
            let mut tampered = message.clone();
            let index = flip % tampered.len();
            tampered[index] ^= 0x01;
            prop_assert!(!Hmac::verify(&key, &tampered, &tag));
        }
    }

    /// The streaming hash engine produces the same digest as software SHA-3 for any
    /// word stream and any (valid) buffer size, regardless of offered timing.
    #[test]
    fn hash_engine_equals_software(words in proptest::collection::vec(any::<u64>(), 0..200),
                                   buffer in 1usize..16,
                                   gap in 0u8..4) {
        let config = HashEngineConfig { input_buffer_words: buffer, ..Default::default() };
        let mut engine = HashEngine::new(config);
        let mut reference = Sha3_512::new();
        for &word in &words {
            while engine.buffered() == buffer {
                engine.step();
            }
            engine.offer(word).expect("room available");
            for _ in 0..=gap {
                engine.step();
            }
            reference.update(word.to_le_bytes());
        }
        prop_assert_eq!(engine.finalize().expect("finalize"), reference.finalize());
        prop_assert_eq!(engine.stats().words_dropped, 0);
    }

    /// HMAC-based attestation signatures verify under the matching key and fail under
    /// any other seed.
    #[test]
    fn device_key_signatures(seed_a in "[a-z]{1,12}", seed_b in "[a-z]{1,12}",
                             payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let key_a = DeviceKey::from_seed(&seed_a);
        let verifier_a = HmacVerifier::new(key_a.verification_key());
        let mut signer_a = lofat_crypto::HmacSigner::new(key_a);
        let signature = signer_a.sign(&payload).expect("sign");
        prop_assert!(verifier_a.verify(&payload, &signature).is_ok());

        if seed_a != seed_b {
            let verifier_b = HmacVerifier::new(DeviceKey::from_seed(&seed_b).verification_key());
            prop_assert!(verifier_b.verify(&payload, &signature).is_err());
        }
    }

    /// Lamport signatures verify for the signed message and reject any other message.
    #[test]
    fn lamport_one_time_signature(seed in proptest::collection::vec(any::<u8>(), 1..32),
                                  message in proptest::collection::vec(any::<u8>(), 0..64),
                                  other in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut keypair = LamportKeyPair::from_seed(&seed);
        let public: LamportPublicKey = keypair.public_key();
        let signature = keypair.sign(&message).expect("one signature allowed");
        prop_assert!(public.verify(&message, &signature).is_ok());
        if other != message {
            prop_assert!(public.verify(&other, &signature).is_err());
        }
        prop_assert!(keypair.sign(&message).is_err(), "one-time key cannot sign twice");
    }
}

//! The Keccak-f\[1600\] permutation.
//!
//! This is the core permutation underlying SHA-3 (FIPS 202).  LO-FAT's hash engine
//! is a hardware Keccak core; the software implementation here produces identical
//! digests and is shared by [`crate::sha3`] and [`crate::hash_engine`].

/// Number of 64-bit lanes in the Keccak-f\[1600\] state (5 × 5).
pub const STATE_LANES: usize = 25;

/// Number of rounds of Keccak-f\[1600\].
pub const ROUNDS: usize = 24;

/// Round constants for the ι (iota) step (shared with [`crate::keccak4`]).
pub(crate) const ROUND_CONSTANTS: [u64; ROUNDS] = [
    0x0000_0000_0000_0001,
    0x0000_0000_0000_8082,
    0x8000_0000_0000_808a,
    0x8000_0000_8000_8000,
    0x0000_0000_0000_808b,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8009,
    0x0000_0000_0000_008a,
    0x0000_0000_0000_0088,
    0x0000_0000_8000_8009,
    0x0000_0000_8000_000a,
    0x0000_0000_8000_808b,
    0x8000_0000_0000_008b,
    0x8000_0000_0000_8089,
    0x8000_0000_0000_8003,
    0x8000_0000_0000_8002,
    0x8000_0000_0000_0080,
    0x0000_0000_0000_800a,
    0x8000_0000_8000_000a,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8080,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8008,
];

/// Rotation offsets for the ρ (rho) step, indexed `[x + 5 * y]`.
///
/// The unrolled [`KeccakState::round`] bakes these constants into the code; the
/// table is kept as the authoritative FIPS 202 reference and is checked against
/// the unrolled constants by a test below.
#[cfg(test)]
const RHO_OFFSETS: [u32; STATE_LANES] = [
    0, 1, 62, 28, 27, //
    36, 44, 6, 55, 20, //
    3, 10, 43, 25, 39, //
    41, 45, 15, 21, 8, //
    18, 2, 61, 56, 14,
];

/// A Keccak-f\[1600\] state of 25 64-bit lanes.
///
/// The lane at coordinates `(x, y)` is stored at index `x + 5 * y`, matching the
/// FIPS 202 convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeccakState {
    lanes: [u64; STATE_LANES],
}

impl KeccakState {
    /// Creates an all-zero state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a state from raw lanes (index `x + 5 * y`, as returned by
    /// [`KeccakState::lanes`]).  Used by the multi-lane batch path
    /// ([`crate::keccak4`]) to hand states between the scalar and the 4-way
    /// representation.
    pub fn from_lanes(lanes: [u64; STATE_LANES]) -> Self {
        Self { lanes }
    }

    /// Returns the raw lanes of the state.
    pub fn lanes(&self) -> &[u64; STATE_LANES] {
        &self.lanes
    }

    /// XORs a 64-bit word into lane `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 25`.
    pub fn xor_lane(&mut self, index: usize, value: u64) {
        self.lanes[index] ^= value;
    }

    /// XORs a byte into the state at byte offset `offset` (little-endian lane order).
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 200`.
    pub fn xor_byte(&mut self, offset: usize, value: u8) {
        let lane = offset / 8;
        let shift = (offset % 8) * 8;
        self.lanes[lane] ^= u64::from(value) << shift;
    }

    /// Reads a byte of the state at byte offset `offset` (little-endian lane order).
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 200`.
    pub fn byte(&self, offset: usize) -> u8 {
        let lane = offset / 8;
        let shift = (offset % 8) * 8;
        (self.lanes[lane] >> shift) as u8
    }

    /// Applies the full 24-round Keccak-f\[1600\] permutation in place.
    ///
    /// The state is copied into a local array for the 24 rounds and written back
    /// once: rounds then chain through values the optimiser knows nothing else
    /// aliases, instead of loading and storing all 25 lanes through `&mut self`
    /// every round.  (The PR that unrolled the round function sped up the
    /// sponge absorb path but regressed this bare dependent-latency figure; the
    /// local copy recovers it.)
    pub fn permute(&mut self) {
        permute_lanes(&mut self.lanes);
    }

    /// One Keccak round applied directly to the stored lanes (test oracle entry
    /// point; the hot path goes through [`KeccakState::permute`]).
    #[cfg(test)]
    fn round(&mut self, rc: u64) {
        round_on(&mut self.lanes, rc);
    }
}

/// The full 24-round permutation over a bare lane array (shared by
/// [`KeccakState::permute`] and the packed fallback in [`crate::keccak4`]).
pub(crate) fn permute_lanes(lanes: &mut [u64; STATE_LANES]) {
    let mut local = *lanes;
    for rc in ROUND_CONSTANTS {
        round_on(&mut local, rc);
    }
    *lanes = local;
}

/// One Keccak round: θ, ρ, π, χ, ι — fully unrolled.
///
/// All 25 lanes are held in locals, the ρ rotation amounts and π target
/// positions are baked in as constants and every array access uses a constant
/// index, so the compiler emits straight-line code with no bounds checks and
/// no `% 5` index arithmetic.  θ is fused into ρ/π (each lane picks up its
/// column parity `D[x]` as it is rotated into place).
#[inline]
fn round_on(lanes: &mut [u64; STATE_LANES], rc: u64) {
    let a: &[u64; STATE_LANES] = lanes;

    // θ (theta): column parities and the per-column mix values.
    let c0 = a[0] ^ a[5] ^ a[10] ^ a[15] ^ a[20];
    let c1 = a[1] ^ a[6] ^ a[11] ^ a[16] ^ a[21];
    let c2 = a[2] ^ a[7] ^ a[12] ^ a[17] ^ a[22];
    let c3 = a[3] ^ a[8] ^ a[13] ^ a[18] ^ a[23];
    let c4 = a[4] ^ a[9] ^ a[14] ^ a[19] ^ a[24];
    let d0 = c4 ^ c1.rotate_left(1);
    let d1 = c0 ^ c2.rotate_left(1);
    let d2 = c1 ^ c3.rotate_left(1);
    let d3 = c2 ^ c4.rotate_left(1);
    let d4 = c3 ^ c0.rotate_left(1);

    // θ-apply + ρ (rotate) + π (permute): B[y, 2x+3y] = rot(A[x, y] ^ D[x]).
    // Locals are named after the *destination* index `nx + 5 * ny`.
    let b0 = a[0] ^ d0;
    let b10 = (a[1] ^ d1).rotate_left(1);
    let b20 = (a[2] ^ d2).rotate_left(62);
    let b5 = (a[3] ^ d3).rotate_left(28);
    let b15 = (a[4] ^ d4).rotate_left(27);
    let b16 = (a[5] ^ d0).rotate_left(36);
    let b1 = (a[6] ^ d1).rotate_left(44);
    let b11 = (a[7] ^ d2).rotate_left(6);
    let b21 = (a[8] ^ d3).rotate_left(55);
    let b6 = (a[9] ^ d4).rotate_left(20);
    let b7 = (a[10] ^ d0).rotate_left(3);
    let b17 = (a[11] ^ d1).rotate_left(10);
    let b2 = (a[12] ^ d2).rotate_left(43);
    let b12 = (a[13] ^ d3).rotate_left(25);
    let b22 = (a[14] ^ d4).rotate_left(39);
    let b23 = (a[15] ^ d0).rotate_left(41);
    let b8 = (a[16] ^ d1).rotate_left(45);
    let b18 = (a[17] ^ d2).rotate_left(15);
    let b3 = (a[18] ^ d3).rotate_left(21);
    let b13 = (a[19] ^ d4).rotate_left(8);
    let b14 = (a[20] ^ d0).rotate_left(18);
    let b24 = (a[21] ^ d1).rotate_left(2);
    let b9 = (a[22] ^ d2).rotate_left(61);
    let b19 = (a[23] ^ d3).rotate_left(56);
    let b4 = (a[24] ^ d4).rotate_left(14);

    // χ (chi) row by row, with ι (iota) folded into lane 0.
    let a = lanes;
    a[0] = b0 ^ (!b1 & b2) ^ rc;
    a[1] = b1 ^ (!b2 & b3);
    a[2] = b2 ^ (!b3 & b4);
    a[3] = b3 ^ (!b4 & b0);
    a[4] = b4 ^ (!b0 & b1);
    a[5] = b5 ^ (!b6 & b7);
    a[6] = b6 ^ (!b7 & b8);
    a[7] = b7 ^ (!b8 & b9);
    a[8] = b8 ^ (!b9 & b5);
    a[9] = b9 ^ (!b5 & b6);
    a[10] = b10 ^ (!b11 & b12);
    a[11] = b11 ^ (!b12 & b13);
    a[12] = b12 ^ (!b13 & b14);
    a[13] = b13 ^ (!b14 & b10);
    a[14] = b14 ^ (!b10 & b11);
    a[15] = b15 ^ (!b16 & b17);
    a[16] = b16 ^ (!b17 & b18);
    a[17] = b17 ^ (!b18 & b19);
    a[18] = b18 ^ (!b19 & b15);
    a[19] = b19 ^ (!b15 & b16);
    a[20] = b20 ^ (!b21 & b22);
    a[21] = b21 ^ (!b22 & b23);
    a[22] = b22 ^ (!b23 & b24);
    a[23] = b23 ^ (!b24 & b20);
    a[24] = b24 ^ (!b20 & b21);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: the first lane after permuting the all-zero state.
    ///
    /// The reference value `0xF1258F7940E1DDE7` comes from the Keccak team's
    /// `KeccakF-1600-IntermediateValues.txt`.
    #[test]
    fn permutation_of_zero_state_known_answer() {
        let mut st = KeccakState::new();
        st.permute();
        assert_eq!(st.lanes()[0], 0xF125_8F79_40E1_DDE7);
        // Permuting again must change the state (the permutation has no short cycles
        // reachable from the zero state).
        let once = *st.lanes();
        st.permute();
        assert_ne!(&once, st.lanes());
    }

    #[test]
    fn xor_byte_and_byte_roundtrip() {
        let mut st = KeccakState::new();
        st.xor_byte(0, 0xAB);
        st.xor_byte(7, 0x01);
        st.xor_byte(8, 0xFF);
        st.xor_byte(199, 0x7E);
        assert_eq!(st.byte(0), 0xAB);
        assert_eq!(st.byte(7), 0x01);
        assert_eq!(st.byte(8), 0xFF);
        assert_eq!(st.byte(199), 0x7E);
        assert_eq!(st.byte(100), 0x00);
    }

    #[test]
    fn xor_lane_matches_xor_bytes() {
        let mut a = KeccakState::new();
        let mut b = KeccakState::new();
        let word = 0x0123_4567_89AB_CDEFu64;
        a.xor_lane(3, word);
        for (i, byte) in word.to_le_bytes().iter().enumerate() {
            b.xor_byte(3 * 8 + i, *byte);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn permutation_is_deterministic() {
        let mut a = KeccakState::new();
        a.xor_lane(0, 42);
        let mut b = a;
        a.permute();
        b.permute();
        assert_eq!(a, b);
    }

    /// Straightforward looped FIPS 202 round, kept as the oracle for the unrolled
    /// implementation (uses the authoritative `RHO_OFFSETS` table and the generic
    /// `% 5` index arithmetic the hot path avoids).
    fn reference_round(lanes: &mut [u64; STATE_LANES], rc: u64) {
        let a = lanes;
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for y in 0..5 {
            for x in 0..5 {
                a[x + 5 * y] ^= d[x];
            }
        }
        let mut b = [0u64; STATE_LANES];
        for y in 0..5 {
            for x in 0..5 {
                let idx = x + 5 * y;
                let rotated = a[idx].rotate_left(RHO_OFFSETS[idx]);
                let nx = y;
                let ny = (2 * x + 3 * y) % 5;
                b[nx + 5 * ny] = rotated;
            }
        }
        for y in 0..5 {
            for x in 0..5 {
                a[x + 5 * y] = b[x + 5 * y] ^ ((!b[(x + 1) % 5 + 5 * y]) & b[(x + 2) % 5 + 5 * y]);
            }
        }
        a[0] ^= rc;
    }

    /// The unrolled round must match the looped reference round on states that
    /// exercise every lane, for every round constant.
    #[test]
    fn unrolled_round_matches_reference_round() {
        let mut unrolled = KeccakState::new();
        // A state with all lanes distinct and asymmetric.
        for i in 0..STATE_LANES {
            unrolled.xor_lane(i, (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        let mut reference = *unrolled.lanes();
        for (round, rc) in ROUND_CONSTANTS.iter().enumerate() {
            unrolled.round(*rc);
            reference_round(&mut reference, *rc);
            assert_eq!(unrolled.lanes(), &reference, "diverged at round {round}");
        }
    }
}

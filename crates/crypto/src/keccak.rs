//! The Keccak-f\[1600\] permutation.
//!
//! This is the core permutation underlying SHA-3 (FIPS 202).  LO-FAT's hash engine
//! is a hardware Keccak core; the software implementation here produces identical
//! digests and is shared by [`crate::sha3`] and [`crate::hash_engine`].

/// Number of 64-bit lanes in the Keccak-f\[1600\] state (5 × 5).
pub const STATE_LANES: usize = 25;

/// Number of rounds of Keccak-f\[1600\].
pub const ROUNDS: usize = 24;

/// Round constants for the ι (iota) step.
const ROUND_CONSTANTS: [u64; ROUNDS] = [
    0x0000_0000_0000_0001,
    0x0000_0000_0000_8082,
    0x8000_0000_0000_808a,
    0x8000_0000_8000_8000,
    0x0000_0000_0000_808b,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8009,
    0x0000_0000_0000_008a,
    0x0000_0000_0000_0088,
    0x0000_0000_8000_8009,
    0x0000_0000_8000_000a,
    0x0000_0000_8000_808b,
    0x8000_0000_0000_008b,
    0x8000_0000_0000_8089,
    0x8000_0000_0000_8003,
    0x8000_0000_0000_8002,
    0x8000_0000_0000_0080,
    0x0000_0000_0000_800a,
    0x8000_0000_8000_000a,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8080,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8008,
];

/// Rotation offsets for the ρ (rho) step, indexed `[x + 5 * y]`.
const RHO_OFFSETS: [u32; STATE_LANES] = [
    0, 1, 62, 28, 27, //
    36, 44, 6, 55, 20, //
    3, 10, 43, 25, 39, //
    41, 45, 15, 21, 8, //
    18, 2, 61, 56, 14,
];

/// A Keccak-f\[1600\] state of 25 64-bit lanes.
///
/// The lane at coordinates `(x, y)` is stored at index `x + 5 * y`, matching the
/// FIPS 202 convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeccakState {
    lanes: [u64; STATE_LANES],
}

impl KeccakState {
    /// Creates an all-zero state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the raw lanes of the state.
    pub fn lanes(&self) -> &[u64; STATE_LANES] {
        &self.lanes
    }

    /// XORs a 64-bit word into lane `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 25`.
    pub fn xor_lane(&mut self, index: usize, value: u64) {
        self.lanes[index] ^= value;
    }

    /// XORs a byte into the state at byte offset `offset` (little-endian lane order).
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 200`.
    pub fn xor_byte(&mut self, offset: usize, value: u8) {
        let lane = offset / 8;
        let shift = (offset % 8) * 8;
        self.lanes[lane] ^= u64::from(value) << shift;
    }

    /// Reads a byte of the state at byte offset `offset` (little-endian lane order).
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 200`.
    pub fn byte(&self, offset: usize) -> u8 {
        let lane = offset / 8;
        let shift = (offset % 8) * 8;
        (self.lanes[lane] >> shift) as u8
    }

    /// Applies the full 24-round Keccak-f\[1600\] permutation in place.
    pub fn permute(&mut self) {
        for rc in ROUND_CONSTANTS {
            self.round(rc);
        }
    }

    /// One Keccak round: θ, ρ, π, χ, ι.
    fn round(&mut self, rc: u64) {
        let a = &mut self.lanes;

        // θ (theta)
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for y in 0..5 {
            for x in 0..5 {
                a[x + 5 * y] ^= d[x];
            }
        }

        // ρ (rho) and π (pi)
        let mut b = [0u64; STATE_LANES];
        for y in 0..5 {
            for x in 0..5 {
                let idx = x + 5 * y;
                let rotated = a[idx].rotate_left(RHO_OFFSETS[idx]);
                // π: B[y, 2x + 3y] = rot(A[x, y])
                let nx = y;
                let ny = (2 * x + 3 * y) % 5;
                b[nx + 5 * ny] = rotated;
            }
        }

        // χ (chi)
        for y in 0..5 {
            for x in 0..5 {
                a[x + 5 * y] = b[x + 5 * y] ^ ((!b[(x + 1) % 5 + 5 * y]) & b[(x + 2) % 5 + 5 * y]);
            }
        }

        // ι (iota)
        a[0] ^= rc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: the first lane after permuting the all-zero state.
    ///
    /// The reference value `0xF1258F7940E1DDE7` comes from the Keccak team's
    /// `KeccakF-1600-IntermediateValues.txt`.
    #[test]
    fn permutation_of_zero_state_known_answer() {
        let mut st = KeccakState::new();
        st.permute();
        assert_eq!(st.lanes()[0], 0xF125_8F79_40E1_DDE7);
        // Permuting again must change the state (the permutation has no short cycles
        // reachable from the zero state).
        let once = *st.lanes();
        st.permute();
        assert_ne!(&once, st.lanes());
    }

    #[test]
    fn xor_byte_and_byte_roundtrip() {
        let mut st = KeccakState::new();
        st.xor_byte(0, 0xAB);
        st.xor_byte(7, 0x01);
        st.xor_byte(8, 0xFF);
        st.xor_byte(199, 0x7E);
        assert_eq!(st.byte(0), 0xAB);
        assert_eq!(st.byte(7), 0x01);
        assert_eq!(st.byte(8), 0xFF);
        assert_eq!(st.byte(199), 0x7E);
        assert_eq!(st.byte(100), 0x00);
    }

    #[test]
    fn xor_lane_matches_xor_bytes() {
        let mut a = KeccakState::new();
        let mut b = KeccakState::new();
        let word = 0x0123_4567_89AB_CDEFu64;
        a.xor_lane(3, word);
        for (i, byte) in word.to_le_bytes().iter().enumerate() {
            b.xor_byte(3 * 8 + i, *byte);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn permutation_is_deterministic() {
        let mut a = KeccakState::new();
        a.xor_lane(0, 42);
        let mut b = a;
        a.permute();
        b.permute();
        assert_eq!(a, b);
    }
}

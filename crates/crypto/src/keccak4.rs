//! 4-way Keccak-f\[1600\].
//!
//! Four independent Keccak states are interleaved lane-wise: lane `i` of the
//! packed state is `[u64; 4]` holding lane `i` of slots 0–3 — the same
//! structure-of-arrays trick hardware Keccak cores use to fill wide
//! datapaths, applied in software.  [`KeccakState4::permute`] dispatches to
//! the runtime-selected SIMD kernel in `lofat-simd` (AVX-512 `vprolq` +
//! `vpternlogq`, or AVX2 shift-pair rotates); on hosts with neither tier it
//! de-interleaves and runs the scalar permutation per slot, which beats the
//! portable packed formulation once LLVM scalarizes it.
//!
//! Whatever the path, a packed permutation is lane-for-lane identical to four
//! scalar [`KeccakState::permute`] calls: [`KeccakState4::permute_portable`]
//! keeps the θ/ρ/π/χ/ι `[u64; 4]` round in-crate as the reference the kernels
//! are diffed against (tests below, plus the NIST-vector suite's proptest).
//!
//! Batching callers ([`crate::sha3`]'s multi-digest paths and
//! [`crate::hmac::Hmac::finalize_many`]) group work into full 4-lane packs and
//! fall back to the scalar permutation for ragged tails, so throughput scales
//! without any behavioural difference.

use crate::keccak::{permute_lanes, KeccakState, ROUND_CONSTANTS, STATE_LANES};

/// Number of independent Keccak states processed per packed permutation.
pub const LANES: usize = 4;

/// One packed lane: the same Keccak lane across the four slots.
type Pack = [u64; LANES];

#[inline(always)]
fn xor2(a: Pack, b: Pack) -> Pack {
    [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]]
}

#[inline(always)]
fn xor5(a: Pack, b: Pack, c: Pack, d: Pack, e: Pack) -> Pack {
    [
        a[0] ^ b[0] ^ c[0] ^ d[0] ^ e[0],
        a[1] ^ b[1] ^ c[1] ^ d[1] ^ e[1],
        a[2] ^ b[2] ^ c[2] ^ d[2] ^ e[2],
        a[3] ^ b[3] ^ c[3] ^ d[3] ^ e[3],
    ]
}

/// Rotate all four slots left by a compile-time constant (keeps the rotation
/// amount an immediate in the vectorized code, like the scalar unroll).
#[inline(always)]
fn rotl<const R: u32>(a: Pack) -> Pack {
    [a[0].rotate_left(R), a[1].rotate_left(R), a[2].rotate_left(R), a[3].rotate_left(R)]
}

/// θ-apply + ρ in one step: `rot(a ^ d)` per slot.
#[inline(always)]
fn xr<const R: u32>(a: Pack, d: Pack) -> Pack {
    rotl::<R>(xor2(a, d))
}

/// χ: `b ^ (!c & d)` per slot.
#[inline(always)]
fn chi(b: Pack, c: Pack, d: Pack) -> Pack {
    [b[0] ^ (!c[0] & d[0]), b[1] ^ (!c[1] & d[1]), b[2] ^ (!c[2] & d[2]), b[3] ^ (!c[3] & d[3])]
}

/// Four interleaved Keccak-f\[1600\] states.
///
/// Slot `s` of the packed state corresponds to one scalar [`KeccakState`];
/// [`KeccakState4::permute`] advances all four at once.  Pack and unpack via
/// [`KeccakState4::from_states`] / [`KeccakState4::into_states`], or address
/// individual slots with the byte/lane accessors (mirroring the scalar API).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeccakState4 {
    lanes: [Pack; STATE_LANES],
}

impl Default for KeccakState4 {
    fn default() -> Self {
        Self { lanes: [[0; LANES]; STATE_LANES] }
    }
}

impl KeccakState4 {
    /// Creates four all-zero states.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interleaves four scalar states into packed form.
    pub fn from_states(states: &[KeccakState; LANES]) -> Self {
        let mut packed = Self::new();
        for (slot, state) in states.iter().enumerate() {
            for (i, lane) in state.lanes().iter().enumerate() {
                packed.lanes[i][slot] = *lane;
            }
        }
        packed
    }

    /// De-interleaves the packed state back into four scalar states.
    pub fn into_states(self) -> [KeccakState; LANES] {
        let mut out = [[0u64; STATE_LANES]; LANES];
        for (i, pack) in self.lanes.iter().enumerate() {
            for (slot, lane) in pack.iter().enumerate() {
                out[slot][i] = *lane;
            }
        }
        out.map(KeccakState::from_lanes)
    }

    /// XORs a 64-bit word into lane `index` of slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 4` or `index >= 25`.
    pub fn xor_lane(&mut self, slot: usize, index: usize, value: u64) {
        self.lanes[index][slot] ^= value;
    }

    /// Reads a byte of slot `slot` at byte offset `offset` (little-endian lane
    /// order, matching [`KeccakState::byte`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 4` or `offset >= 200`.
    pub fn byte(&self, slot: usize, offset: usize) -> u8 {
        let lane = offset / 8;
        let shift = (offset % 8) * 8;
        (self.lanes[lane][slot] >> shift) as u8
    }

    /// Applies the full 24-round permutation to all four slots at once.
    ///
    /// Uses the best SIMD kernel the host supports (see [`lofat_simd`]); on
    /// hosts with none it runs the scalar permutation slot by slot.
    pub fn permute(&mut self) {
        if lofat_simd::keccak_f1600_x4(&mut self.lanes) {
            return;
        }
        for slot in 0..LANES {
            let mut lanes = std::array::from_fn(|i| self.lanes[i][slot]);
            permute_lanes(&mut lanes);
            for (i, lane) in lanes.iter().enumerate() {
                self.lanes[i][slot] = *lane;
            }
        }
    }

    /// Portable packed permutation: every θ/ρ/π/χ/ι operation on `[u64; 4]`
    /// batches, mirroring the scalar unroll round for round.
    ///
    /// This is the in-crate reference the SIMD kernels are checked against —
    /// plain safe Rust with no dispatch, so a disagreement with
    /// [`KeccakState4::permute`] isolates a kernel bug.  Not the hot path:
    /// without wide registers LLVM scalarizes it into spill traffic.
    pub fn permute_portable(&mut self) {
        let mut lanes = self.lanes;
        for rc in ROUND_CONSTANTS {
            round4(&mut lanes, rc);
        }
        self.lanes = lanes;
    }
}

/// One packed Keccak round, mirroring the scalar unroll in [`crate::keccak`]
/// operation for operation — same fused θ, same baked ρ constants, same π
/// destination naming (`b{nx + 5 * ny}`), same χ/ι tail.
#[inline]
fn round4(lanes: &mut [Pack; STATE_LANES], rc: u64) {
    let a: &[Pack; STATE_LANES] = lanes;

    // θ (theta): column parities and the per-column mix values.
    let c0 = xor5(a[0], a[5], a[10], a[15], a[20]);
    let c1 = xor5(a[1], a[6], a[11], a[16], a[21]);
    let c2 = xor5(a[2], a[7], a[12], a[17], a[22]);
    let c3 = xor5(a[3], a[8], a[13], a[18], a[23]);
    let c4 = xor5(a[4], a[9], a[14], a[19], a[24]);
    let d0 = xor2(c4, rotl::<1>(c1));
    let d1 = xor2(c0, rotl::<1>(c2));
    let d2 = xor2(c1, rotl::<1>(c3));
    let d3 = xor2(c2, rotl::<1>(c4));
    let d4 = xor2(c3, rotl::<1>(c0));

    // θ-apply + ρ + π, destinations named `b{nx + 5 * ny}` as in the scalar round.
    let b0 = xor2(a[0], d0);
    let b10 = xr::<1>(a[1], d1);
    let b20 = xr::<62>(a[2], d2);
    let b5 = xr::<28>(a[3], d3);
    let b15 = xr::<27>(a[4], d4);
    let b16 = xr::<36>(a[5], d0);
    let b1 = xr::<44>(a[6], d1);
    let b11 = xr::<6>(a[7], d2);
    let b21 = xr::<55>(a[8], d3);
    let b6 = xr::<20>(a[9], d4);
    let b7 = xr::<3>(a[10], d0);
    let b17 = xr::<10>(a[11], d1);
    let b2 = xr::<43>(a[12], d2);
    let b12 = xr::<25>(a[13], d3);
    let b22 = xr::<39>(a[14], d4);
    let b23 = xr::<41>(a[15], d0);
    let b8 = xr::<45>(a[16], d1);
    let b18 = xr::<15>(a[17], d2);
    let b3 = xr::<21>(a[18], d3);
    let b13 = xr::<8>(a[19], d4);
    let b14 = xr::<18>(a[20], d0);
    let b24 = xr::<2>(a[21], d1);
    let b9 = xr::<61>(a[22], d2);
    let b19 = xr::<56>(a[23], d3);
    let b4 = xr::<14>(a[24], d4);

    // χ (chi) row by row, with ι (iota) folded into lane 0 of every slot.
    let a = lanes;
    a[0] = chi(b0, b1, b2);
    a[0] = [a[0][0] ^ rc, a[0][1] ^ rc, a[0][2] ^ rc, a[0][3] ^ rc];
    a[1] = chi(b1, b2, b3);
    a[2] = chi(b2, b3, b4);
    a[3] = chi(b3, b4, b0);
    a[4] = chi(b4, b0, b1);
    a[5] = chi(b5, b6, b7);
    a[6] = chi(b6, b7, b8);
    a[7] = chi(b7, b8, b9);
    a[8] = chi(b8, b9, b5);
    a[9] = chi(b9, b5, b6);
    a[10] = chi(b10, b11, b12);
    a[11] = chi(b11, b12, b13);
    a[12] = chi(b12, b13, b14);
    a[13] = chi(b13, b14, b10);
    a[14] = chi(b14, b10, b11);
    a[15] = chi(b15, b16, b17);
    a[16] = chi(b16, b17, b18);
    a[17] = chi(b17, b18, b19);
    a[18] = chi(b18, b19, b15);
    a[19] = chi(b19, b15, b16);
    a[20] = chi(b20, b21, b22);
    a[21] = chi(b21, b22, b23);
    a[22] = chi(b22, b23, b24);
    a[23] = chi(b23, b24, b20);
    a[24] = chi(b24, b20, b21);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distinct_state(seed: u64) -> KeccakState {
        let mut st = KeccakState::new();
        for i in 0..STATE_LANES {
            st.xor_lane(i, (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed));
        }
        st
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let states = [distinct_state(1), distinct_state(2), distinct_state(3), distinct_state(4)];
        let packed = KeccakState4::from_states(&states);
        assert_eq!(packed.into_states(), states);
    }

    #[test]
    fn packed_permute_matches_four_scalar_permutes() {
        let mut states = [
            distinct_state(0x1111),
            distinct_state(0x2222),
            KeccakState::new(),
            distinct_state(0x4444),
        ];
        let mut packed = KeccakState4::from_states(&states);
        for st in states.iter_mut() {
            st.permute();
        }
        packed.permute();
        assert_eq!(packed.into_states(), states);
    }

    #[test]
    fn dispatched_permute_matches_portable_reference() {
        for seed in 0..8u64 {
            let states = [
                distinct_state(seed * 4 + 1),
                distinct_state(seed * 4 + 2),
                distinct_state(seed * 4 + 3),
                distinct_state(seed * 4 + 4),
            ];
            let mut dispatched = KeccakState4::from_states(&states);
            let mut portable = dispatched;
            dispatched.permute();
            portable.permute_portable();
            assert_eq!(dispatched, portable, "seed {seed}");
        }
    }

    #[test]
    fn portable_packed_permute_matches_four_scalar_permutes() {
        let mut states = [
            distinct_state(0xAAAA),
            distinct_state(0xBBBB),
            distinct_state(0xCCCC),
            KeccakState::new(),
        ];
        let mut packed = KeccakState4::from_states(&states);
        for st in states.iter_mut() {
            st.permute();
        }
        packed.permute_portable();
        assert_eq!(packed.into_states(), states);
    }

    #[test]
    fn packed_zero_state_known_answer_in_every_slot() {
        let mut packed = KeccakState4::new();
        packed.permute();
        let states = packed.into_states();
        for st in &states {
            assert_eq!(st.lanes()[0], 0xF125_8F79_40E1_DDE7);
        }
    }

    #[test]
    fn byte_accessor_matches_scalar() {
        let states = [distinct_state(7), distinct_state(8), distinct_state(9), distinct_state(10)];
        let packed = KeccakState4::from_states(&states);
        for (slot, st) in states.iter().enumerate() {
            for offset in [0usize, 1, 7, 8, 63, 64, 71, 135, 199] {
                assert_eq!(packed.byte(slot, offset), st.byte(offset));
            }
        }
    }

    #[test]
    fn xor_lane_targets_one_slot() {
        let mut packed = KeccakState4::new();
        packed.xor_lane(2, 5, 0xDEAD_BEEF);
        let states = packed.into_states();
        assert_eq!(states[2].lanes()[5], 0xDEAD_BEEF);
        for slot in [0, 1, 3] {
            assert_eq!(states[slot], KeccakState::new());
        }
    }
}

//! Lamport one-time signatures over SHA-3-256.
//!
//! The paper's protocol uses a generic `sign(·; sk)` primitive.  The default
//! reproduction uses an HMAC (symmetric) substitute; this module additionally offers
//! a hash-based *asymmetric* one-time signature so the extension example can show a
//! publicly verifiable attestation report without pulling in external crypto crates.

use crate::error::CryptoError;
use crate::sha3::Sha3_256;
use crate::sign::{Signature, Signer, Verifier};

/// Number of message bits covered by the signature (we sign a SHA-3-256 digest).
const MESSAGE_BITS: usize = 256;
/// Secret/preimage length in bytes.
const CHUNK_BYTES: usize = 32;

/// A Lamport one-time key pair.
///
/// Each key pair may sign **exactly one** message; a second [`Signer::sign`] call
/// fails with [`CryptoError::OneTimeKeyReused`].
pub struct LamportKeyPair {
    secrets: Vec<[u8; CHUNK_BYTES]>,
    public: LamportPublicKey,
    used: bool,
}

/// The public half of a [`LamportKeyPair`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LamportPublicKey {
    hashes: Vec<[u8; CHUNK_BYTES]>,
}

impl LamportKeyPair {
    /// Generates a key pair deterministically from a seed (the simulated device would
    /// use its true random number generator; a seed keeps examples reproducible).
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut secrets = Vec::with_capacity(2 * MESSAGE_BITS);
        for i in 0..(2 * MESSAGE_BITS) {
            let mut h = Sha3_256::new();
            h.update(seed);
            h.update((i as u64).to_le_bytes());
            let digest = h.finalize();
            let mut chunk = [0u8; CHUNK_BYTES];
            chunk.copy_from_slice(digest.as_bytes());
            secrets.push(chunk);
        }
        let hashes = secrets
            .iter()
            .map(|s| {
                let d = Sha3_256::digest(s);
                let mut chunk = [0u8; CHUNK_BYTES];
                chunk.copy_from_slice(d.as_bytes());
                chunk
            })
            .collect();
        Self { secrets, public: LamportPublicKey { hashes }, used: false }
    }

    /// Returns the public key to hand to the verifier.
    pub fn public_key(&self) -> LamportPublicKey {
        self.public.clone()
    }
}

impl std::fmt::Debug for LamportKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LamportKeyPair")
            .field("secrets", &"<redacted>")
            .field("used", &self.used)
            .finish()
    }
}

impl Signer for LamportKeyPair {
    fn sign(&mut self, message: &[u8]) -> Result<Signature, CryptoError> {
        if self.used {
            return Err(CryptoError::OneTimeKeyReused);
        }
        self.used = true;
        let digest = Sha3_256::digest(message);
        let mut out = Vec::with_capacity(MESSAGE_BITS * CHUNK_BYTES);
        for bit_index in 0..MESSAGE_BITS {
            let byte = digest.as_bytes()[bit_index / 8];
            let bit = (byte >> (bit_index % 8)) & 1;
            let secret = &self.secrets[2 * bit_index + bit as usize];
            out.extend_from_slice(secret);
        }
        Ok(Signature::from_bytes(out))
    }
}

impl Verifier for LamportPublicKey {
    fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let bytes = signature.as_bytes();
        if bytes.len() != MESSAGE_BITS * CHUNK_BYTES {
            return Err(CryptoError::SignatureMismatch);
        }
        let digest = Sha3_256::digest(message);
        for bit_index in 0..MESSAGE_BITS {
            let byte = digest.as_bytes()[bit_index / 8];
            let bit = (byte >> (bit_index % 8)) & 1;
            let revealed = &bytes[bit_index * CHUNK_BYTES..(bit_index + 1) * CHUNK_BYTES];
            let expected = &self.hashes[2 * bit_index + bit as usize];
            let actual = Sha3_256::digest(revealed);
            if actual.as_bytes() != expected {
                return Err(CryptoError::SignatureMismatch);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let mut kp = LamportKeyPair::from_seed(b"seed");
        let pk = kp.public_key();
        let sig = kp.sign(b"attestation report").unwrap();
        assert!(pk.verify(b"attestation report", &sig).is_ok());
        assert!(pk.verify(b"attestation repork", &sig).is_err());
    }

    #[test]
    fn one_time_key_cannot_sign_twice() {
        let mut kp = LamportKeyPair::from_seed(b"seed");
        kp.sign(b"first").unwrap();
        assert!(matches!(kp.sign(b"second"), Err(CryptoError::OneTimeKeyReused)));
    }

    #[test]
    fn truncated_signature_rejected() {
        let mut kp = LamportKeyPair::from_seed(b"seed");
        let pk = kp.public_key();
        let sig = kp.sign(b"m").unwrap();
        let truncated = Signature::from_bytes(sig.as_bytes()[..100].to_vec());
        assert!(pk.verify(b"m", &truncated).is_err());
    }

    #[test]
    fn different_seeds_produce_different_keys() {
        let a = LamportKeyPair::from_seed(b"a").public_key();
        let b = LamportKeyPair::from_seed(b"b").public_key();
        assert_ne!(a, b);
    }

    #[test]
    fn debug_redacts_secrets() {
        let kp = LamportKeyPair::from_seed(b"s");
        assert!(format!("{kp:?}").contains("redacted"));
    }
}

//! Device keys and the hardware-protected key register.
//!
//! The paper stores the prover's signing key `sk` in "hardware-protected secure
//! memory, e.g. a register that is accessible only to LO-FAT" (§3).  [`KeyRegister`]
//! models that register: application software running on the simulated core has no
//! API to read it, only the attestation engine (which owns the register) can ask it
//! to sign.

use crate::error::CryptoError;
use crate::hmac::Hmac;
use crate::sha3::{Digest, Sha3_512};

/// Length of a device key in bytes.
pub const DEVICE_KEY_BYTES: usize = 32;

/// A symmetric device key provisioned into the prover at manufacturing time.
///
/// The verifier holds the corresponding [`VerificationKey`].  With the HMAC-based
/// signature substitution the two wrap the same bytes; the distinct types keep the
/// prover/verifier roles from being mixed up in the protocol code.
#[derive(Clone, PartialEq, Eq)]
pub struct DeviceKey {
    bytes: [u8; DEVICE_KEY_BYTES],
}

impl DeviceKey {
    /// Creates a key from exactly [`DEVICE_KEY_BYTES`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] if `bytes` has the wrong length.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != DEVICE_KEY_BYTES {
            return Err(CryptoError::InvalidKeyLength {
                expected: DEVICE_KEY_BYTES,
                actual: bytes.len(),
            });
        }
        let mut key = [0u8; DEVICE_KEY_BYTES];
        key.copy_from_slice(bytes);
        Ok(Self { bytes: key })
    }

    /// Derives a deterministic key from a seed string (useful for tests and examples).
    pub fn from_seed(seed: &str) -> Self {
        let digest = Sha3_512::digest(seed.as_bytes());
        let mut key = [0u8; DEVICE_KEY_BYTES];
        key.copy_from_slice(&digest.as_bytes()[..DEVICE_KEY_BYTES]);
        Self { bytes: key }
    }

    /// Returns the corresponding verification key for the verifier.
    pub fn verification_key(&self) -> VerificationKey {
        VerificationKey { bytes: self.bytes }
    }

    pub(crate) fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl std::fmt::Debug for DeviceKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through Debug output.
        f.debug_struct("DeviceKey").field("bytes", &"<redacted>").finish()
    }
}

/// The verifier-side key used to check attestation reports.
#[derive(Clone, PartialEq, Eq)]
pub struct VerificationKey {
    bytes: [u8; DEVICE_KEY_BYTES],
}

impl VerificationKey {
    /// Verifies that `tag` authenticates `message`.
    pub fn verify(&self, message: &[u8], tag: &Digest) -> bool {
        Hmac::verify(&self.bytes, message, tag)
    }

    /// Returns a keyed-but-empty [`Hmac`] instance for this key.
    ///
    /// Cloning the returned base and absorbing a message is equivalent to
    /// [`Hmac::new`] + update, minus the two key-schedule permutations — the
    /// verifier service keeps one base per fleet key and clones it per report.
    pub fn mac_base(&self) -> Hmac {
        Hmac::new(&self.bytes)
    }
}

impl std::fmt::Debug for VerificationKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerificationKey").field("bytes", &"<redacted>").finish()
    }
}

/// Hardware-protected key register owned by the attestation engine.
///
/// Only the engine can invoke [`KeyRegister::sign`]; there is deliberately no getter
/// for the key bytes, mirroring the paper's assumption that the software adversary
/// cannot compromise the signing key.
#[derive(Debug, Clone)]
pub struct KeyRegister {
    key: DeviceKey,
    /// Number of signatures produced (useful for audit/testing).
    signatures_issued: u64,
}

impl KeyRegister {
    /// Provisions the register with a device key.
    pub fn provision(key: DeviceKey) -> Self {
        Self { key, signatures_issued: 0 }
    }

    /// Signs `message` with the protected key.
    pub fn sign(&mut self, message: &[u8]) -> Digest {
        self.signatures_issued += 1;
        Hmac::mac(self.key.as_bytes(), message)
    }

    /// Number of signatures issued so far.
    pub fn signatures_issued(&self) -> u64 {
        self.signatures_issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_length_is_validated() {
        assert!(DeviceKey::from_bytes(&[0u8; 32]).is_ok());
        let err = DeviceKey::from_bytes(&[0u8; 16]).unwrap_err();
        assert!(matches!(err, CryptoError::InvalidKeyLength { expected: 32, actual: 16 }));
    }

    #[test]
    fn seed_derivation_is_deterministic() {
        assert_eq!(DeviceKey::from_seed("dev-1"), DeviceKey::from_seed("dev-1"));
        assert_ne!(DeviceKey::from_seed("dev-1"), DeviceKey::from_seed("dev-2"));
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = DeviceKey::from_seed("prover");
        let vk = key.verification_key();
        let mut reg = KeyRegister::provision(key);
        let tag = reg.sign(b"report");
        assert!(vk.verify(b"report", &tag));
        assert!(!vk.verify(b"forged", &tag));
        assert_eq!(reg.signatures_issued(), 1);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let key = DeviceKey::from_seed("secret");
        let debug = format!("{key:?}");
        assert!(debug.contains("redacted"));
        let vk = key.verification_key();
        assert!(format!("{vk:?}").contains("redacted"));
    }
}

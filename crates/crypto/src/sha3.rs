//! SHA-3 (FIPS 202) built on the Keccak-f\[1600\] permutation.
//!
//! LO-FAT computes its cumulative path authenticator `A` with a SHA-3-512 core whose
//! rate is 576 bits (72 bytes).  [`Sha3_512`] is the incremental software equivalent;
//! [`Sha3_256`] is provided for the smaller metadata digests used in tests and the
//! Lamport one-time signature.

use crate::keccak::KeccakState;

/// Domain-separation/padding byte for SHA-3 (the `01` suffix plus first pad bit).
pub(crate) const SHA3_PAD: u8 = 0x06;
/// Final padding byte (last bit of the pad10*1 rule).
pub(crate) const FINAL_PAD: u8 = 0x80;

/// A finalized hash digest.
///
/// The digest length depends on the producing hash function (64 bytes for
/// [`Sha3_512`], 32 bytes for [`Sha3_256`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Digest {
    bytes: Vec<u8>,
}

impl Digest {
    /// Creates a digest from raw bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }

    /// Returns the digest bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Returns the digest length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if the digest is empty (never the case for SHA-3 outputs).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Renders the digest as a lowercase hexadecimal string.
    pub fn to_hex(&self) -> String {
        self.bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Constant-time-ish equality check (not constant time in the strict sense, but
    /// it always compares every byte).
    pub fn ct_eq(&self, other: &Digest) -> bool {
        self.ct_eq_bytes(&other.bytes)
    }

    /// [`Digest::ct_eq`] against a raw byte slice (lets callers compare a
    /// computed tag to wire bytes without allocating a `Digest`).
    pub fn ct_eq_bytes(&self, other: &[u8]) -> bool {
        if self.bytes.len() != other.len() {
            return false;
        }
        let mut acc = 0u8;
        for (a, b) in self.bytes.iter().zip(other.iter()) {
            acc |= a ^ b;
        }
        acc == 0
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Generic Keccak sponge in absorbing phase with a fixed rate and output length.
///
/// Crate-visible so the multi-lane batch layer ([`crate::multilane`]) can pack
/// sponge states into [`crate::keccak4::KeccakState4`] groups and hand them back.
#[derive(Debug, Clone)]
pub(crate) struct Sponge {
    pub(crate) state: KeccakState,
    pub(crate) rate_bytes: usize,
    pub(crate) output_bytes: usize,
    /// Number of bytes absorbed into the current rate block.
    pub(crate) offset: usize,
}

impl Sponge {
    pub(crate) fn new(rate_bytes: usize, output_bytes: usize) -> Self {
        // The word-aligned absorb path in `update` relies on full lanes never
        // straddling the rate boundary.
        debug_assert!(rate_bytes.is_multiple_of(8), "rate must be a whole number of lanes");
        Self { state: KeccakState::new(), rate_bytes, output_bytes, offset: 0 }
    }

    #[inline]
    pub(crate) fn update(&mut self, data: &[u8]) {
        let mut data = data;
        // Head: absorb byte-wise until the write position is lane-aligned.
        while !data.is_empty() && !self.offset.is_multiple_of(8) {
            self.absorb_byte(data[0]);
            data = &data[1..];
        }
        // Body: XOR whole little-endian u64 lanes.  Both supported rates (72 and
        // 136 bytes) are lane multiples, so a full lane never straddles the rate
        // boundary and the permutation fires at exactly the same input positions
        // as the byte-wise path.
        while data.len() >= 8 {
            let (lane_bytes, rest) = data.split_at(8);
            let word = u64::from_le_bytes(lane_bytes.try_into().expect("8 bytes"));
            self.state.xor_lane(self.offset / 8, word);
            self.offset += 8;
            if self.offset == self.rate_bytes {
                self.state.permute();
                self.offset = 0;
            }
            data = rest;
        }
        // Tail: remaining bytes of a partial lane.
        for &byte in data {
            self.absorb_byte(byte);
        }
    }

    #[inline]
    fn absorb_byte(&mut self, byte: u8) {
        self.state.xor_byte(self.offset, byte);
        self.offset += 1;
        if self.offset == self.rate_bytes {
            self.state.permute();
            self.offset = 0;
        }
    }

    pub(crate) fn finalize(mut self) -> Digest {
        // pad10*1 with SHA-3 domain separation.
        self.state.xor_byte(self.offset, SHA3_PAD);
        self.state.xor_byte(self.rate_bytes - 1, FINAL_PAD);
        self.state.permute();

        let mut out = Vec::with_capacity(self.output_bytes);
        let mut produced = 0;
        loop {
            let take = (self.output_bytes - produced).min(self.rate_bytes);
            for i in 0..take {
                out.push(self.state.byte(i));
            }
            produced += take;
            if produced == self.output_bytes {
                break;
            }
            self.state.permute();
        }
        Digest::from_bytes(out)
    }
}

/// Incremental SHA-3-512 hasher (rate 576 bits, 64-byte digest).
///
/// # Example
///
/// ```
/// use lofat_crypto::Sha3_512;
///
/// let digest = Sha3_512::digest(b"");
/// assert!(digest.to_hex().starts_with("a69f73cc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha3_512 {
    pub(crate) sponge: Sponge,
}

impl Sha3_512 {
    /// Rate of SHA-3-512 in bytes (576 bits).
    pub const RATE_BYTES: usize = 72;
    /// Digest length in bytes.
    pub const DIGEST_BYTES: usize = 64;

    /// Creates a new, empty hasher.
    pub fn new() -> Self {
        Self { sponge: Sponge::new(Self::RATE_BYTES, Self::DIGEST_BYTES) }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: impl AsRef<[u8]>) {
        self.sponge.update(data.as_ref());
    }

    /// Finalizes the hash and returns the 64-byte digest.
    pub fn finalize(self) -> Digest {
        self.sponge.finalize()
    }

    /// One-shot convenience: hashes `data` and returns the digest.
    pub fn digest(data: impl AsRef<[u8]>) -> Digest {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Hashes many independent messages, running full groups of four through
    /// the 4-way packed permutation ([`crate::keccak4`]) and any ragged tail
    /// through the scalar sponge.  Digests are bit-identical to
    /// [`Sha3_512::digest`] per message.
    ///
    /// # Example
    ///
    /// ```
    /// use lofat_crypto::Sha3_512;
    ///
    /// let msgs: Vec<&[u8]> = vec![b"a", b"bb", b"ccc", b"dddd", b"eeeee"];
    /// let batched = Sha3_512::digest_many(&msgs);
    /// for (msg, digest) in msgs.iter().zip(&batched) {
    ///     assert_eq!(digest, &Sha3_512::digest(msg));
    /// }
    /// ```
    pub fn digest_many<T: AsRef<[u8]>>(messages: &[T]) -> Vec<Digest> {
        crate::multilane::digest_each(&Sponge::new(Self::RATE_BYTES, Self::DIGEST_BYTES), messages)
    }

    /// Finalizes many in-flight hashers at once, draining full groups of four
    /// through one packed final permutation each (the hashers may be at
    /// arbitrary, unrelated absorb offsets).  Results are bit-identical to
    /// calling [`Sha3_512::finalize`] on each hasher.
    pub fn finalize_many(hashers: Vec<Sha3_512>) -> Vec<Digest> {
        crate::multilane::finalize_each(hashers.into_iter().map(|h| h.sponge).collect())
    }
}

impl Default for Sha3_512 {
    fn default() -> Self {
        Self::new()
    }
}

/// Incremental SHA-3-256 hasher (rate 1088 bits, 32-byte digest).
#[derive(Debug, Clone)]
pub struct Sha3_256 {
    pub(crate) sponge: Sponge,
}

impl Sha3_256 {
    /// Rate of SHA-3-256 in bytes (1088 bits).
    pub const RATE_BYTES: usize = 136;
    /// Digest length in bytes.
    pub const DIGEST_BYTES: usize = 32;

    /// Creates a new, empty hasher.
    pub fn new() -> Self {
        Self { sponge: Sponge::new(Self::RATE_BYTES, Self::DIGEST_BYTES) }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: impl AsRef<[u8]>) {
        self.sponge.update(data.as_ref());
    }

    /// Finalizes the hash and returns the 32-byte digest.
    pub fn finalize(self) -> Digest {
        self.sponge.finalize()
    }

    /// One-shot convenience: hashes `data` and returns the digest.
    pub fn digest(data: impl AsRef<[u8]>) -> Digest {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Hashes many independent messages through the 4-way packed permutation
    /// (groups of four; scalar tail).  See [`Sha3_512::digest_many`].
    pub fn digest_many<T: AsRef<[u8]>>(messages: &[T]) -> Vec<Digest> {
        crate::multilane::digest_each(&Sponge::new(Self::RATE_BYTES, Self::DIGEST_BYTES), messages)
    }
}

impl Default for Sha3_256 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha3_512_empty_vector() {
        let d = Sha3_512::digest(b"");
        assert_eq!(
            d.to_hex(),
            "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a6\
             15b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26"
        );
    }

    #[test]
    fn sha3_512_abc_vector() {
        let d = Sha3_512::digest(b"abc");
        assert_eq!(
            d.to_hex(),
            "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e\
             10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0"
        );
    }

    #[test]
    fn sha3_256_empty_vector() {
        let d = Sha3_256::digest(b"");
        assert_eq!(d.to_hex(), "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
    }

    #[test]
    fn sha3_256_abc_vector() {
        let d = Sha3_256::digest(b"abc");
        assert_eq!(d.to_hex(), "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog repeatedly and then some more";
        let mut h = Sha3_512::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), Sha3_512::digest(data));
    }

    /// Every chunking of the same input must produce the same digest, exercising
    /// the lane-aligned fast path against the byte-wise head/tail paths at all
    /// offsets relative to the 8-byte lane and the 72-byte rate boundaries.
    #[test]
    fn chunked_updates_hit_aligned_and_unaligned_paths() {
        let data: Vec<u8> = (0..640u32).map(|i| (i * 31 + 7) as u8).collect();
        let oneshot = Sha3_512::digest(&data);
        for chunk_size in [1, 3, 5, 8, 9, 16, 64, 71, 72, 73, 144, 640] {
            let mut h = Sha3_512::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn rate_boundary_inputs() {
        // Inputs of exactly rate-1, rate and rate+1 bytes exercise the padding edges.
        for len in [Sha3_512::RATE_BYTES - 1, Sha3_512::RATE_BYTES, Sha3_512::RATE_BYTES + 1] {
            let data = vec![0x5Au8; len];
            let mut h = Sha3_512::new();
            h.update(&data);
            let one = h.finalize();
            let two = Sha3_512::digest(&data);
            assert_eq!(one, two, "length {len}");
            assert_eq!(one.len(), 64);
        }
    }

    #[test]
    fn digests_differ_for_different_inputs() {
        assert_ne!(Sha3_512::digest(b"a"), Sha3_512::digest(b"b"));
        assert_ne!(Sha3_512::digest(b""), Sha3_512::digest(b"\0"));
    }

    #[test]
    fn digest_display_and_hex() {
        let d = Sha3_256::digest(b"abc");
        assert_eq!(format!("{d}"), d.to_hex());
        assert_eq!(d.to_hex().len(), 64);
    }

    #[test]
    fn ct_eq_behaviour() {
        let a = Sha3_256::digest(b"x");
        let b = Sha3_256::digest(b"x");
        let c = Sha3_256::digest(b"y");
        assert!(a.ct_eq(&b));
        assert!(!a.ct_eq(&c));
        assert!(!a.ct_eq(&Digest::from_bytes(vec![0u8; 5])));
    }
}

//! Crate-internal batching layer between the sponges and the 4-way permutation.
//!
//! Two primitives cover every batch use in the workspace:
//!
//! * [`absorb4_from`] — absorb four messages in lockstep from a shared base
//!   sponge (fresh, or already keyed as in HMAC's inner hash).  Whole rate
//!   blocks are XORed into a packed [`KeccakState4`] and permuted four-at-once
//!   while *every* slot still has a full block left; the ragged remainders then
//!   finish through the scalar sponge, so unequal message lengths only cost
//!   scalar work for the unequal part.
//! * [`finalize4`] — pad-and-permute four sponges at arbitrary, unrelated
//!   absorb offsets with a single packed permutation.  This is what lets the
//!   verifier drain in-flight HMAC states (each mid-block after absorbing a
//!   different payload) as one batch.
//!
//! Both produce bit-identical results to the scalar path; the NIST-vector
//! suite pins this for every FIPS 202 golden vector in every lane position.

use crate::keccak4::{KeccakState4, LANES};
use crate::sha3::{Digest, Sponge, FINAL_PAD, SHA3_PAD};

/// Absorbs four messages in lockstep starting from copies of `base`.
///
/// `base.offset` must be 0 (a freshly permuted or block-aligned sponge); the
/// HMAC inner key block and the empty sponge both satisfy this.
pub(crate) fn absorb4_from(base: &Sponge, messages: [&[u8]; LANES]) -> [Sponge; LANES] {
    debug_assert_eq!(base.offset, 0, "lockstep absorb requires a block-aligned base");
    let rate = base.rate_bytes;
    // Whole rate blocks absorbable while every slot still has one.
    let blocks = messages.iter().map(|m| m.len() / rate).min().unwrap_or(0);

    let mut packed = KeccakState4::from_states(&[base.state; LANES]);
    for block in 0..blocks {
        for (slot, message) in messages.iter().enumerate() {
            let chunk = &message[block * rate..(block + 1) * rate];
            for (lane, lane_bytes) in chunk.chunks_exact(8).enumerate() {
                let word = u64::from_le_bytes(lane_bytes.try_into().expect("8 bytes"));
                packed.xor_lane(slot, lane, word);
            }
        }
        packed.permute();
    }

    let states = packed.into_states();
    let mut slot = 0;
    states.map(|state| {
        let mut sponge =
            Sponge { state, rate_bytes: rate, output_bytes: base.output_bytes, offset: 0 };
        sponge.update(&messages[slot][blocks * rate..]);
        slot += 1;
        sponge
    })
}

/// Pads and finalizes four sponges with one packed permutation.
///
/// The sponges may be at arbitrary absorb offsets (padding is a per-slot XOR of
/// two bytes; only the final permutation is shared), but must agree on rate and
/// output length.  Output lengths above the rate would need extra squeeze
/// permutations; both SHA-3 variants in this crate squeeze a single block.
pub(crate) fn finalize4(mut sponges: [Sponge; LANES]) -> [Digest; LANES] {
    let rate = sponges[0].rate_bytes;
    let output = sponges[0].output_bytes;
    debug_assert!(output <= rate, "single-block squeeze only");
    for sponge in &mut sponges {
        debug_assert_eq!(sponge.rate_bytes, rate);
        debug_assert_eq!(sponge.output_bytes, output);
        sponge.state.xor_byte(sponge.offset, SHA3_PAD);
        sponge.state.xor_byte(rate - 1, FINAL_PAD);
    }
    let mut packed = KeccakState4::from_states(&[
        sponges[0].state,
        sponges[1].state,
        sponges[2].state,
        sponges[3].state,
    ]);
    packed.permute();
    std::array::from_fn(|slot| {
        let mut out = Vec::with_capacity(output);
        for i in 0..output {
            out.push(packed.byte(slot, i));
        }
        Digest::from_bytes(out)
    })
}

/// Hashes each message from copies of `base`: full groups of four via
/// [`absorb4_from`] + [`finalize4`], the tail via the scalar sponge.
pub(crate) fn digest_each<T: AsRef<[u8]>>(base: &Sponge, messages: &[T]) -> Vec<Digest> {
    let mut digests = Vec::with_capacity(messages.len());
    let mut chunks = messages.chunks_exact(LANES);
    for group in &mut chunks {
        let sponges = absorb4_from(
            base,
            [group[0].as_ref(), group[1].as_ref(), group[2].as_ref(), group[3].as_ref()],
        );
        digests.extend(finalize4(sponges));
    }
    for message in chunks.remainder() {
        let mut sponge = base.clone();
        sponge.update(message.as_ref());
        digests.push(sponge.finalize());
    }
    digests
}

/// Finalizes each sponge: full groups of four via [`finalize4`], scalar tail.
pub(crate) fn finalize_each(sponges: Vec<Sponge>) -> Vec<Digest> {
    let mut digests = Vec::with_capacity(sponges.len());
    let mut rest = sponges;
    while rest.len() >= LANES {
        let tail = rest.split_off(LANES);
        let group: [Sponge; LANES] = rest.try_into().expect("exactly four sponges");
        digests.extend(finalize4(group));
        rest = tail;
    }
    for sponge in rest {
        digests.push(sponge.finalize());
    }
    digests
}

#[cfg(test)]
mod tests {
    use crate::sha3::{Sha3_256, Sha3_512};

    #[test]
    fn digest_many_matches_scalar_for_all_batch_sizes() {
        let messages: Vec<Vec<u8>> =
            (0..9u32).map(|i| (0..(i * 37)).map(|j| (j * 13 + i) as u8).collect()).collect();
        for n in 0..=messages.len() {
            let batch = Sha3_512::digest_many(&messages[..n]);
            assert_eq!(batch.len(), n);
            for (msg, digest) in messages[..n].iter().zip(&batch) {
                assert_eq!(digest, &Sha3_512::digest(msg), "batch size {n}");
            }
        }
    }

    #[test]
    fn digest_many_sha3_256_matches_scalar() {
        let messages: Vec<Vec<u8>> = (0..6u32).map(|i| vec![i as u8; (i as usize) * 45]).collect();
        let batch = Sha3_256::digest_many(&messages);
        for (msg, digest) in messages.iter().zip(&batch) {
            assert_eq!(digest, &Sha3_256::digest(msg));
        }
    }

    #[test]
    fn finalize_many_handles_arbitrary_offsets() {
        // Hashers mid-block at different offsets, including block-aligned and
        // nearly-full, plus a ragged tail of two.
        let lengths = [0usize, 1, 7, 8, 71, 72, 73, 144, 145, 200];
        let hashers: Vec<Sha3_512> = lengths
            .iter()
            .map(|&len| {
                let mut h = Sha3_512::new();
                h.update(vec![0xA5u8; len]);
                h
            })
            .collect();
        let batch = Sha3_512::finalize_many(hashers);
        for (&len, digest) in lengths.iter().zip(&batch) {
            assert_eq!(digest, &Sha3_512::digest(vec![0xA5u8; len]), "length {len}");
        }
    }

    #[test]
    fn lockstep_absorb_with_wildly_unequal_lengths() {
        let messages: Vec<Vec<u8>> = vec![vec![], vec![1u8; 10_000], vec![2u8; 71], vec![3u8; 500]];
        let batch = Sha3_512::digest_many(&messages);
        for (msg, digest) in messages.iter().zip(&batch) {
            assert_eq!(digest, &Sha3_512::digest(msg));
        }
    }
}

//! Cycle-level model of the streaming SHA-3-512 hardware engine (§5.3 of the paper).
//!
//! The LO-FAT prototype uses an opencores SHA-3 core that operates on a 576-bit
//! message block.  Its behaviour, reproduced here:
//!
//! * one 64-bit `(Src, Dest)` input word is absorbed per clock cycle into the
//!   padding module;
//! * after **9** absorbed words the 576-bit rate buffer is full and the permutation
//!   starts; during the following **3** cycles the padding buffer cannot accept
//!   further input (`busy`);
//! * a small **input cache buffer** in front of the engine prevents dropping
//!   `(Src, Dest)` pairs that arrive during those busy cycles;
//! * an unlimited message size can be hashed, with the end of the stream indicated
//!   when the attested execution completes.
//!
//! [`HashEngine`] models exactly this pipeline and additionally checks, cycle by
//! cycle, that the input buffer never overflows (which would mean dropped trace
//! data).  The resulting digest is bit-identical to [`crate::Sha3_512`] applied to
//! the same word stream, so the functional and the timing model cannot diverge.

use crate::error::CryptoError;
use crate::sha3::{Digest, Sha3_512};
use std::collections::VecDeque;

/// Number of 64-bit words that fill the 576-bit rate of SHA-3-512.
pub const WORDS_PER_BLOCK: u64 = 9;

/// Number of cycles the padding buffer is busy after a block fills (§5.3).
pub const BUSY_CYCLES: u64 = 3;

/// Configuration of the streaming hash engine model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HashEngineConfig {
    /// Capacity (in 64-bit words) of the input cache buffer placed in front of the
    /// padding module.  The paper uses a "small cache buffer"; 4 words is enough to
    /// ride out the 3-cycle busy window at one input per cycle.
    pub input_buffer_words: usize,
    /// Number of cycles the permutation blocks the padding buffer after the rate
    /// fills.  The paper's core is busy for 3 cycles.
    pub busy_cycles: u64,
    /// Words per 576-bit block (9 for SHA-3-512); exposed for experimentation.
    pub words_per_block: u64,
}

impl Default for HashEngineConfig {
    fn default() -> Self {
        Self { input_buffer_words: 4, busy_cycles: BUSY_CYCLES, words_per_block: WORDS_PER_BLOCK }
    }
}

/// Status of the engine in the current cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStatus {
    /// The padding buffer can accept an input word this cycle.
    Ready,
    /// The permutation is running; the padding buffer cannot accept input.
    Busy {
        /// Remaining busy cycles including the current one.
        remaining: u64,
    },
}

/// Occupancy and throughput statistics gathered while the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct HashEngineStats {
    /// Total cycles the engine has been stepped.
    pub cycles: u64,
    /// Words absorbed into the padding buffer.
    pub words_absorbed: u64,
    /// Cycles during which the padding buffer was busy (permutation running).
    pub busy_cycles: u64,
    /// Number of permutations (block absorptions) performed.
    pub permutations: u64,
    /// Maximum occupancy observed in the input cache buffer.
    pub max_buffer_occupancy: usize,
    /// Words that could not be enqueued because the input buffer was full.
    pub words_dropped: u64,
}

impl HashEngineStats {
    /// Effective throughput in words per cycle (absorbed words / elapsed cycles).
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.words_absorbed as f64 / self.cycles as f64
        }
    }
}

/// Cycle-level model of the streaming SHA-3-512 engine with an input cache buffer.
///
/// # Example
///
/// ```
/// use lofat_crypto::{HashEngine, HashEngineConfig};
///
/// let mut engine = HashEngine::new(HashEngineConfig::default());
/// for word in 0u64..100 {
///     // Wait for buffer space exactly like the LO-FAT hash-engine controller does.
///     while engine.buffered() == engine.config().input_buffer_words {
///         engine.step();
///     }
///     engine.offer(word)?;
///     engine.step();
/// }
/// // Drain whatever is still buffered and finish the stream.
/// let digest = engine.finalize()?;
/// assert_eq!(digest.len(), 64);
/// # Ok::<(), lofat_crypto::CryptoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HashEngine {
    config: HashEngineConfig,
    /// Words waiting in the input cache buffer.
    buffer: VecDeque<u64>,
    /// Words absorbed into the current (partial) block.
    words_in_block: u64,
    /// Remaining busy cycles of the running permutation.
    busy_remaining: u64,
    /// Reference software hasher fed with the same words (guarantees functional
    /// equivalence between the timing model and the software digest).
    hasher: Sha3_512,
    stats: HashEngineStats,
    finalized: bool,
}

impl HashEngine {
    /// Creates an idle engine with the given configuration.
    pub fn new(config: HashEngineConfig) -> Self {
        Self {
            config,
            buffer: VecDeque::with_capacity(config.input_buffer_words),
            words_in_block: 0,
            busy_remaining: 0,
            hasher: Sha3_512::new(),
            stats: HashEngineStats::default(),
            finalized: false,
        }
    }

    /// Returns the engine configuration.
    pub fn config(&self) -> &HashEngineConfig {
        &self.config
    }

    /// Returns the statistics gathered so far.
    pub fn stats(&self) -> &HashEngineStats {
        &self.stats
    }

    /// Returns the engine status for the current cycle.
    pub fn status(&self) -> EngineStatus {
        if self.busy_remaining > 0 {
            EngineStatus::Busy { remaining: self.busy_remaining }
        } else {
            EngineStatus::Ready
        }
    }

    /// Number of words currently waiting in the input cache buffer.
    #[inline]
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Returns `true` when the engine has nothing to do this cycle: no buffered
    /// input and no running permutation.  A step in this state only advances the
    /// cycle counter, which [`HashEngine::tick_idle`] does directly.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.buffer.is_empty() && self.busy_remaining == 0
    }

    /// Advances one clock cycle through the idle fast path.
    ///
    /// Exactly equivalent to [`HashEngine::step`] when [`HashEngine::is_idle`]
    /// is `true` (the cycle counter advances, nothing else changes); callers use
    /// it to skip the absorb/busy bookkeeping on idle cycles.
    #[inline]
    pub fn tick_idle(&mut self) {
        debug_assert!(self.is_idle());
        self.stats.cycles += 1;
    }

    /// Offers a 64-bit word to the engine's input cache buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::EngineOverflow`] if the buffer is full (the hardware
    /// would have dropped trace data — LO-FAT is dimensioned so this never happens)
    /// and [`CryptoError::EngineFinalized`] if the stream was already finalized.
    pub fn offer(&mut self, word: u64) -> Result<(), CryptoError> {
        if self.finalized {
            return Err(CryptoError::EngineFinalized);
        }
        if self.buffer.len() >= self.config.input_buffer_words {
            self.stats.words_dropped += 1;
            return Err(CryptoError::EngineOverflow { dropped: self.stats.words_dropped });
        }
        self.buffer.push_back(word);
        self.stats.max_buffer_occupancy = self.stats.max_buffer_occupancy.max(self.buffer.len());
        Ok(())
    }

    /// Advances the engine by one clock cycle.
    ///
    /// In a ready cycle one buffered word is absorbed; when the block fills the
    /// permutation starts and the engine is busy for the configured number of cycles.
    #[inline]
    pub fn step(&mut self) {
        self.stats.cycles += 1;
        if self.busy_remaining > 0 {
            self.busy_remaining -= 1;
            self.stats.busy_cycles += 1;
            return;
        }
        if let Some(word) = self.buffer.pop_front() {
            self.hasher.update(word.to_le_bytes());
            self.stats.words_absorbed += 1;
            self.words_in_block += 1;
            if self.words_in_block == self.config.words_per_block {
                self.words_in_block = 0;
                self.busy_remaining = self.config.busy_cycles;
                self.stats.permutations += 1;
            }
        }
    }

    /// Runs the engine until the input cache buffer is drained and the engine idle.
    ///
    /// Returns the number of cycles consumed.
    pub fn drain(&mut self) -> u64 {
        let start = self.stats.cycles;
        while !self.buffer.is_empty() || self.busy_remaining > 0 {
            self.step();
        }
        self.stats.cycles - start
    }

    /// Signals end-of-stream, drains any buffered words and returns the digest.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::EngineFinalized`] if called more than once.
    pub fn finalize(&mut self) -> Result<Digest, CryptoError> {
        if self.finalized {
            return Err(CryptoError::EngineFinalized);
        }
        self.drain();
        self.finalized = true;
        Ok(self.hasher.clone().finalize())
    }

    /// Returns `true` once the stream has been finalized.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// Finalizes many independent engines together: each is drained and
    /// end-of-stream marked exactly as by [`HashEngine::finalize`], but the
    /// final software digests are computed through the multi-lane sponge
    /// ([`Sha3_512::finalize_many`]), four absorptions per pass of the 4-way
    /// Keccak-f\[1600\] kernel.  Digests come back in engine order and are
    /// bit-identical to per-engine `finalize` calls.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::EngineFinalized`] if any engine was already
    /// finalized; no engine is modified in that case.
    pub fn finalize_many<'a>(
        engines: impl IntoIterator<Item = &'a mut HashEngine>,
    ) -> Result<Vec<Digest>, CryptoError> {
        let engines: Vec<&'a mut HashEngine> = engines.into_iter().collect();
        if engines.iter().any(|engine| engine.finalized) {
            return Err(CryptoError::EngineFinalized);
        }
        let mut hashers = Vec::with_capacity(engines.len());
        for engine in engines {
            engine.drain();
            engine.finalized = true;
            hashers.push(engine.hasher.clone());
        }
        Ok(Sha3_512::finalize_many(hashers))
    }
}

impl Default for HashEngine {
    fn default() -> Self {
        Self::new(HashEngineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sustainable input rate of the engine is 9 words every 12 cycles (9 absorb
    /// cycles followed by a 3-cycle busy window).  Feeding exactly that pattern must
    /// never overflow the small input cache buffer: this is the §5.3 claim that the
    /// buffer prevents dropping `(Src, Dest)` pairs that arrive while the padding
    /// buffer is full.
    #[test]
    fn sustained_peak_rate_never_drops() {
        let mut engine = HashEngine::default();
        let mut offered = Vec::new();
        let mut word = 0u64;
        for cycle in 0u64..12_000 {
            // 9 words on, 3 cycles off — the densest stream a correct controller
            // would ever forward.
            if cycle % 12 < 9 {
                engine.offer(word).expect("buffer must absorb the sustainable peak rate");
                offered.push(word);
                word += 1;
            }
            engine.step();
        }
        let stats = *engine.stats();
        assert_eq!(stats.words_dropped, 0);
        assert!(stats.max_buffer_occupancy <= engine.config().input_buffer_words);
        let digest = engine.finalize().unwrap();
        // Functional equivalence with the software hash over the same words.
        let mut reference = Sha3_512::new();
        for w in offered {
            reference.update(w.to_le_bytes());
        }
        assert_eq!(digest, reference.finalize());
    }

    #[test]
    fn block_timing_matches_paper() {
        // 9 absorb cycles then 3 busy cycles; offer/step interleaved because the
        // default input buffer only holds 4 words.
        let mut engine = HashEngine::default();
        let mut offered = 0u64;
        let mut busy_seen = 0u64;
        for _cycle in 0..20 {
            if offered < 9 {
                engine.offer(offered).unwrap();
                offered += 1;
            }
            if matches!(engine.status(), EngineStatus::Busy { .. }) {
                busy_seen += 1;
            }
            engine.step();
        }
        assert_eq!(engine.stats().permutations, 1);
        assert_eq!(busy_seen, BUSY_CYCLES);
    }

    #[test]
    fn overflow_is_reported() {
        let config = HashEngineConfig { input_buffer_words: 2, ..Default::default() };
        let mut engine = HashEngine::new(config);
        engine.offer(1).unwrap();
        engine.offer(2).unwrap();
        let err = engine.offer(3).unwrap_err();
        assert!(matches!(err, CryptoError::EngineOverflow { dropped: 1 }));
    }

    #[test]
    fn finalize_twice_is_an_error() {
        let mut engine = HashEngine::default();
        engine.offer(7).unwrap();
        engine.finalize().unwrap();
        assert!(matches!(engine.finalize(), Err(CryptoError::EngineFinalized)));
        assert!(matches!(engine.offer(8), Err(CryptoError::EngineFinalized)));
    }

    #[test]
    fn empty_stream_digest_matches_empty_sha3() {
        let mut engine = HashEngine::default();
        let digest = engine.finalize().unwrap();
        assert_eq!(digest, Sha3_512::digest(b""));
    }

    #[test]
    fn throughput_accounts_for_busy_cycles() {
        let mut engine = HashEngine::default();
        let mut word = 0u64;
        // Offer a word every other cycle (density 0.5, well under the 0.75 limit).
        for cycle in 0u64..360 {
            if cycle % 2 == 0 {
                engine.offer(word).unwrap();
                word += 1;
            }
            engine.step();
        }
        engine.drain();
        let stats = engine.stats();
        // 180 words => 20 permutations.
        assert_eq!(stats.permutations, 20);
        assert_eq!(stats.words_dropped, 0);
        // Throughput can never exceed the architectural maximum of 9 words per
        // 12 cycles and matches the offered density here.
        assert!(stats.throughput() <= 0.75 + 1e-9);
        assert!(stats.throughput() > 0.4);
    }

    #[test]
    fn finalize_many_matches_individual_finalizes() {
        // Batch sizes straddling the 4-lane boundary, engines with unequal
        // stream lengths and residual buffered words.
        for batch in 0usize..=9 {
            let mut batched: Vec<HashEngine> = (0..batch)
                .map(|e| {
                    let mut engine = HashEngine::default();
                    for word in 0..(7 * e as u64 + 3) {
                        while engine.buffered() == engine.config().input_buffer_words {
                            engine.step();
                        }
                        engine.offer(word ^ ((e as u64) << 32)).unwrap();
                        engine.step();
                    }
                    engine
                })
                .collect();
            let mut reference = batched.clone();
            let digests = HashEngine::finalize_many(batched.iter_mut()).unwrap();
            for (e, (digest, engine)) in digests.iter().zip(&mut reference).enumerate() {
                assert_eq!(digest, &engine.finalize().unwrap(), "batch {batch}, engine {e}");
            }
            for engine in &batched {
                assert!(engine.is_finalized());
            }
        }
    }

    #[test]
    fn finalize_many_rejects_already_finalized_engines() {
        let mut done = HashEngine::default();
        done.finalize().unwrap();
        let mut fresh = HashEngine::default();
        fresh.offer(1).unwrap();
        let err = HashEngine::finalize_many([&mut fresh, &mut done]).unwrap_err();
        assert!(matches!(err, CryptoError::EngineFinalized));
        // The fresh engine is untouched and still finalizes on its own.
        assert!(!fresh.is_finalized());
        assert!(fresh.finalize().is_ok());
    }

    #[test]
    fn bursty_input_survives_with_default_buffer() {
        // Two branch events can arrive back-to-back right when the engine goes busy;
        // the 4-word buffer must absorb such bursts at realistic branch densities
        // (at most one control-flow event per cycle from a single-issue core).
        let mut engine = HashEngine::default();
        let mut word = 0u64;
        for cycle in 0..5_000u64 {
            // Branch density 1/2: a word every other cycle plus occasional doubles.
            if cycle % 2 == 0 {
                engine.offer(word).unwrap();
                word += 1;
            }
            engine.step();
        }
        assert_eq!(engine.stats().words_dropped, 0);
    }
}

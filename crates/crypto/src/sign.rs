//! Attestation report signatures.
//!
//! The paper computes `R = sign(P ‖ N; sk)` over the program path `P = (A, L)` and
//! the verifier nonce `N`.  The reproduction offers two schemes behind the
//! [`Signer`]/[`Verifier`] traits:
//!
//! * [`HmacSigner`] — the default, a keyed MAC under the hardware-protected device
//!   key (symmetric trust between prover and verifier, as common for embedded
//!   attestation deployments);
//! * [`crate::lamport::LamportKeyPair`] — a hash-based one-time signature offering
//!   public verifiability, used by the extension example.

use crate::error::CryptoError;
use crate::keys::{DeviceKey, KeyRegister, VerificationKey};
use crate::sha3::Digest;

/// A signature (or MAC tag) over an attestation report.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Signature {
    bytes: Vec<u8>,
}

impl Signature {
    /// Wraps raw signature bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }

    /// Returns the signature bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Length of the signature in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if the signature is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl From<Digest> for Signature {
    fn from(digest: Digest) -> Self {
        Self { bytes: digest.as_bytes().to_vec() }
    }
}

/// Anything that can sign an attestation report on the prover.
pub trait Signer {
    /// Signs `message` and returns the signature.
    ///
    /// # Errors
    ///
    /// Implementations may fail, e.g. a one-time key that was already used.
    fn sign(&mut self, message: &[u8]) -> Result<Signature, CryptoError>;
}

/// Anything that can verify an attestation report on the verifier.
pub trait Verifier {
    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::SignatureMismatch`] if verification fails.
    fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError>;
}

/// The default signer: HMAC-SHA3-512 under the device key held in the key register.
#[derive(Debug, Clone)]
pub struct HmacSigner {
    register: KeyRegister,
}

impl HmacSigner {
    /// Creates a signer whose key lives in a hardware-protected register.
    pub fn new(key: DeviceKey) -> Self {
        Self { register: KeyRegister::provision(key) }
    }

    /// Number of reports signed so far.
    pub fn signatures_issued(&self) -> u64 {
        self.register.signatures_issued()
    }
}

impl Signer for HmacSigner {
    fn sign(&mut self, message: &[u8]) -> Result<Signature, CryptoError> {
        Ok(Signature::from(self.register.sign(message)))
    }
}

/// The verifier-side counterpart of [`HmacSigner`].
#[derive(Clone)]
pub struct HmacVerifier {
    key: VerificationKey,
    /// Keyed-but-empty MAC: cloning it skips the two key-schedule permutations
    /// on every verification, and a clone with a message prefix absorbed can be
    /// snapshotted and resumed (the verdict cache stores exactly that).
    base: crate::hmac::Hmac,
}

impl HmacVerifier {
    /// Creates a verifier from the verification key shared with the prover.
    pub fn new(key: VerificationKey) -> Self {
        let base = key.mac_base();
        Self { key, base }
    }

    /// Returns the keyed-but-empty base MAC (see [`VerificationKey::mac_base`]).
    pub fn mac_base(&self) -> &crate::hmac::Hmac {
        &self.base
    }
}

impl std::fmt::Debug for HmacVerifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The keyed base MAC's sponge state is key-equivalent material; only
        // the (already redacted) key field is shown.
        f.debug_struct("HmacVerifier").field("key", &self.key).finish()
    }
}

impl Verifier for HmacVerifier {
    fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let mut mac = self.base.clone();
        mac.update(message);
        if mac.finalize().ct_eq_bytes(signature.as_bytes()) {
            Ok(())
        } else {
            Err(CryptoError::SignatureMismatch)
        }
    }
}

// The sharded `VerifierService` and its worker pool share one verification-key
// handle (and the signer side may live behind an `Arc` in fleet simulations):
// verification is `&self` over plain owned data, so these types must stay
// thread-safe.  Keep that a compile-time guarantee of this crate, not an
// accident of field choice.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<HmacVerifier>();
    assert_send_sync::<VerificationKey>();
    assert_send_sync::<Signature>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmac_sign_verify_roundtrip() {
        let key = DeviceKey::from_seed("device-42");
        let vk = key.verification_key();
        let mut signer = HmacSigner::new(key);
        let verifier = HmacVerifier::new(vk);

        let sig = signer.sign(b"A || L || N").unwrap();
        assert!(verifier.verify(b"A || L || N", &sig).is_ok());
        assert!(matches!(
            verifier.verify(b"A || L || N'", &sig),
            Err(CryptoError::SignatureMismatch)
        ));
        assert_eq!(signer.signatures_issued(), 1);
    }

    #[test]
    fn tampered_signature_rejected() {
        let key = DeviceKey::from_seed("device-7");
        let verifier = HmacVerifier::new(key.verification_key());
        let mut signer = HmacSigner::new(key);
        let sig = signer.sign(b"payload").unwrap();
        let mut bytes = sig.as_bytes().to_vec();
        bytes[0] ^= 0x01;
        let forged = Signature::from_bytes(bytes);
        assert!(verifier.verify(b"payload", &forged).is_err());
    }

    #[test]
    fn signature_length_is_digest_length() {
        let mut signer = HmacSigner::new(DeviceKey::from_seed("x"));
        let sig = signer.sign(b"m").unwrap();
        assert_eq!(sig.len(), 64);
        assert!(!sig.is_empty());
    }
}

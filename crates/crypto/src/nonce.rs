//! Attestation nonces.
//!
//! The verifier includes a fresh nonce `N` in every attestation request; the prover
//! must include it under the signature so stale reports cannot be replayed (§3, §6.3).

/// Length of an attestation nonce in bytes.
pub const NONCE_BYTES: usize = 16;

/// A verifier-chosen freshness nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Nonce {
    bytes: [u8; NONCE_BYTES],
}

impl Nonce {
    /// Wraps raw nonce bytes.
    pub fn from_bytes(bytes: [u8; NONCE_BYTES]) -> Self {
        Self { bytes }
    }

    /// Derives a nonce from a counter (deterministic; handy for tests and examples).
    pub fn from_counter(counter: u64) -> Self {
        let mut bytes = [0u8; NONCE_BYTES];
        bytes[..8].copy_from_slice(&counter.to_le_bytes());
        Self { bytes }
    }

    /// Generates a nonce from any entropy source that fills a byte slice.
    ///
    /// This avoids a hard dependency on a specific RNG crate in the crypto substrate:
    /// callers (e.g. the verifier) pass a closure backed by `rand` or a counter.
    pub fn from_entropy(mut fill: impl FnMut(&mut [u8])) -> Self {
        let mut bytes = [0u8; NONCE_BYTES];
        fill(&mut bytes);
        Self { bytes }
    }

    /// Returns the nonce bytes.
    pub fn as_bytes(&self) -> &[u8; NONCE_BYTES] {
        &self.bytes
    }
}

impl std::fmt::Display for Nonce {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.bytes {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_nonces_are_distinct() {
        assert_ne!(Nonce::from_counter(1), Nonce::from_counter(2));
        assert_eq!(Nonce::from_counter(7), Nonce::from_counter(7));
    }

    #[test]
    fn entropy_closure_fills_all_bytes() {
        let n = Nonce::from_entropy(|buf| buf.copy_from_slice(&[0xAA; NONCE_BYTES]));
        assert_eq!(n.as_bytes(), &[0xAA; NONCE_BYTES]);
    }

    #[test]
    fn display_is_hex() {
        let n = Nonce::from_counter(0x01);
        let s = n.to_string();
        assert_eq!(s.len(), NONCE_BYTES * 2);
        assert!(s.starts_with("01"));
    }
}

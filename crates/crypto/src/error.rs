//! Error types for the cryptographic substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the cryptographic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A key had an invalid length.
    InvalidKeyLength {
        /// Expected length in bytes.
        expected: usize,
        /// Length that was actually provided.
        actual: usize,
    },
    /// A signature failed verification.
    SignatureMismatch,
    /// A one-time key was asked to sign a second message.
    OneTimeKeyReused,
    /// The streaming hash engine was fed input while busy and its buffer overflowed.
    EngineOverflow {
        /// Number of words dropped because the input buffer was full.
        dropped: u64,
    },
    /// The streaming hash engine was finalized twice or fed input after finalization.
    EngineFinalized,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidKeyLength { expected, actual } => {
                write!(f, "invalid key length: expected {expected} bytes, got {actual}")
            }
            CryptoError::SignatureMismatch => write!(f, "signature verification failed"),
            CryptoError::OneTimeKeyReused => {
                write!(f, "one-time signing key was already used")
            }
            CryptoError::EngineOverflow { dropped } => {
                write!(f, "hash engine input buffer overflowed, {dropped} words dropped")
            }
            CryptoError::EngineFinalized => {
                write!(f, "hash engine already finalized")
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            CryptoError::InvalidKeyLength { expected: 64, actual: 3 },
            CryptoError::SignatureMismatch,
            CryptoError::OneTimeKeyReused,
            CryptoError::EngineOverflow { dropped: 2 },
            CryptoError::EngineFinalized,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}

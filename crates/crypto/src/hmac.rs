//! HMAC over SHA-3-512.
//!
//! The LO-FAT prover's attestation report is authenticated under a device key kept in
//! hardware-protected storage.  This reproduction uses HMAC-SHA3-512 as the keyed
//! primitive (see `DESIGN.md` for the substitution rationale).  Note that SHA-3 does
//! not strictly need the HMAC construction (KMAC would suffice), but HMAC keeps the
//! verifier logic conventional and easy to audit.

use crate::sha3::{Digest, Sha3_512};

const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Incremental HMAC-SHA3-512.
///
/// # Example
///
/// ```
/// use lofat_crypto::Hmac;
///
/// let mut mac = Hmac::new(b"device-key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert!(Hmac::verify(b"device-key", b"message", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct Hmac {
    inner: Sha3_512,
    outer_key: [u8; Sha3_512::RATE_BYTES],
}

impl Hmac {
    /// Creates a new MAC instance keyed with `key`.
    ///
    /// Keys longer than the hash rate are first hashed, as prescribed by RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut block = [0u8; Sha3_512::RATE_BYTES];
        if key.len() > Sha3_512::RATE_BYTES {
            let digest = Sha3_512::digest(key);
            block[..digest.len()].copy_from_slice(digest.as_bytes());
        } else {
            block[..key.len()].copy_from_slice(key);
        }

        let mut inner_key = [0u8; Sha3_512::RATE_BYTES];
        let mut outer_key = [0u8; Sha3_512::RATE_BYTES];
        for i in 0..Sha3_512::RATE_BYTES {
            inner_key[i] = block[i] ^ IPAD;
            outer_key[i] = block[i] ^ OPAD;
        }

        let mut inner = Sha3_512::new();
        inner.update(inner_key);
        Self { inner, outer_key }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: impl AsRef<[u8]>) {
        self.inner.update(data);
    }

    /// Finalizes the MAC and returns the 64-byte tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha3_512::new();
        outer.update(self.outer_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// One-shot MAC computation.
    pub fn mac(key: &[u8], message: &[u8]) -> Digest {
        let mut h = Self::new(key);
        h.update(message);
        h.finalize()
    }

    /// Verifies that `tag` is the MAC of `message` under `key`.
    pub fn verify(key: &[u8], message: &[u8], tag: &Digest) -> bool {
        Self::mac(key, message).ct_eq(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_roundtrip() {
        let tag = Hmac::mac(b"key", b"hello world");
        assert!(Hmac::verify(b"key", b"hello world", &tag));
        assert!(!Hmac::verify(b"key", b"hello worlD", &tag));
        assert!(!Hmac::verify(b"kex", b"hello world", &tag));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut m = Hmac::new(b"k");
        m.update(b"ab");
        m.update(b"cdef");
        assert_eq!(m.finalize(), Hmac::mac(b"k", b"abcdef"));
    }

    #[test]
    fn long_keys_are_hashed() {
        let long_key = vec![0x42u8; 500];
        let tag = Hmac::mac(&long_key, b"msg");
        assert!(Hmac::verify(&long_key, b"msg", &tag));
        // A long key must not collide with its own hash used directly (different ipad mix).
        let hashed = Sha3_512::digest(&long_key);
        assert_ne!(tag, Hmac::mac(hashed.as_bytes(), b"other"));
    }

    #[test]
    fn empty_message_and_key() {
        let tag = Hmac::mac(b"", b"");
        assert_eq!(tag.len(), 64);
        assert!(Hmac::verify(b"", b"", &tag));
    }

    #[test]
    fn tags_differ_under_different_keys() {
        assert_ne!(Hmac::mac(b"k1", b"m"), Hmac::mac(b"k2", b"m"));
    }
}

//! HMAC over SHA-3-512.
//!
//! The LO-FAT prover's attestation report is authenticated under a device key kept in
//! hardware-protected storage.  This reproduction uses HMAC-SHA3-512 as the keyed
//! primitive (see `DESIGN.md` for the substitution rationale).  Note that SHA-3 does
//! not strictly need the HMAC construction (KMAC would suffice), but HMAC keeps the
//! verifier logic conventional and easy to audit.

use crate::sha3::{Digest, Sha3_512};

const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Incremental HMAC-SHA3-512.
///
/// # Example
///
/// ```
/// use lofat_crypto::Hmac;
///
/// let mut mac = Hmac::new(b"device-key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert!(Hmac::verify(b"device-key", b"message", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct Hmac {
    inner: Sha3_512,
    /// Outer hash with the `opad`-masked key block already absorbed.
    ///
    /// Keeping the keyed outer state (instead of the raw key block) makes every
    /// clone-and-finalize of a reused keyed instance one permutation cheaper,
    /// and leaves the outer pass as a fixed-shape single-block hash that
    /// [`Hmac::finalize_many`] can run through the 4-way permutation.
    outer: Sha3_512,
}

impl Hmac {
    /// Creates a new MAC instance keyed with `key`.
    ///
    /// Keys longer than the hash rate are first hashed, as prescribed by RFC 2104.
    /// Keying costs two permutations; cloning an already-keyed instance (e.g. a
    /// verifier's per-fleet-key base MAC) skips both.
    pub fn new(key: &[u8]) -> Self {
        let mut block = [0u8; Sha3_512::RATE_BYTES];
        if key.len() > Sha3_512::RATE_BYTES {
            let digest = Sha3_512::digest(key);
            block[..digest.len()].copy_from_slice(digest.as_bytes());
        } else {
            block[..key.len()].copy_from_slice(key);
        }

        let mut inner_key = [0u8; Sha3_512::RATE_BYTES];
        let mut outer_key = [0u8; Sha3_512::RATE_BYTES];
        for i in 0..Sha3_512::RATE_BYTES {
            inner_key[i] = block[i] ^ IPAD;
            outer_key[i] = block[i] ^ OPAD;
        }

        let mut inner = Sha3_512::new();
        inner.update(inner_key);
        let mut outer = Sha3_512::new();
        outer.update(outer_key);
        Self { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: impl AsRef<[u8]>) {
        self.inner.update(data);
    }

    /// Finalizes the MAC and returns the 64-byte tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// Finalizes many in-flight MACs at once through the 4-way permutation.
    ///
    /// Inner hashes finalize in packed groups of four regardless of how much
    /// each has absorbed; the outer passes (one key block + one 64-byte tag
    /// each) then run in perfect lockstep — two packed permutations per four
    /// MACs where the scalar path needs eight.  Tags are bit-identical to
    /// [`Hmac::finalize`] per instance.
    pub fn finalize_many(macs: Vec<Hmac>) -> Vec<Digest> {
        let (inners, outers): (Vec<_>, Vec<_>) =
            macs.into_iter().map(|m| (m.inner, m.outer)).unzip();
        let inner_tags = Sha3_512::finalize_many(inners);
        let mut keyed = outers;
        for (outer, tag) in keyed.iter_mut().zip(&inner_tags) {
            outer.update(tag.as_bytes());
        }
        Sha3_512::finalize_many(keyed)
    }

    /// One-shot MAC computation.
    pub fn mac(key: &[u8], message: &[u8]) -> Digest {
        let mut h = Self::new(key);
        h.update(message);
        h.finalize()
    }

    /// MACs many messages under one key, batching both the message absorption
    /// (lockstep groups of four) and the finalization through the 4-way
    /// permutation.  Tags are bit-identical to [`Hmac::mac`] per message.
    pub fn mac_many<T: AsRef<[u8]>>(key: &[u8], messages: &[T]) -> Vec<Digest> {
        let base = Self::new(key);
        let mut macs = Vec::with_capacity(messages.len());
        let mut chunks = messages.chunks_exact(4);
        for group in &mut chunks {
            let inners = crate::multilane::absorb4_from(
                &base.inner.sponge,
                [group[0].as_ref(), group[1].as_ref(), group[2].as_ref(), group[3].as_ref()],
            );
            for sponge in inners {
                macs.push(Self { inner: Sha3_512 { sponge }, outer: base.outer.clone() });
            }
        }
        for message in chunks.remainder() {
            let mut mac = base.clone();
            mac.update(message.as_ref());
            macs.push(mac);
        }
        Self::finalize_many(macs)
    }

    /// Verifies that `tag` is the MAC of `message` under `key`.
    pub fn verify(key: &[u8], message: &[u8], tag: &Digest) -> bool {
        Self::mac(key, message).ct_eq(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_roundtrip() {
        let tag = Hmac::mac(b"key", b"hello world");
        assert!(Hmac::verify(b"key", b"hello world", &tag));
        assert!(!Hmac::verify(b"key", b"hello worlD", &tag));
        assert!(!Hmac::verify(b"kex", b"hello world", &tag));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut m = Hmac::new(b"k");
        m.update(b"ab");
        m.update(b"cdef");
        assert_eq!(m.finalize(), Hmac::mac(b"k", b"abcdef"));
    }

    #[test]
    fn long_keys_are_hashed() {
        let long_key = vec![0x42u8; 500];
        let tag = Hmac::mac(&long_key, b"msg");
        assert!(Hmac::verify(&long_key, b"msg", &tag));
        // A long key must not collide with its own hash used directly (different ipad mix).
        let hashed = Sha3_512::digest(&long_key);
        assert_ne!(tag, Hmac::mac(hashed.as_bytes(), b"other"));
    }

    #[test]
    fn empty_message_and_key() {
        let tag = Hmac::mac(b"", b"");
        assert_eq!(tag.len(), 64);
        assert!(Hmac::verify(b"", b"", &tag));
    }

    #[test]
    fn tags_differ_under_different_keys() {
        assert_ne!(Hmac::mac(b"k1", b"m"), Hmac::mac(b"k2", b"m"));
    }

    #[test]
    fn finalize_many_matches_scalar_finalize() {
        // In-flight MACs at assorted absorb offsets, counts 0..=9 to cover
        // full groups and every ragged tail size.
        for count in 0..=9usize {
            let macs: Vec<Hmac> = (0..count)
                .map(|i| {
                    let mut m = Hmac::new(b"fleet-key");
                    m.update(vec![i as u8; i * 29]);
                    m
                })
                .collect();
            let tags = Hmac::finalize_many(macs);
            for (i, tag) in tags.iter().enumerate() {
                assert_eq!(tag, &Hmac::mac(b"fleet-key", &vec![i as u8; i * 29]));
            }
        }
    }

    #[test]
    fn mac_many_matches_scalar_mac() {
        let messages: Vec<Vec<u8>> =
            (0..7u32).map(|i| (0..(i * 53)).map(|j| (j ^ i) as u8).collect()).collect();
        let tags = Hmac::mac_many(b"device-key", &messages);
        assert_eq!(tags.len(), messages.len());
        for (msg, tag) in messages.iter().zip(&tags) {
            assert_eq!(tag, &Hmac::mac(b"device-key", msg));
        }
    }
}

//! Cryptographic substrate for the LO-FAT control-flow attestation reproduction.
//!
//! The LO-FAT hardware (Dessouky et al., DAC 2017) relies on two cryptographic
//! building blocks that this crate re-implements from scratch:
//!
//! * a **SHA-3-512 hash engine** (the paper uses an opencores Keccak core with a
//!   576-bit rate that absorbs one 64-bit `(Src, Dest)` pair per clock cycle), and
//! * a **hardware-protected signing key** used to produce the attestation report
//!   `R = sign(A ‖ L ‖ N)`.
//!
//! Besides the plain software implementations ([`Sha3_512`], [`Hmac`]), the crate
//! provides [`hash_engine::HashEngine`], a *cycle-level* model of the streaming
//! hardware engine: it absorbs one 64-bit word per cycle, needs nine cycles to fill
//! its 576-bit rate buffer and is then busy for three cycles while the permutation
//! runs — exactly the behaviour §5.3 of the paper describes and the behaviour the
//! LO-FAT hash-engine controller has to buffer around.
//!
//! # Example
//!
//! ```
//! use lofat_crypto::{Sha3_512, Digest};
//!
//! let mut hasher = Sha3_512::new();
//! hasher.update(b"abc");
//! let digest = hasher.finalize();
//! assert_eq!(digest.as_bytes().len(), 64);
//! ```
//!
//! The "signature" used by the simulated prover is an HMAC-SHA3-512 under a device
//! key held in a [`keys::KeyRegister`]; see `DESIGN.md` for why this substitution
//! preserves the security argument against the paper's software-only adversary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod hash_engine;
pub mod hmac;
pub mod keccak;
pub mod keccak4;
pub mod keys;
pub mod lamport;
mod multilane;
pub mod nonce;
pub mod sha3;
pub mod sign;

pub use error::CryptoError;
pub use hash_engine::{EngineStatus, HashEngine, HashEngineConfig, HashEngineStats};
pub use hmac::Hmac;
pub use keccak4::KeccakState4;
pub use keys::{DeviceKey, KeyRegister, VerificationKey};
pub use lamport::{LamportKeyPair, LamportPublicKey};
/// The SIMD kernel tier the packed 4-way Keccak permutation dispatches to on
/// this host (`"avx512"`, `"avx2"` or `"scalar"`) — recorded in bench
/// documents so throughput numbers can be compared like for like.
pub use lofat_simd::active_tier as simd_tier;
pub use nonce::Nonce;
pub use sha3::{Digest, Sha3_256, Sha3_512};
pub use sign::{HmacSigner, Signature, Signer, Verifier as SignatureVerifier};

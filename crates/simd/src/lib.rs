//! Runtime-dispatched SIMD kernels for the LO-FAT workspace.
//!
//! The rest of the workspace is `forbid(unsafe_code)`; this crate is the one
//! place that touches `core::arch` intrinsics, and it exposes only safe,
//! shape-checked entry points.  Today it holds a single kernel: the 4-way
//! Keccak-f\[1600\] permutation behind `lofat-crypto`'s batch hashing layer.
//!
//! # Why explicit intrinsics
//!
//! The portable `[u64; 4]`-per-lane formulation in `lofat_crypto::keccak4`
//! autovectorizes poorly: without AVX-512 there is no 64-bit vector rotate
//! (`vprolq`), and LLVM's cost model either scalarizes the packed round
//! (spilling all 25 packs to the stack) or — with `-C target-cpu=native` —
//! SLP-vectorizes the *scalar* round into something far slower.  Writing the
//! packed round with explicit intrinsics sidesteps the cost model entirely:
//! each tier is compiled exactly as written, inside a `#[target_feature]`
//! function, and selected once at runtime with
//! [`is_x86_feature_detected!`](std::arch::is_x86_feature_detected).
//!
//! # Tiers
//!
//! | tier     | requirements          | key instructions                                  |
//! |----------|-----------------------|---------------------------------------------------|
//! | `avx512` | AVX-512 F + VL        | `vprolq` (ρ), `vpternlogq` (θ parity and χ)       |
//! | `avx2`   | AVX2                  | shift+or rotates, `vpandn`+`vpxor` χ              |
//! | `scalar` | anything else         | none — [`keccak_f1600_x4`] returns `false`        |
//!
//! All tiers are bit-identical to the scalar permutation; the tests here pin
//! every available tier against a portable reference round, and the
//! `lofat-crypto` NIST-vector suite pins the dispatched result against the
//! FIPS 202 golden vectors.
//!
//! Set `LOFAT_SIMD=scalar` (or `avx2`) in the environment to cap the tier
//! below what the host supports — used by benches to measure the portable
//! fallback on SIMD-capable hosts.  The variable is read once, at the first
//! dispatch.

#![warn(missing_docs)]

/// Number of independent Keccak states processed per packed permutation.
pub const LANES: usize = 4;

/// Number of 64-bit lanes in one Keccak-f\[1600\] state.
pub const STATE_LANES: usize = 25;

const ROUNDS: usize = 24;

/// Keccak-f\[1600\] round constants (FIPS 202 §3.2.5).
const ROUND_CONSTANTS: [u64; ROUNDS] = [
    0x0000_0000_0000_0001,
    0x0000_0000_0000_8082,
    0x8000_0000_0000_808a,
    0x8000_0000_8000_8000,
    0x0000_0000_0000_808b,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8009,
    0x0000_0000_0000_008a,
    0x0000_0000_0000_0088,
    0x0000_0000_8000_8009,
    0x0000_0000_8000_000a,
    0x0000_0000_8000_808b,
    0x8000_0000_0000_008b,
    0x8000_0000_0000_8089,
    0x8000_0000_0000_8003,
    0x8000_0000_0000_8002,
    0x8000_0000_0000_0080,
    0x0000_0000_0000_800a,
    0x8000_0000_8000_000a,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8080,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8008,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Tier {
    Scalar,
    Avx2,
    Avx512,
}

#[cfg(target_arch = "x86_64")]
fn tier() -> Tier {
    use std::sync::OnceLock;
    static TIER: OnceLock<Tier> = OnceLock::new();
    *TIER.get_or_init(|| {
        let detected = if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            Tier::Avx512
        } else if std::arch::is_x86_feature_detected!("avx2") {
            Tier::Avx2
        } else {
            Tier::Scalar
        };
        let cap = match std::env::var("LOFAT_SIMD").ok().as_deref() {
            Some("scalar") | Some("off") => Tier::Scalar,
            Some("avx2") => Tier::Avx2,
            _ => Tier::Avx512,
        };
        detected.min(cap)
    })
}

#[cfg(not(target_arch = "x86_64"))]
fn tier() -> Tier {
    Tier::Scalar
}

/// Name of the kernel tier the dispatcher selected on this host:
/// `"avx512"`, `"avx2"` or `"scalar"`.
///
/// Recorded in bench documents so gates can refuse to compare SIMD-dependent
/// rows across hosts with different capabilities.
pub fn active_tier() -> &'static str {
    match tier() {
        Tier::Avx512 => "avx512",
        Tier::Avx2 => "avx2",
        Tier::Scalar => "scalar",
    }
}

/// Runs Keccak-f\[1600\] on four interleaved states (lane `i` of the packed
/// state is `[u64; 4]` holding lane `i` of slots 0–3) with the best available
/// kernel.
///
/// Returns `false` — leaving `lanes` untouched — when the host supports no
/// SIMD tier; the caller is expected to fall back to scalar permutations.
pub fn keccak_f1600_x4(lanes: &mut [[u64; LANES]; STATE_LANES]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        match tier() {
            // SAFETY: the dispatcher verified the required target features.
            Tier::Avx512 => unsafe { x86::permute4_avx512(lanes) },
            // SAFETY: as above — AVX2 was detected at runtime.
            Tier::Avx2 => unsafe { x86::permute4_avx2(lanes) },
            Tier::Scalar => return false,
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = lanes;
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The x86-64 kernels.  Both tiers expand the same round body (the macro
    //! below) over tier-specific helpers, so the dataflow — θ fused into ρ/π,
    //! baked rotation constants, π destinations named `b{nx + 5 * ny}` — is
    //! identical between tiers and matches the scalar unroll in
    //! `lofat_crypto::keccak` operation for operation.

    use super::{LANES, ROUND_CONSTANTS, STATE_LANES};
    use core::arch::x86_64::*;

    /// One packed Keccak round over `$a: [__m256i; 25]` with `$rcv` the
    /// broadcast round constant.  Helper names (`x2`, `x5`, `rol`, `xr`,
    /// `chi`) resolve in the expanding module, so each tier supplies its own
    /// instruction selection.
    macro_rules! round4 {
        ($a:ident, $rcv:ident) => {{
            // θ (theta): column parities and per-column mix values.
            let c0 = x5($a[0], $a[5], $a[10], $a[15], $a[20]);
            let c1 = x5($a[1], $a[6], $a[11], $a[16], $a[21]);
            let c2 = x5($a[2], $a[7], $a[12], $a[17], $a[22]);
            let c3 = x5($a[3], $a[8], $a[13], $a[18], $a[23]);
            let c4 = x5($a[4], $a[9], $a[14], $a[19], $a[24]);
            let d0 = x2(c4, rol::<1>(c1));
            let d1 = x2(c0, rol::<1>(c2));
            let d2 = x2(c1, rol::<1>(c3));
            let d3 = x2(c2, rol::<1>(c4));
            let d4 = x2(c3, rol::<1>(c0));

            // θ-apply + ρ + π, destinations named `b{nx + 5 * ny}`.
            let b0 = x2($a[0], d0);
            let b10 = xr::<1>($a[1], d1);
            let b20 = xr::<62>($a[2], d2);
            let b5 = xr::<28>($a[3], d3);
            let b15 = xr::<27>($a[4], d4);
            let b16 = xr::<36>($a[5], d0);
            let b1 = xr::<44>($a[6], d1);
            let b11 = xr::<6>($a[7], d2);
            let b21 = xr::<55>($a[8], d3);
            let b6 = xr::<20>($a[9], d4);
            let b7 = xr::<3>($a[10], d0);
            let b17 = xr::<10>($a[11], d1);
            let b2 = xr::<43>($a[12], d2);
            let b12 = xr::<25>($a[13], d3);
            let b22 = xr::<39>($a[14], d4);
            let b23 = xr::<41>($a[15], d0);
            let b8 = xr::<45>($a[16], d1);
            let b18 = xr::<15>($a[17], d2);
            let b3 = xr::<21>($a[18], d3);
            let b13 = xr::<8>($a[19], d4);
            let b14 = xr::<18>($a[20], d0);
            let b24 = xr::<2>($a[21], d1);
            let b9 = xr::<61>($a[22], d2);
            let b19 = xr::<56>($a[23], d3);
            let b4 = xr::<14>($a[24], d4);

            // χ (chi) row by row, ι (iota) folded into lane 0.
            $a[0] = x2(chi(b0, b1, b2), $rcv);
            $a[1] = chi(b1, b2, b3);
            $a[2] = chi(b2, b3, b4);
            $a[3] = chi(b3, b4, b0);
            $a[4] = chi(b4, b0, b1);
            $a[5] = chi(b5, b6, b7);
            $a[6] = chi(b6, b7, b8);
            $a[7] = chi(b7, b8, b9);
            $a[8] = chi(b8, b9, b5);
            $a[9] = chi(b9, b5, b6);
            $a[10] = chi(b10, b11, b12);
            $a[11] = chi(b11, b12, b13);
            $a[12] = chi(b12, b13, b14);
            $a[13] = chi(b13, b14, b10);
            $a[14] = chi(b14, b10, b11);
            $a[15] = chi(b15, b16, b17);
            $a[16] = chi(b16, b17, b18);
            $a[17] = chi(b17, b18, b19);
            $a[18] = chi(b18, b19, b15);
            $a[19] = chi(b19, b15, b16);
            $a[20] = chi(b20, b21, b22);
            $a[21] = chi(b21, b22, b23);
            $a[22] = chi(b22, b23, b24);
            $a[23] = chi(b23, b24, b20);
            $a[24] = chi(b24, b20, b21);
        }};
    }

    /// Loads the packed state, runs 24 rounds with the expanding module's
    /// helpers, stores it back.
    macro_rules! permute4_body {
        ($lanes:ident) => {{
            let ptr = $lanes.as_mut_ptr().cast::<__m256i>();
            let mut a = [_mm256_setzero_si256(); STATE_LANES];
            for (i, slot) in a.iter_mut().enumerate() {
                // SAFETY: `[[u64; 4]; 25]` is 25 contiguous unaligned 256-bit
                // packs; `i < 25` stays in bounds.
                *slot = unsafe { _mm256_loadu_si256(ptr.add(i)) };
            }
            for rc in ROUND_CONSTANTS {
                let rcv = _mm256_set1_epi64x(rc as i64);
                round4!(a, rcv);
            }
            for (i, slot) in a.iter().enumerate() {
                // SAFETY: as above.
                unsafe { _mm256_storeu_si256(ptr.add(i), *slot) };
            }
        }};
    }

    pub(super) use avx2::permute4_avx2;
    pub(super) use avx512::permute4_avx512;

    mod avx512 {
        //! AVX-512 (F + VL) tier: native 64-bit rotate and three-input logic
        //! on 256-bit registers.  VL also unlocks ymm16–31, enough to hold
        //! the whole 25-pack state plus temporaries without spilling.

        use super::*;

        #[inline]
        #[target_feature(enable = "avx2,avx512f,avx512vl")]
        fn x2(a: __m256i, b: __m256i) -> __m256i {
            _mm256_xor_si256(a, b)
        }

        /// Three-way XOR in one `vpternlogq` (truth table 0x96 = a ^ b ^ c).
        #[inline]
        #[target_feature(enable = "avx2,avx512f,avx512vl")]
        fn x3(a: __m256i, b: __m256i, c: __m256i) -> __m256i {
            _mm256_ternarylogic_epi64::<0x96>(a, b, c)
        }

        #[inline]
        #[target_feature(enable = "avx2,avx512f,avx512vl")]
        fn x5(a: __m256i, b: __m256i, c: __m256i, d: __m256i, e: __m256i) -> __m256i {
            x3(x3(a, b, c), d, e)
        }

        /// `vprolq` — the rotate AVX2 lacks.
        #[inline]
        #[target_feature(enable = "avx2,avx512f,avx512vl")]
        fn rol<const R: i32>(a: __m256i) -> __m256i {
            _mm256_rol_epi64::<R>(a)
        }

        /// θ-apply + ρ in one step: `rot(a ^ d)`.
        #[inline]
        #[target_feature(enable = "avx2,avx512f,avx512vl")]
        fn xr<const R: i32>(a: __m256i, d: __m256i) -> __m256i {
            rol::<R>(x2(a, d))
        }

        /// χ in one `vpternlogq` (truth table 0xD2 = b ^ (!c & d)).
        #[inline]
        #[target_feature(enable = "avx2,avx512f,avx512vl")]
        fn chi(b: __m256i, c: __m256i, d: __m256i) -> __m256i {
            _mm256_ternarylogic_epi64::<0xD2>(b, c, d)
        }

        /// 4-way Keccak-f\[1600\], AVX-512 tier.
        ///
        /// Safe to call only after `avx512f` and `avx512vl` have been
        /// runtime-detected (the dispatcher's job).
        #[target_feature(enable = "avx2,avx512f,avx512vl")]
        pub(in super::super) fn permute4_avx512(lanes: &mut [[u64; LANES]; STATE_LANES]) {
            permute4_body!(lanes);
        }
    }

    mod avx2 {
        //! AVX2 tier: rotates via shift pairs (`vpsllq`/`vpsrlq` + `vpor`),
        //! χ via `vpandn` + `vpxor`.  Slower than the AVX-512 tier but still
        //! four states per pass on any post-2013 x86-64.

        use super::*;

        #[inline]
        #[target_feature(enable = "avx2")]
        fn x2(a: __m256i, b: __m256i) -> __m256i {
            _mm256_xor_si256(a, b)
        }

        #[inline]
        #[target_feature(enable = "avx2")]
        fn x5(a: __m256i, b: __m256i, c: __m256i, d: __m256i, e: __m256i) -> __m256i {
            x2(x2(x2(a, b), x2(c, d)), e)
        }

        /// Rotate via shift pair.  The shift counts are value-level (`R` and
        /// `64 - R` through an xmm register) because stable Rust cannot form
        /// the `64 - R` const generic; LLVM folds them back to immediates.
        #[inline]
        #[target_feature(enable = "avx2")]
        fn rol<const R: i32>(a: __m256i) -> __m256i {
            _mm256_or_si256(
                _mm256_sll_epi64(a, _mm_cvtsi32_si128(R)),
                _mm256_srl_epi64(a, _mm_cvtsi32_si128(64 - R)),
            )
        }

        #[inline]
        #[target_feature(enable = "avx2")]
        fn xr<const R: i32>(a: __m256i, d: __m256i) -> __m256i {
            rol::<R>(x2(a, d))
        }

        /// χ: `b ^ (!c & d)` via `vpandn` (which computes `!c & d`).
        #[inline]
        #[target_feature(enable = "avx2")]
        fn chi(b: __m256i, c: __m256i, d: __m256i) -> __m256i {
            _mm256_xor_si256(b, _mm256_andnot_si256(c, d))
        }

        /// 4-way Keccak-f\[1600\], AVX2 tier.
        ///
        /// Safe to call only after `avx2` has been runtime-detected.
        #[target_feature(enable = "avx2")]
        pub(in super::super) fn permute4_avx2(lanes: &mut [[u64; LANES]; STATE_LANES]) {
            permute4_body!(lanes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Straightforward portable Keccak-f[1600] (loop formulation, one state):
    /// the in-crate oracle the kernels are pinned against.
    fn reference_permute(lanes: &mut [u64; STATE_LANES]) {
        const RHO: [[u32; 5]; 5] = [
            [0, 36, 3, 41, 18],
            [1, 44, 10, 45, 2],
            [62, 6, 43, 15, 61],
            [28, 55, 25, 21, 56],
            [27, 20, 39, 8, 14],
        ];
        for rc in ROUND_CONSTANTS {
            let mut c = [0u64; 5];
            for x in 0..5 {
                c[x] = (0..5).fold(0, |acc, y| acc ^ lanes[x + 5 * y]);
            }
            let mut d = [0u64; 5];
            for x in 0..5 {
                d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            }
            let mut b = [0u64; STATE_LANES];
            for x in 0..5 {
                for y in 0..5 {
                    let rotated = (lanes[x + 5 * y] ^ d[x]).rotate_left(RHO[x][y]);
                    b[y + 5 * ((2 * x + 3 * y) % 5)] = rotated;
                }
            }
            for x in 0..5 {
                for y in 0..5 {
                    lanes[x + 5 * y] =
                        b[x + 5 * y] ^ (!b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
                }
            }
            lanes[0] ^= rc;
        }
    }

    fn splitmix(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_packed(seed: &mut u64) -> [[u64; LANES]; STATE_LANES] {
        std::array::from_fn(|_| std::array::from_fn(|_| splitmix(seed)))
    }

    fn reference_packed(mut packed: [[u64; LANES]; STATE_LANES]) -> [[u64; LANES]; STATE_LANES] {
        // `slot` indexes the *inner* dimension of `packed`, so an iterator
        // over the outer one cannot replace the range loop.
        #[allow(clippy::needless_range_loop)]
        for slot in 0..LANES {
            let mut lanes = std::array::from_fn(|i| packed[i][slot]);
            reference_permute(&mut lanes);
            for (i, lane) in lanes.iter().enumerate() {
                packed[i][slot] = *lane;
            }
        }
        packed
    }

    #[test]
    fn reference_zero_state_known_answer() {
        let mut lanes = [0u64; STATE_LANES];
        reference_permute(&mut lanes);
        assert_eq!(lanes[0], 0xF125_8F79_40E1_DDE7);
    }

    #[test]
    fn dispatched_kernel_matches_reference() {
        let mut seed = 0x5EED;
        for trial in 0..64 {
            let packed = random_packed(&mut seed);
            let mut kernel = packed;
            if !keccak_f1600_x4(&mut kernel) {
                assert_eq!(kernel, packed, "scalar tier must leave the state untouched");
                return;
            }
            assert_eq!(kernel, reference_packed(packed), "trial {trial}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn every_supported_tier_matches_reference() {
        type Kernel = fn(&mut [[u64; LANES]; STATE_LANES]);
        let mut tiers: Vec<(&str, Kernel)> = Vec::new();
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            // SAFETY: feature presence checked on the line above.
            tiers.push(("avx512", |lanes| unsafe { x86::permute4_avx512(lanes) }));
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence checked on the line above.
            tiers.push(("avx2", |lanes| unsafe { x86::permute4_avx2(lanes) }));
        }
        let mut seed = 0xFACE;
        for (name, kernel) in tiers {
            for trial in 0..64 {
                let packed = random_packed(&mut seed);
                let mut out = packed;
                kernel(&mut out);
                assert_eq!(out, reference_packed(packed), "{name} trial {trial}");
            }
        }
    }

    #[test]
    fn active_tier_is_a_known_name() {
        assert!(["avx512", "avx2", "scalar"].contains(&active_tier()));
    }
}

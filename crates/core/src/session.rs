//! Sans-I/O protocol session state machines.
//!
//! [`VerifierSession`] and [`ProverSession`] model one Fig. 2 round trip as
//! explicit state machines that consume and produce [`crate::wire`] envelopes
//! instead of sharing Rust objects.  Neither performs I/O: callers move the
//! encoded bytes over whatever transport they have (an in-process call, a
//! socket, a radio link) and feed them back in.  This is what makes
//! concurrency, loss, replay and remote deployment representable — see
//! [`crate::service::VerifierService`] for the sharded multi-session
//! front-end (and [`crate::pool::ParallelVerifier`] for its worker pool) and
//! [`crate::protocol::run_attestation`] for the classic in-process adapter,
//! now a thin wrapper over these sessions.
//!
//! ```text
//!  VerifierSession                              ProverSession
//!  AwaitingEvidence ── challenge_envelope() ──▶ respond(…)
//!        │                                         │ Prover::attest*
//!        │ ◀───────── evidence envelope ───────────┘
//!  process_evidence(…)
//!        │
//!     Decided  (SessionOutcome: accepted / rejected + VerdictMsg)
//! ```

use crate::error::LofatError;
use crate::prover::{Adversary, NoAdversary, Prover, ProverRun};
use crate::verifier::{Challenge, RejectionReason, Verdict, Verifier};
use crate::wire::{
    code, ChallengeMsg, Envelope, EvidenceMsg, Message, SessionId, VerdictMsg, WireError,
    WIRE_VERSION,
};
use lofat_crypto::Nonce;
use std::fmt;

/// Lifecycle of a [`VerifierSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum SessionState {
    /// The challenge is outstanding; evidence has not arrived.
    AwaitingEvidence,
    /// A verdict was reached (accepted, rejected or expired); the session is
    /// spent and further evidence is refused.
    Decided,
}

/// Session-level protocol errors: failures of the *interaction*, as opposed to
/// report rejections, which are verdicts (see [`SessionDecision::Rejected`]).
#[derive(Debug)]
#[non_exhaustive]
pub enum SessionError {
    /// The envelope names a different session.
    WrongSession {
        /// The session that received the envelope.
        expected: SessionId,
        /// The session the envelope was addressed to.
        found: SessionId,
    },
    /// The session already reached a verdict.
    AlreadyDecided {
        /// The spent session.
        id: SessionId,
    },
    /// The session's deadline passed before the evidence arrived.
    Expired {
        /// The expired session.
        id: SessionId,
        /// Its deadline on the verifier clock.
        deadline_cycles: u64,
        /// The clock value at submission.
        now_cycles: u64,
    },
    /// The envelope carried a message kind the state machine cannot accept.
    UnexpectedMessage {
        /// The kind the session was waiting for.
        expected: &'static str,
        /// The kind found in the envelope.
        found: &'static str,
    },
    /// A challenge named a different program than this prover attests; the
    /// prover refuses before running (the report could only be rejected).
    ProgramMismatch {
        /// The program this prover is bound to.
        expected: String,
        /// The program the challenge named.
        found: String,
    },
    /// The envelope failed wire-level validation.
    Wire(WireError),
    /// The verifier itself failed (e.g. the golden replay could not execute);
    /// this is an infrastructure failure, not a verdict on the prover.
    Verifier(Box<LofatError>),
}

impl SessionError {
    /// The stable numeric code a service reports for this error ([`code`]).
    pub fn code(&self) -> u16 {
        match self {
            SessionError::WrongSession { .. } => code::UNKNOWN_SESSION,
            SessionError::AlreadyDecided { .. } => code::SESSION_DECIDED,
            SessionError::Expired { .. } => code::SESSION_EXPIRED,
            SessionError::UnexpectedMessage { .. } => code::UNEXPECTED_MESSAGE,
            SessionError::ProgramMismatch { .. } => code::PROGRAM_ID_MISMATCH,
            SessionError::Wire(e) => e.code(),
            SessionError::Verifier(_) => code::INTERNAL_ERROR,
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::WrongSession { expected, found } => {
                write!(f, "envelope for {found} delivered to {expected}")
            }
            SessionError::AlreadyDecided { id } => {
                write!(f, "{id} already reached a verdict")
            }
            SessionError::Expired { id, deadline_cycles, now_cycles } => write!(
                f,
                "{id} expired: deadline was cycle {deadline_cycles}, evidence arrived at \
                 cycle {now_cycles}"
            ),
            SessionError::UnexpectedMessage { expected, found } => {
                write!(f, "expected a {expected} message, found a {found} message")
            }
            SessionError::ProgramMismatch { expected, found } => {
                write!(f, "challenge names program `{found}` but this prover attests `{expected}`")
            }
            SessionError::Wire(e) => write!(f, "wire error: {e}"),
            SessionError::Verifier(e) => write!(f, "verifier failure: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Wire(e) => Some(e),
            SessionError::Verifier(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<WireError> for SessionError {
    fn from(e: WireError) -> Self {
        SessionError::Wire(e)
    }
}

/// The verdict of a decided session.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SessionDecision {
    /// The evidence was accepted; the verifier's [`Verdict`] is attached.
    Accepted(Verdict),
    /// The evidence was rejected for this [`RejectionReason`].
    Rejected(RejectionReason),
}

/// Everything a decided session produces: the machine-readable decision plus
/// the [`VerdictMsg`] to put on the wire.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The decision.
    pub decision: SessionDecision,
    /// The wire-format verdict message (send with
    /// [`VerifierSession::verdict_envelope`]).
    pub verdict_msg: VerdictMsg,
}

impl SessionOutcome {
    /// Returns `true` if the evidence was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self.decision, SessionDecision::Accepted(_))
    }
}

/// The verifier half of one protocol round trip (sans-I/O state machine).
///
/// A session is created around an outstanding [`Challenge`] and moves from
/// [`SessionState::AwaitingEvidence`] to [`SessionState::Decided`] exactly
/// once.  It binds the challenge nonce, enforces a per-session deadline in
/// verifier-clock cycles and refuses envelopes addressed to other sessions.
///
/// # Example
///
/// ```
/// use lofat::session::{ProverSession, VerifierSession};
/// use lofat::wire::{Envelope, SessionId};
/// use lofat::{Prover, Verifier};
/// use lofat_crypto::DeviceKey;
/// use lofat_rv32::asm::assemble;
///
/// let program = assemble(
///     ".text\nmain:\n    li t0, 3\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ecall\n",
/// )?;
/// let key = DeviceKey::from_seed("doc");
/// let mut prover = Prover::new(program.clone(), "demo", key.clone());
/// let mut verifier = Verifier::new(program, "demo", key.verification_key())?;
///
/// // Verifier side: open a session and emit the challenge bytes.
/// let mut session = verifier.begin_session(SessionId(1), vec![], 1_000_000);
/// let challenge_bytes = session.challenge_envelope().encode()?;
///
/// // Prover side (possibly on another machine): answer the challenge bytes.
/// let evidence_bytes = ProverSession::new(&mut prover).handle_bytes(&challenge_bytes)?;
///
/// // Verifier side: decide.
/// let outcome = session.process_evidence(&Envelope::decode(&evidence_bytes)?, &verifier, 0)?;
/// assert!(outcome.is_accepted());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct VerifierSession {
    id: SessionId,
    challenge: Challenge,
    deadline_cycles: u64,
    state: SessionState,
}

impl VerifierSession {
    /// Creates a session for an outstanding `challenge`.
    ///
    /// `deadline_cycles` is the verifier-clock cycle after which evidence is
    /// rejected as expired (`u64::MAX` disables expiry).
    pub fn new(id: SessionId, challenge: Challenge, deadline_cycles: u64) -> Self {
        Self { id, challenge, deadline_cycles, state: SessionState::AwaitingEvidence }
    }

    /// This session's identifier.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The outstanding challenge.
    pub fn challenge(&self) -> &Challenge {
        &self.challenge
    }

    /// The challenge nonce this session binds.
    pub fn nonce(&self) -> Nonce {
        self.challenge.nonce
    }

    /// The expiry deadline on the verifier clock.
    pub fn deadline_cycles(&self) -> u64 {
        self.deadline_cycles
    }

    /// Returns `true` once the session reached a verdict.
    pub fn is_decided(&self) -> bool {
        self.state == SessionState::Decided
    }

    /// The challenge message for the prover.
    pub fn challenge_msg(&self) -> ChallengeMsg {
        ChallengeMsg {
            program_id: self.challenge.program_id.clone(),
            input: self.challenge.input.clone(),
            nonce: self.challenge.nonce,
            deadline_cycles: self.deadline_cycles,
        }
    }

    /// The challenge message wrapped in an envelope addressed to this session.
    pub fn challenge_envelope(&self) -> Envelope {
        Envelope::new(self.id, Message::Challenge(self.challenge_msg()))
    }

    /// Wraps a verdict message in an envelope addressed to this session.
    pub fn verdict_envelope(&self, verdict: VerdictMsg) -> Envelope {
        Envelope::new(self.id, Message::Verdict(verdict))
    }

    /// Validates the transport-level properties of an incoming envelope —
    /// state, addressing, wire version, deadline, message kind — and returns
    /// the evidence message without judging it.
    ///
    /// This is the building block [`crate::service::VerifierService`] uses;
    /// most callers want [`VerifierSession::process_evidence`].
    ///
    /// # Errors
    ///
    /// Returns the [`SessionError`] describing the first violation.
    pub fn accept_evidence<'e>(
        &self,
        envelope: &'e Envelope,
        now_cycles: u64,
    ) -> Result<&'e EvidenceMsg, SessionError> {
        if self.state == SessionState::Decided {
            return Err(SessionError::AlreadyDecided { id: self.id });
        }
        if envelope.session != self.id {
            return Err(SessionError::WrongSession { expected: self.id, found: envelope.session });
        }
        if envelope.version != WIRE_VERSION {
            return Err(SessionError::Wire(WireError::UnsupportedVersion {
                found: envelope.version,
            }));
        }
        if now_cycles > self.deadline_cycles {
            return Err(SessionError::Expired {
                id: self.id,
                deadline_cycles: self.deadline_cycles,
                now_cycles,
            });
        }
        match &envelope.message {
            Message::Evidence(evidence) => Ok(evidence),
            other => {
                Err(SessionError::UnexpectedMessage { expected: "evidence", found: other.kind() })
            }
        }
    }

    /// Marks the session decided.  Called by [`VerifierSession::process_evidence`]
    /// and by [`crate::service::VerifierService`] after an external judgement;
    /// a decided session refuses all further evidence.
    pub fn settle(&mut self) {
        self.state = SessionState::Decided;
    }

    /// Consumes an evidence envelope and decides the session by judging the
    /// report with `verifier` (signature, nonce binding, static loop-path
    /// plausibility and golden replay — exactly [`Verifier::verify`]).
    ///
    /// `now_cycles` is the current verifier-clock value used for the deadline
    /// check.  On an *authenticated* decision — accepted, or rejected for a
    /// reason established after the signature verified — the session becomes
    /// [`SessionState::Decided`] and the returned [`SessionOutcome`] carries
    /// the [`VerdictMsg`] for the wire.
    ///
    /// Unauthenticated rejections (wrong program id, wrong nonce, bad
    /// signature) do **not** spend the session: over a real transport anyone
    /// can lob a forged envelope at a live session, and doing so must not
    /// lock the honest prover out of answering.
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] when the interaction itself fails (wrong
    /// session, replay of a decided session, expiry, wrong message kind, or a
    /// verifier infrastructure failure).  Expiry also settles the session.
    pub fn process_evidence(
        &mut self,
        envelope: &Envelope,
        verifier: &Verifier,
        now_cycles: u64,
    ) -> Result<SessionOutcome, SessionError> {
        let evidence = match self.accept_evidence(envelope, now_cycles) {
            Ok(evidence) => evidence,
            Err(e) => {
                if matches!(e, SessionError::Expired { .. }) {
                    self.settle();
                }
                return Err(e);
            }
        };
        let outcome = match verifier.verify(&evidence.report, &self.challenge) {
            Ok(verdict) => {
                let msg = VerdictMsg::accepted(Some(verdict.replay_exit.register_a0));
                SessionOutcome { decision: SessionDecision::Accepted(verdict), verdict_msg: msg }
            }
            Err(LofatError::Rejected(reason)) => {
                let msg = VerdictMsg::rejected(reason.code(), reason.to_string());
                SessionOutcome { decision: SessionDecision::Rejected(reason), verdict_msg: msg }
            }
            Err(other) => return Err(SessionError::Verifier(Box::new(other))),
        };
        // Only an authenticated decision spends the session: a rejection
        // reached before the signature verified came from *anyone*, not from
        // the device, and must not deny service to the honest prover.
        let spend = match &outcome.decision {
            SessionDecision::Accepted(_) => true,
            SessionDecision::Rejected(reason) => !matches!(
                reason,
                RejectionReason::ProgramIdMismatch { .. }
                    | RejectionReason::NonceMismatch
                    | RejectionReason::BadSignature
            ),
        };
        if spend {
            self.settle();
        }
        Ok(outcome)
    }
}

/// The prover half of one round trip: a sans-I/O driver around
/// [`Prover::attest`] / [`Prover::attest_with_adversary`].
///
/// Bytes in (a challenge envelope), bytes out (an evidence envelope); the
/// wrapped [`Prover`] does the attested execution in between.
#[derive(Debug)]
pub struct ProverSession<'p> {
    prover: &'p mut Prover,
}

impl<'p> ProverSession<'p> {
    /// Wraps `prover` for session-style driving.
    pub fn new(prover: &'p mut Prover) -> Self {
        Self { prover }
    }

    /// Answers a decoded challenge envelope: runs the attested execution and
    /// returns the evidence envelope together with the local [`ProverRun`]
    /// (exit info and engine statistics never leave the device).
    ///
    /// # Errors
    ///
    /// Returns [`LofatError::Session`] if the envelope does not carry a
    /// challenge, and propagates execution/signing failures from the prover.
    pub fn respond(&mut self, envelope: &Envelope) -> Result<(Envelope, ProverRun), LofatError> {
        self.respond_with_adversary(envelope, &mut NoAdversary)
    }

    /// Like [`ProverSession::respond`], with a run-time [`Adversary`]
    /// corrupting data memory during the attested execution.
    ///
    /// # Errors
    ///
    /// Same as [`ProverSession::respond`], plus
    /// [`SessionError::ProgramMismatch`] when the challenge names a different
    /// program — the attested execution (the most expensive operation on the
    /// device) is refused up front instead of producing a doomed report.
    pub fn respond_with_adversary<A: Adversary + ?Sized>(
        &mut self,
        envelope: &Envelope,
        adversary: &mut A,
    ) -> Result<(Envelope, ProverRun), LofatError> {
        let challenge = match &envelope.message {
            Message::Challenge(challenge) => challenge,
            other => {
                return Err(LofatError::Session(SessionError::UnexpectedMessage {
                    expected: "challenge",
                    found: other.kind(),
                }));
            }
        };
        if challenge.program_id != self.prover.program_id() {
            return Err(LofatError::Session(SessionError::ProgramMismatch {
                expected: self.prover.program_id().to_string(),
                found: challenge.program_id.clone(),
            }));
        }
        let run =
            self.prover.attest_with_adversary(&challenge.input, challenge.nonce, adversary)?;
        let evidence = Envelope::new(
            envelope.session,
            Message::Evidence(EvidenceMsg { report: run.report.clone() }),
        );
        Ok((evidence, run))
    }

    /// Fully sans-I/O surface: decodes challenge bytes, attests, returns
    /// encoded evidence bytes.
    ///
    /// # Errors
    ///
    /// Returns [`LofatError::Wire`] on codec failures plus everything
    /// [`ProverSession::respond`] can return.
    pub fn handle_bytes(&mut self, bytes: &[u8]) -> Result<Vec<u8>, LofatError> {
        let envelope = Envelope::decode(bytes).map_err(LofatError::Wire)?;
        let (evidence, _run) = self.respond(&envelope)?;
        evidence.encode().map_err(LofatError::Wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lofat_crypto::DeviceKey;
    use lofat_rv32::asm::assemble;

    const PROGRAM: &str = r#"
        .data
        input:
            .space 8
        .text
        main:
            la   t0, input
            lw   t1, 0(t0)
            li   a0, 0
            beqz t1, done
        loop:
            addi a0, a0, 2
            addi t1, t1, -1
            bnez t1, loop
        done:
            ecall
    "#;

    fn setup() -> (Prover, Verifier) {
        let program = assemble(PROGRAM).unwrap();
        let key = DeviceKey::from_seed("session-test");
        let prover = Prover::new(program.clone(), "double", key.clone());
        let verifier = Verifier::new(program, "double", key.verification_key()).unwrap();
        (prover, verifier)
    }

    fn run_round(
        session: &mut VerifierSession,
        prover: &mut Prover,
        verifier: &Verifier,
        now: u64,
    ) -> Result<SessionOutcome, SessionError> {
        let challenge_bytes = session.challenge_envelope().encode().unwrap();
        let evidence_bytes =
            ProverSession::new(prover).handle_bytes(&challenge_bytes).expect("prover answers");
        let evidence = Envelope::decode(&evidence_bytes).unwrap();
        session.process_evidence(&evidence, verifier, now)
    }

    #[test]
    fn honest_round_trip_is_accepted_over_the_wire() {
        let (mut prover, mut verifier) = setup();
        let mut session = verifier.begin_session(SessionId(1), vec![5], u64::MAX);
        let outcome = run_round(&mut session, &mut prover, &verifier, 0).unwrap();
        assert!(outcome.is_accepted());
        assert_eq!(outcome.verdict_msg.expected_result, Some(10));
        assert!(session.is_decided());
    }

    #[test]
    fn decided_sessions_refuse_further_evidence() {
        let (mut prover, mut verifier) = setup();
        let mut session = verifier.begin_session(SessionId(1), vec![2], u64::MAX);
        let challenge_bytes = session.challenge_envelope().encode().unwrap();
        let evidence_bytes =
            ProverSession::new(&mut prover).handle_bytes(&challenge_bytes).unwrap();
        let evidence = Envelope::decode(&evidence_bytes).unwrap();
        assert!(session.process_evidence(&evidence, &verifier, 0).unwrap().is_accepted());
        let replay = session.process_evidence(&evidence, &verifier, 0).unwrap_err();
        assert!(matches!(replay, SessionError::AlreadyDecided { .. }));
    }

    #[test]
    fn misaddressed_envelopes_are_refused() {
        let (mut prover, mut verifier) = setup();
        let mut session = verifier.begin_session(SessionId(1), vec![1], u64::MAX);
        let challenge_bytes = session.challenge_envelope().encode().unwrap();
        let evidence_bytes =
            ProverSession::new(&mut prover).handle_bytes(&challenge_bytes).unwrap();
        let mut evidence = Envelope::decode(&evidence_bytes).unwrap();
        evidence.session = SessionId(42);
        let err = session.process_evidence(&evidence, &verifier, 0).unwrap_err();
        assert!(matches!(
            err,
            SessionError::WrongSession { expected: SessionId(1), found: SessionId(42) }
        ));
        assert!(!session.is_decided(), "a misrouted envelope must not spend the session");
    }

    #[test]
    fn expiry_settles_the_session() {
        let (mut prover, mut verifier) = setup();
        let mut session = verifier.begin_session(SessionId(1), vec![1], 100);
        let err = run_round(&mut session, &mut prover, &verifier, 101).unwrap_err();
        assert!(matches!(err, SessionError::Expired { deadline_cycles: 100, .. }));
        assert!(session.is_decided());
    }

    #[test]
    fn challenge_messages_are_refused_as_evidence() {
        let (_, mut verifier) = setup();
        let mut session = verifier.begin_session(SessionId(1), vec![1], u64::MAX);
        let challenge = session.challenge_envelope();
        let err = session.process_evidence(&challenge, &verifier, 0).unwrap_err();
        assert!(matches!(
            err,
            SessionError::UnexpectedMessage { expected: "evidence", found: "challenge" }
        ));
    }

    #[test]
    fn unauthenticated_rejections_do_not_spend_the_session() {
        let (_, mut verifier) = setup();
        // A rogue device (different key) answers the challenge: BadSignature.
        let program = assemble(PROGRAM).unwrap();
        let mut rogue = Prover::new(program, "double", DeviceKey::from_seed("rogue"));
        let mut session = verifier.begin_session(SessionId(1), vec![3], u64::MAX);
        let challenge_bytes = session.challenge_envelope().encode().unwrap();
        let forged_bytes = ProverSession::new(&mut rogue).handle_bytes(&challenge_bytes).unwrap();
        let forged = Envelope::decode(&forged_bytes).unwrap();
        let outcome = session.process_evidence(&forged, &verifier, 0).unwrap();
        assert!(matches!(
            outcome.decision,
            SessionDecision::Rejected(RejectionReason::BadSignature)
        ));
        // The forgery must not lock out the honest prover.
        assert!(!session.is_decided());
        let (mut prover, _) = setup();
        let honest_bytes = ProverSession::new(&mut prover).handle_bytes(&challenge_bytes).unwrap();
        let honest = Envelope::decode(&honest_bytes).unwrap();
        assert!(session.process_evidence(&honest, &verifier, 0).unwrap().is_accepted());
        assert!(session.is_decided());
    }

    #[test]
    fn prover_refuses_challenges_for_other_programs() {
        let (mut prover, _) = setup();
        let envelope = Envelope::new(
            SessionId(1),
            Message::Challenge(ChallengeMsg {
                program_id: "someone-else".into(),
                input: vec![],
                nonce: Nonce::from_counter(1),
                deadline_cycles: u64::MAX,
            }),
        );
        let err = ProverSession::new(&mut prover).respond(&envelope).unwrap_err();
        assert!(matches!(err, LofatError::Session(SessionError::ProgramMismatch { .. })));
    }

    #[test]
    fn prover_session_refuses_non_challenges() {
        let (mut prover, _) = setup();
        let envelope = Envelope::new(SessionId(1), Message::Verdict(VerdictMsg::accepted(None)));
        let err = ProverSession::new(&mut prover).respond(&envelope).unwrap_err();
        assert!(matches!(err, LofatError::Session(SessionError::UnexpectedMessage { .. })));
    }
}

//! # LO-FAT: Low-Overhead Control Flow ATtestation in Hardware — a Rust reproduction
//!
//! This crate is a cycle-level, functional reproduction of the LO-FAT architecture
//! (Dessouky et al., DAC 2017): a hardware engine that observes a RISC-V core's
//! trace port, folds the executed control-flow path into a SHA-3 authenticator `A`,
//! compresses loops into per-path iteration counters plus auxiliary metadata `L`,
//! and signs `(A, L, nonce)` so a remote verifier holding the program's CFG can
//! attest the exact run-time control flow — with **zero overhead** for the attested
//! software and **no binary instrumentation**.
//!
//! The module structure mirrors Fig. 3 of the paper:
//!
//! | Module | Hardware unit |
//! |---|---|
//! | [`branch_filter`] | ① branch/jump/return filtering + loop-entry heuristic |
//! | [`branches_mem`] | ② branches memory (`(Src, Dest)` pairs) |
//! | [`hash_ctrl`] | ③⑦⑪ hash-engine controller + input buffering |
//! | [`loop_monitor`] | ④⑤ loop status tracking and nesting |
//! | [`path_encoder`] | ⑤ taken/not-taken path-ID encoding |
//! | [`loop_counter_mem`] | ⑥ path-indexed iteration counters |
//! | [`cam`] | indirect-branch target CAM (§5.2) |
//! | [`metadata`] | ⑧⑨⑩ metadata generator and storage (`L`) |
//! | [`engine`] | the composed engine attached to the trace port |
//! | [`area`] | BRAM / logic area model (§6.2) |
//! | [`prover`], [`verifier`], [`protocol`], [`report`] | the Fig. 2 attestation protocol |
//!
//! The protocol itself is layered sans-I/O (nothing below performs I/O; bytes
//! in, bytes out):
//!
//! | Module | Layer |
//! |---|---|
//! | [`wire`] | versioned envelopes + the deterministic byte codec |
//! | [`session`] | per-round-trip state machines ([`session::VerifierSession`], [`session::ProverSession`]) |
//! | [`service`] | [`service::VerifierService`]: thousands of interleaved sessions across lock-sharded state, replay detection, expiry, atomic stats |
//! | [`pool`] | [`pool::ParallelVerifier`]: a bounded-queue worker pool draining `handle_bytes` work off the ingest thread |
//! | [`protocol`] | the classic one-call adapter [`protocol::run_attestation`] over the layers above |
//!
//! The first real I/O boundary lives outside this crate: the `lofat-net`
//! workspace member frames these envelopes over TCP (`VerifierServer` /
//! `ProverClient`) without adding any protocol semantics.
//!
//! # Quickstart
//!
//! ```
//! use lofat::protocol::run_attestation;
//! use lofat::{Prover, Verifier};
//! use lofat_crypto::DeviceKey;
//! use lofat_rv32::asm::assemble;
//!
//! // 1. Both parties know the program binary.
//! let program = assemble(
//!     ".text\nmain:\n    li t0, 5\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ecall\n",
//! )?;
//!
//! // 2. The prover holds the device key; the verifier holds the verification key.
//! let key = DeviceKey::from_seed("demo-device");
//! let mut prover = Prover::new(program.clone(), "demo", key.clone());
//! let mut verifier = Verifier::new(program, "demo", key.verification_key())?;
//!
//! // 3. One challenge-response round trip: execute, measure, sign, verify.
//! let outcome = run_attestation(&mut verifier, &mut prover, vec![])?;
//! assert_eq!(outcome.prover_run.stats.processor_overhead_cycles, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod branch_filter;
pub mod branches_mem;
pub mod cam;
pub mod config;
pub mod engine;
pub mod error;
pub mod hash_ctrl;
pub mod json;
pub mod loop_counter_mem;
pub mod loop_monitor;
pub mod measurement_db;
pub mod metadata;
pub mod path_encoder;
pub mod pool;
pub mod protocol;
pub mod prover;
pub mod report;
pub mod service;
pub mod session;
pub mod verifier;
pub mod wire;

pub use area::{AreaEstimate, AreaModel};
pub use branches_mem::BranchPair;
pub use config::{EngineConfig, EngineConfigBuilder, BRANCH_EVENT_LATENCY, LOOP_EXIT_LATENCY};
pub use engine::{attest_program, EngineStats, LofatEngine, Measurement};
pub use error::LofatError;
pub use measurement_db::{MeasurementDatabase, ReferenceMeasurement};
pub use metadata::{LoopRecord, Metadata, PathRecord};
pub use pool::{ParallelVerifier, PoolConfig, VerdictReply, VerdictTicket};
pub use prover::{Adversary, NoAdversary, Prover, ProverRun};
pub use report::AttestationReport;
pub use service::{ServiceConfig, ServiceError, ServiceStats, VerifierService};
pub use session::{
    ProverSession, SessionDecision, SessionError, SessionOutcome, SessionState, VerifierSession,
};
pub use verifier::{Challenge, RejectionReason, Verdict, Verifier};
pub use wire::{
    ChallengeMsg, Envelope, EvidenceMsg, Message, SessionId, SessionRequestMsg, SessionSnapshot,
    ShardSnapshot, SnapshotError, SnapshotMsg, VerdictMsg, WireError, SNAPSHOT_VERSION,
    WIRE_VERSION,
};

//! Measurement database: precomputed reference measurements per input.
//!
//! The golden-replay verifier (see [`crate::verifier::Verifier::verify`]) recomputes
//! the expected measurement at verification time.  Embedded deployments — and the
//! C-FLAT scheme LO-FAT builds on — typically precompute the expected measurements
//! for the (small) set of inputs/commands a device accepts and then verify reports by
//! a constant-time lookup.  [`MeasurementDatabase`] provides that mode: it is built
//! once offline from the program binary and a list of anticipated inputs, and can be
//! serialised and shipped to lightweight verifier front-ends that do not carry the
//! simulator at all.

use crate::config::EngineConfig;
use crate::error::LofatError;
use crate::metadata::Metadata;
use crate::report::AttestationReport;
use crate::verifier::{RejectionReason, Verifier};
use lofat_crypto::Digest;
use std::collections::BTreeMap;

/// One precomputed reference measurement.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReferenceMeasurement {
    /// The expected authenticator `A` for this input.
    pub authenticator: Digest,
    /// The expected loop metadata `L` for this input.
    pub metadata: Metadata,
    /// The expected program result (`a0` at exit) — useful for device health checks.
    pub expected_result: u32,
}

/// A database of reference measurements keyed by program input.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MeasurementDatabase {
    program_id: String,
    entries: BTreeMap<Vec<u32>, ReferenceMeasurement>,
    /// The engine configuration the references were computed with (prover reports
    /// produced under a different configuration will not match).
    config: EngineConfig,
}

impl MeasurementDatabase {
    /// Builds a database by golden-replaying `verifier`'s program on every input.
    ///
    /// # Errors
    ///
    /// Propagates replay failures (e.g. an input that makes the program exceed its
    /// cycle budget).
    pub fn build(
        verifier: &Verifier,
        config: EngineConfig,
        inputs: impl IntoIterator<Item = Vec<u32>>,
    ) -> Result<Self, LofatError> {
        let mut entries = BTreeMap::new();
        for input in inputs {
            let (measurement, exit) = verifier.expected_measurement(&input)?;
            entries.insert(
                input,
                ReferenceMeasurement {
                    authenticator: measurement.authenticator,
                    metadata: measurement.metadata,
                    expected_result: exit.register_a0,
                },
            );
        }
        Ok(Self { program_id: verifier.program_id().to_string(), entries, config })
    }

    /// The program this database describes.
    pub fn program_id(&self) -> &str {
        &self.program_id
    }

    /// Number of reference entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The engine configuration the references were computed under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Looks up the reference measurement for `input`.
    pub fn reference(&self, input: &[u32]) -> Option<&ReferenceMeasurement> {
        self.entries.get(input)
    }

    /// Serialises the database with the deterministic wire codec, for shipping
    /// to lightweight verifier front-ends (e.g. a
    /// [`crate::service::VerifierService`] on another host).
    ///
    /// # Errors
    ///
    /// Fails only if a contained collection overflows the codec's `u32`
    /// length prefix.
    pub fn to_wire_bytes(&self) -> Result<Vec<u8>, serde::Error> {
        serde::to_bytes(self)
    }

    /// Decodes a database previously encoded with
    /// [`MeasurementDatabase::to_wire_bytes`].
    ///
    /// # Errors
    ///
    /// Returns the decode error for malformed input.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Self, serde::Error> {
        serde::from_bytes(bytes)
    }

    /// Checks a report against the stored reference for `input` (signature and nonce
    /// checks are the caller's/`Verifier`'s responsibility — this is the measurement
    /// comparison only).
    ///
    /// # Errors
    ///
    /// Returns the [`RejectionReason`] describing the first mismatch, or
    /// [`LofatError::MissingSymbol`]-style lookup failure when the input was never
    /// precomputed (reported as `MetadataMismatch` to avoid a new variant leaking
    /// database internals).
    pub fn check(
        &self,
        input: &[u32],
        report: &AttestationReport,
    ) -> Result<&ReferenceMeasurement, LofatError> {
        let Some(reference) = self.reference(input) else {
            return Err(LofatError::InvalidConfig {
                message: format!("no reference measurement precomputed for input {input:?}"),
            });
        };
        if report.program_id != self.program_id {
            return Err(LofatError::Rejected(RejectionReason::ProgramIdMismatch {
                expected: self.program_id.clone(),
                found: report.program_id.clone(),
            }));
        }
        if reference.authenticator != report.authenticator {
            return Err(LofatError::Rejected(RejectionReason::AuthenticatorMismatch));
        }
        if reference.metadata != report.metadata {
            return Err(LofatError::Rejected(RejectionReason::MetadataMismatch));
        }
        Ok(reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prover::Prover;
    use lofat_crypto::{DeviceKey, Nonce};
    use lofat_rv32::asm::assemble;

    const PROGRAM: &str = r#"
        .data
        input:
            .space 8
        .text
        main:
            la   t0, input
            lw   t1, 0(t0)
            li   a0, 0
            beqz t1, done
        loop:
            addi a0, a0, 3
            addi t1, t1, -1
            bnez t1, loop
        done:
            ecall
    "#;

    fn setup() -> (Prover, Verifier) {
        let program = assemble(PROGRAM).unwrap();
        let key = DeviceKey::from_seed("db-device");
        let prover = Prover::new(program.clone(), "triple", key.clone());
        let verifier = Verifier::new(program, "triple", key.verification_key()).unwrap();
        (prover, verifier)
    }

    #[test]
    fn database_accepts_honest_reports_without_replay() {
        let (mut prover, verifier) = setup();
        let inputs: Vec<Vec<u32>> = (0..8u32).map(|n| vec![n]).collect();
        let db =
            MeasurementDatabase::build(&verifier, EngineConfig::default(), inputs.clone()).unwrap();
        assert_eq!(db.len(), 8);
        assert_eq!(db.program_id(), "triple");

        for input in &inputs {
            let run = prover.attest(input, Nonce::from_counter(1)).unwrap();
            let reference = db.check(input, &run.report).unwrap();
            assert_eq!(reference.expected_result, run.exit.register_a0);
        }
    }

    #[test]
    fn database_rejects_mismatching_reports() {
        let (mut prover, verifier) = setup();
        let db = MeasurementDatabase::build(
            &verifier,
            EngineConfig::default(),
            vec![vec![3u32], vec![4u32]],
        )
        .unwrap();
        // A report produced for input 4 does not match the reference for input 3.
        let run = prover.attest(&[4], Nonce::from_counter(1)).unwrap();
        let err = db.check(&[3], &run.report).unwrap_err();
        assert!(matches!(err, LofatError::Rejected(_)));
    }

    #[test]
    fn unknown_inputs_are_reported() {
        let (mut prover, verifier) = setup();
        let db = MeasurementDatabase::build(&verifier, EngineConfig::default(), vec![vec![1u32]])
            .unwrap();
        let run = prover.attest(&[9], Nonce::from_counter(1)).unwrap();
        let err = db.check(&[9], &run.report).unwrap_err();
        assert!(matches!(err, LofatError::InvalidConfig { .. }));
        assert!(db.reference(&[9]).is_none());
        assert!(!db.is_empty());
    }

    #[test]
    fn wrong_program_id_is_rejected() {
        let (mut prover, verifier) = setup();
        let db = MeasurementDatabase::build(&verifier, EngineConfig::default(), vec![vec![2u32]])
            .unwrap();
        let mut run = prover.attest(&[2], Nonce::from_counter(1)).unwrap();
        run.report.program_id = "other".into();
        let err = db.check(&[2], &run.report).unwrap_err();
        assert!(matches!(err, LofatError::Rejected(RejectionReason::ProgramIdMismatch { .. })));
    }
}

//! `ParallelVerifier` — a worker pool draining verification work off the
//! ingest thread.
//!
//! Verification is stateless per report (signature + nonce + reference
//! comparison), so it is embarrassingly parallel: the pool owns `K` plain
//! [`std::thread`] workers that pop evidence bytes from one bounded MPMC
//! queue and run [`VerifierService::handle_bytes_batch`] over each drained
//! burst — the full decode → CFG evidence checks → Keccak
//! authenticator/signature check → verdict-encode pipeline — concurrently,
//! while producers (network front-ends, the `lofat serve-bench` harness,
//! tests) only pay the cost of an enqueue.  Batching the burst lets the
//! signature MACs finalize through the multi-lane Keccak path.
//!
//! Design notes:
//!
//! * **Bounded queue, blocking producers.**  [`ParallelVerifier::submit`]
//!   blocks while the queue is at capacity: backpressure propagates to the
//!   ingest side instead of growing an unbounded buffer.
//! * **MPMC with batched drains.**  Any number of producers may submit
//!   concurrently; workers pop small bursts per lock acquisition so the queue
//!   mutex does not become the bottleneck at high worker counts.
//! * **Ticketed replies.**  Each submission returns a [`VerdictTicket`]; the
//!   producer can block on [`VerdictTicket::wait`] or poll
//!   [`VerdictTicket::try_take`].  The reply carries the queue→verdict
//!   latency measured on the worker, which is what `serve-bench` aggregates
//!   into p50/p99 decision latencies.
//! * **No new dependencies.**  The queue is a `Mutex<VecDeque>` plus two
//!   condvars; tickets are a one-slot `Mutex` + condvar.  Everything is std.
//!
//! Verdict-equivalence with the single-threaded path is a hard invariant
//! (`tests/e13_concurrent_service.rs` proves it differentially): the pool
//! adds *no* semantics — it only moves `handle_bytes` work onto workers,
//! batched per drained burst.

use crate::service::{ServiceError, VerifierService};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a [`ParallelVerifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of worker threads (`0` is treated as `1`).
    pub workers: usize,
    /// Maximum queued (not yet started) jobs; submissions block beyond this.
    pub queue_capacity: usize,
    /// Maximum jobs a worker pops per queue-lock acquisition.
    pub drain_burst: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self { workers: 1, queue_capacity: 1024, drain_burst: 8 }
    }
}

impl PoolConfig {
    /// The default configuration with `workers` worker threads.
    pub fn with_workers(workers: usize) -> Self {
        Self { workers, ..Self::default() }
    }
}

/// The worker-side answer to one submission.
#[derive(Debug)]
pub struct VerdictReply {
    /// The encoded verdict envelope (or the service error — only possible
    /// for outgoing-encode failures, or [`ServiceError::ShuttingDown`] when
    /// the pool was closed before the job ran).
    pub reply: Result<Vec<u8>, ServiceError>,
    /// Time from enqueue to verdict, measured on the worker.
    pub latency: Duration,
}

/// One-slot rendezvous between a worker and the producer that submitted the
/// job.
#[derive(Debug, Default)]
struct TicketState {
    slot: Mutex<Option<VerdictReply>>,
    done: Condvar,
}

impl TicketState {
    fn fulfil(&self, reply: VerdictReply) {
        let mut slot = self.slot.lock().expect("ticket lock poisoned");
        *slot = Some(reply);
        self.done.notify_all();
    }
}

/// A handle to one submitted verification job.
#[derive(Debug)]
pub struct VerdictTicket {
    state: Arc<TicketState>,
}

impl VerdictTicket {
    /// Blocks until the verdict is ready and returns it.
    pub fn wait(self) -> VerdictReply {
        let mut slot = self.state.slot.lock().expect("ticket lock poisoned");
        loop {
            if let Some(reply) = slot.take() {
                return reply;
            }
            slot = self.state.done.wait(slot).expect("ticket lock poisoned");
        }
    }

    /// Returns the verdict if it is already available (non-blocking).
    pub fn try_take(&self) -> Option<VerdictReply> {
        self.state.slot.lock().expect("ticket lock poisoned").take()
    }
}

struct Job {
    bytes: Vec<u8>,
    enqueued: Instant,
    ticket: Arc<TicketState>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    service: Arc<VerifierService>,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    drain_burst: usize,
    jobs_completed: AtomicU64,
}

/// A pool of verification workers over one shared [`VerifierService`].
///
/// # Example
///
/// ```
/// use lofat::pool::{ParallelVerifier, PoolConfig};
/// use lofat::service::{ServiceConfig, VerifierService};
/// use lofat::session::ProverSession;
/// use lofat::{EngineConfig, MeasurementDatabase, Prover, Verifier};
/// use lofat_crypto::DeviceKey;
/// use lofat_rv32::asm::assemble;
/// use std::sync::Arc;
///
/// let program = assemble(
///     ".text\nmain:\n    li t0, 4\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ecall\n",
/// )?;
/// let key = DeviceKey::from_seed("fleet");
/// let mut prover = Prover::new(program.clone(), "demo", key.clone());
/// let verifier = Verifier::new(program, "demo", key.verification_key())?;
/// let db = MeasurementDatabase::build(&verifier, EngineConfig::default(), vec![vec![]])?;
/// let service = Arc::new(VerifierService::new(
///     db,
///     key.verification_key(),
///     ServiceConfig::sharded(4),
/// ));
///
/// let pool = ParallelVerifier::spawn(Arc::clone(&service), PoolConfig::with_workers(2));
/// let id = service.open_session(vec![])?;
/// let challenge = service.challenge_envelope(id)?.encode()?;
/// let evidence = ProverSession::new(&mut prover).handle_bytes(&challenge)?;
/// let ticket = pool.submit(evidence);
/// let reply = ticket.wait();
/// assert!(reply.reply.is_ok());
/// pool.join();
/// assert_eq!(service.stats().accepted, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ParallelVerifier {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ParallelVerifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelVerifier")
            .field("workers", &self.workers.len())
            .field("capacity", &self.shared.capacity)
            .field("jobs_completed", &self.shared.jobs_completed.load(Ordering::Relaxed))
            .finish()
    }
}

impl ParallelVerifier {
    /// Spawns `config.workers` worker threads over `service`.
    pub fn spawn(service: Arc<VerifierService>, config: PoolConfig) -> Self {
        let shared = Arc::new(Shared {
            service,
            queue: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            drain_burst: config.drain_burst.max(1),
            jobs_completed: AtomicU64::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lofat-verify-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn verifier worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// The service the workers verify against.
    pub fn service(&self) -> &Arc<VerifierService> {
        &self.shared.service
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Jobs fully processed (verdict delivered) so far.
    pub fn jobs_completed(&self) -> u64 {
        self.shared.jobs_completed.load(Ordering::Relaxed)
    }

    /// Submits one evidence envelope (encoded bytes) for verification.
    /// Blocks while the queue is at capacity (backpressure); the returned
    /// ticket resolves once a worker has produced the verdict.
    pub fn submit(&self, bytes: Vec<u8>) -> VerdictTicket {
        let mut tickets = self.submit_batch(std::iter::once(bytes));
        tickets.pop().expect("one submission yields one ticket")
    }

    /// Submits a batch of evidence envelopes under one queue-lock
    /// acquisition per capacity window, returning one ticket per envelope in
    /// order.  Cheaper than per-envelope [`ParallelVerifier::submit`] when
    /// the producer already holds a burst of work.
    pub fn submit_batch(&self, batch: impl IntoIterator<Item = Vec<u8>>) -> Vec<VerdictTicket> {
        let mut pending: VecDeque<Vec<u8>> = batch.into_iter().collect();
        let mut tickets = Vec::with_capacity(pending.len());
        while !pending.is_empty() {
            let mut queue = self.shared.queue.lock().expect("queue lock poisoned");
            while !queue.closed && queue.jobs.len() >= self.shared.capacity {
                queue = self.shared.not_full.wait(queue).expect("queue lock poisoned");
            }
            if queue.closed {
                // Resolve the remainder immediately: a closed pool never runs
                // new work, and a hanging ticket would deadlock producers.
                drop(queue);
                tickets.extend(pending.drain(..).map(|_| shutdown_ticket()));
                break;
            }
            let room = self.shared.capacity - queue.jobs.len();
            for bytes in pending.drain(..room.min(pending.len())) {
                let ticket = Arc::new(TicketState::default());
                queue.jobs.push_back(Job {
                    bytes,
                    enqueued: Instant::now(),
                    ticket: Arc::clone(&ticket),
                });
                tickets.push(VerdictTicket { state: ticket });
            }
            self.shared.not_empty.notify_all();
        }
        tickets
    }

    /// Closes the queue and joins all workers.  Already-queued jobs are still
    /// verified; jobs submitted after the close resolve to
    /// [`ServiceError::ShuttingDown`].
    pub fn join(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue lock poisoned");
            queue.closed = true;
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ParallelVerifier {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn shutdown_ticket() -> VerdictTicket {
    let state = Arc::new(TicketState::default());
    state.fulfil(VerdictReply { reply: Err(ServiceError::ShuttingDown), latency: Duration::ZERO });
    VerdictTicket { state }
}

fn worker_loop(shared: &Shared) {
    let mut burst: Vec<Job> = Vec::with_capacity(shared.drain_burst);
    loop {
        {
            let mut queue = shared.queue.lock().expect("queue lock poisoned");
            while queue.jobs.is_empty() && !queue.closed {
                queue = shared.not_empty.wait(queue).expect("queue lock poisoned");
            }
            if queue.jobs.is_empty() && queue.closed {
                return;
            }
            let take = queue.jobs.len().min(shared.drain_burst);
            burst.extend(queue.jobs.drain(..take));
            // Freed `take` slots; wake blocked producers.
            shared.not_full.notify_all();
        }
        // The whole burst goes through the batch entry point, so the Keccak
        // finalizations of its signature MACs drain through the multi-lane
        // path; verdicts (and their order within the burst) are exactly what
        // per-job `handle_bytes` calls would produce.
        let requests: Vec<&[u8]> = burst.iter().map(|job| job.bytes.as_slice()).collect();
        let replies = shared.service.handle_bytes_batch(&requests);
        drop(requests);
        for (job, reply) in burst.drain(..).zip(replies) {
            let latency = job.enqueued.elapsed();
            job.ticket.fulfil(VerdictReply { reply, latency });
            shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// Producers and workers hand these types across threads; keep that a
// compile-time fact rather than a call-site inference failure.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ParallelVerifier>();
    assert_send_sync::<VerdictTicket>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::measurement_db::MeasurementDatabase;
    use crate::prover::Prover;
    use crate::service::ServiceConfig;
    use crate::session::ProverSession;
    use crate::verifier::Verifier;
    use crate::wire::{Envelope, Message};
    use lofat_crypto::DeviceKey;
    use lofat_rv32::asm::assemble;

    const PROGRAM: &str = r#"
        .data
        input:
            .space 8
        .text
        main:
            la   t0, input
            lw   t1, 0(t0)
            li   a0, 0
            beqz t1, done
        loop:
            addi a0, a0, 3
            addi t1, t1, -1
            bnez t1, loop
        done:
            ecall
    "#;

    fn setup(shards: usize) -> (Arc<VerifierService>, Prover) {
        let program = assemble(PROGRAM).unwrap();
        let key = DeviceKey::from_seed("pool-device");
        let prover = Prover::new(program.clone(), "triple", key.clone());
        let verifier = Verifier::new(program, "triple", key.verification_key()).unwrap();
        let db =
            MeasurementDatabase::build(&verifier, EngineConfig::default(), vec![vec![2], vec![3]])
                .unwrap();
        let service = Arc::new(VerifierService::new(
            db,
            key.verification_key(),
            ServiceConfig::sharded(shards),
        ));
        (service, prover)
    }

    fn decode_verdict(bytes: &[u8]) -> crate::wire::VerdictMsg {
        let envelope = Envelope::decode(bytes).expect("verdict envelope decodes");
        match envelope.message {
            Message::Verdict(v) => v,
            other => panic!("expected verdict, got {}", other.kind()),
        }
    }

    #[test]
    fn pool_verifies_submissions_and_reports_latency() {
        let (service, mut prover) = setup(2);
        let pool = ParallelVerifier::spawn(Arc::clone(&service), PoolConfig::with_workers(2));
        let mut tickets = Vec::new();
        for input in [vec![2u32], vec![3u32]] {
            let id = service.open_session(input).unwrap();
            let challenge = service.challenge_envelope(id).unwrap().encode().unwrap();
            let evidence = ProverSession::new(&mut prover).handle_bytes(&challenge).unwrap();
            tickets.push(pool.submit(evidence));
        }
        for ticket in tickets {
            let reply = ticket.wait();
            let verdict = decode_verdict(&reply.reply.expect("encodes"));
            assert!(verdict.accepted, "{verdict:?}");
        }
        assert_eq!(pool.jobs_completed(), 2);
        pool.join();
        assert_eq!(service.stats().accepted, 2);
    }

    #[test]
    fn batch_submission_preserves_order_and_capacity() {
        let (service, mut prover) = setup(1);
        // Capacity 2 forces the batch path to wrap around the bounded queue.
        let config = PoolConfig { workers: 1, queue_capacity: 2, drain_burst: 4 };
        let pool = ParallelVerifier::spawn(Arc::clone(&service), config);
        let batch: Vec<Vec<u8>> = (0..6)
            .map(|_| {
                let id = service.open_session(vec![2]).unwrap();
                let challenge = service.challenge_envelope(id).unwrap().encode().unwrap();
                ProverSession::new(&mut prover).handle_bytes(&challenge).unwrap()
            })
            .collect();
        let tickets = pool.submit_batch(batch);
        assert_eq!(tickets.len(), 6);
        for ticket in tickets {
            assert!(decode_verdict(&ticket.wait().reply.unwrap()).accepted);
        }
        pool.join();
        assert_eq!(service.stats().accepted, 6);
    }

    #[test]
    fn malformed_bytes_come_back_as_verdicts() {
        let (service, _) = setup(1);
        let pool = ParallelVerifier::spawn(Arc::clone(&service), PoolConfig::default());
        let reply = pool.submit(b"garbage".to_vec()).wait();
        let verdict = decode_verdict(&reply.reply.unwrap());
        assert!(!verdict.accepted);
        assert_eq!(verdict.reason_code, crate::wire::code::MALFORMED);
        pool.join();
    }

    #[test]
    fn submissions_after_close_resolve_to_shutting_down() {
        let (service, _) = setup(1);
        let mut pool = ParallelVerifier::spawn(Arc::clone(&service), PoolConfig::default());
        pool.close_and_join();
        let tickets = pool.submit_batch([b"x".to_vec(), b"y".to_vec()]);
        assert_eq!(tickets.len(), 2);
        for ticket in tickets {
            assert!(matches!(ticket.wait().reply, Err(ServiceError::ShuttingDown)));
        }
    }
}

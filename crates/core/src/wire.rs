//! Versioned wire format for the attestation protocol.
//!
//! The Fig. 2 round trip is a message exchange: the verifier sends a challenge
//! `(id_S, i, N)`, the prover answers with its signed report, and (in the
//! service deployment) the verifier answers back with a verdict.  This module
//! gives those messages an explicit, transport-agnostic representation:
//!
//! * [`ChallengeMsg`] / [`EvidenceMsg`] / [`VerdictMsg`] — the three message
//!   bodies, unified under [`Message`];
//! * [`Envelope`] — a message addressed to a protocol session, carrying the
//!   wire-format version;
//! * [`Envelope::encode`] / [`Envelope::decode`] — the compact deterministic
//!   byte codec (magic, version, session id, length-prefixed body; the body is
//!   the vendored-serde encoding of the [`Message`]).
//!
//! Nothing here performs I/O: encode produces bytes for *some* transport and
//! decode consumes bytes from one (sans-I/O).  The state machines that consume
//! and produce these messages live in [`crate::session`]; the multi-session
//! front-end lives in [`crate::service`].
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "LFAT"
//! 4       2     version (little-endian u16, currently 1)
//! 6       8     session id (little-endian u64)
//! 14      4     body length (little-endian u32)
//! 18      n     body: serde encoding of `Message`
//! ```

use crate::report::AttestationReport;
use lofat_crypto::Nonce;
use std::fmt;

/// Magic bytes opening every envelope.
pub const WIRE_MAGIC: [u8; 4] = *b"LFAT";

/// The wire-format version this build speaks.
pub const WIRE_VERSION: u16 = 1;

/// Size of the fixed envelope header in bytes.
pub const HEADER_BYTES: usize = 18;

/// Stable numeric verdict codes carried in [`VerdictMsg::reason_code`].
///
/// Codes `1..=6` mirror [`crate::verifier::RejectionReason`] (see
/// [`RejectionReason::code`](crate::verifier::RejectionReason::code)); codes
/// from [`code::UNKNOWN_SESSION`] up describe session- and service-level
/// failures that occur before report verification.  The values are part of the
/// wire contract: they never change meaning across versions, new codes only
/// get new numbers.
pub mod code {
    /// The report was accepted.
    pub const ACCEPTED: u16 = 0;
    /// [`RejectionReason::ProgramIdMismatch`](crate::verifier::RejectionReason::ProgramIdMismatch).
    pub const PROGRAM_ID_MISMATCH: u16 = 1;
    /// [`RejectionReason::NonceMismatch`](crate::verifier::RejectionReason::NonceMismatch).
    pub const NONCE_MISMATCH: u16 = 2;
    /// [`RejectionReason::BadSignature`](crate::verifier::RejectionReason::BadSignature).
    pub const BAD_SIGNATURE: u16 = 3;
    /// [`RejectionReason::InvalidLoopPath`](crate::verifier::RejectionReason::InvalidLoopPath).
    pub const INVALID_LOOP_PATH: u16 = 4;
    /// [`RejectionReason::AuthenticatorMismatch`](crate::verifier::RejectionReason::AuthenticatorMismatch).
    pub const AUTHENTICATOR_MISMATCH: u16 = 5;
    /// [`RejectionReason::MetadataMismatch`](crate::verifier::RejectionReason::MetadataMismatch).
    pub const METADATA_MISMATCH: u16 = 6;
    /// The envelope names a session the service does not know (never opened,
    /// or already swept after expiry).
    pub const UNKNOWN_SESSION: u16 = 64;
    /// The session already reached a verdict; the submission was a replay.
    pub const SESSION_DECIDED: u16 = 65;
    /// The session's deadline passed before the evidence arrived.
    pub const SESSION_EXPIRED: u16 = 66;
    /// The evidence echoes a nonce that was already consumed by another
    /// session (cross-session replay).
    pub const NONCE_REPLAYED: u16 = 67;
    /// The envelope carried a message kind the session cannot accept.
    pub const UNEXPECTED_MESSAGE: u16 = 68;
    /// The service has no reference measurement for the session's input.
    pub const UNKNOWN_INPUT: u16 = 69;
    /// The envelope could not be decoded at all.
    pub const MALFORMED: u16 = 70;
    /// The envelope speaks a wire-format version this build does not.
    pub const UNSUPPORTED_VERSION: u16 = 71;
    /// The verifier itself failed (e.g. a golden-replay execution error) —
    /// an infrastructure fault, not a statement about the evidence.
    pub const INTERNAL_ERROR: u16 = 72;
    /// A session request was refused because the service is at its
    /// live-session limit (try again later; nothing about the prover is
    /// judged).
    pub const AT_CAPACITY: u16 = 73;
}

/// Identifier of one protocol session, unique per [`crate::service::VerifierService`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// A prover's request to open an attestation session for one program input.
///
/// This is the first message a *remote* prover sends when it connects to a
/// verifier over a transport (see the `lofat-net` crate): in-process embedders
/// call [`crate::service::VerifierService::open_session`] directly instead.
/// The verifier answers with either a [`ChallengeMsg`] (the session is open)
/// or a refusing [`VerdictMsg`] ([`code::PROGRAM_ID_MISMATCH`],
/// [`code::UNKNOWN_INPUT`] or [`code::AT_CAPACITY`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SessionRequestMsg {
    /// The program the prover wants to attest (`id_S`).
    pub program_id: String,
    /// The program input the prover will run under.
    pub input: Vec<u32>,
}

/// The challenge `(id_S, i, N)` sent from verifier to prover, plus the
/// session deadline so the prover knows how long its answer stays valid.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChallengeMsg {
    /// Identifier of the program to attest (`id_S`).
    pub program_id: String,
    /// Program input `i`.
    pub input: Vec<u32>,
    /// Freshness nonce `N`.
    pub nonce: Nonce,
    /// Cycle deadline (on the verifier's clock) after which evidence is
    /// rejected as expired; `u64::MAX` means no deadline.
    pub deadline_cycles: u64,
}

/// The prover's answer: the signed attestation report `(P, R)`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvidenceMsg {
    /// The signed report covering `A ‖ L ‖ N`.
    pub report: AttestationReport,
}

/// The verifier's final answer for one session.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct VerdictMsg {
    /// Whether the evidence was accepted.
    pub accepted: bool,
    /// Stable numeric code ([`code`]); [`code::ACCEPTED`] iff `accepted`.
    pub reason_code: u16,
    /// Human-readable detail (empty on acceptance).
    pub detail: String,
    /// The expected program result (`a0`) when the service knows it.
    pub expected_result: Option<u32>,
}

impl VerdictMsg {
    /// An accepting verdict.
    pub fn accepted(expected_result: Option<u32>) -> Self {
        Self { accepted: true, reason_code: code::ACCEPTED, detail: String::new(), expected_result }
    }

    /// A rejecting verdict with a stable `reason_code` and human detail.
    pub fn rejected(reason_code: u16, detail: impl Into<String>) -> Self {
        Self { accepted: false, reason_code, detail: detail.into(), expected_result: None }
    }
}

/// One protocol message, as carried in an [`Envelope`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum Message {
    /// Verifier → prover: attest this input under this nonce.
    Challenge(ChallengeMsg),
    /// Prover → verifier: the signed report.
    Evidence(EvidenceMsg),
    /// Verifier → prover/operator: the decision.
    Verdict(VerdictMsg),
    /// Prover → verifier: open a session for this program and input.
    ///
    /// Appended in wire revision 1 of version 1: the variant index extends the
    /// enum, so envelopes carrying the three original kinds are byte-identical
    /// to those of earlier builds, and earlier builds reject this kind as a
    /// malformed body rather than misparsing it.
    SessionRequest(SessionRequestMsg),
}

impl Message {
    /// Short human-readable kind name, used in diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Challenge(_) => "challenge",
            Message::Evidence(_) => "evidence",
            Message::Verdict(_) => "verdict",
            Message::SessionRequest(_) => "session-request",
        }
    }
}

/// A [`Message`] addressed to a session, with the wire-format version.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Envelope {
    /// Wire-format version ([`WIRE_VERSION`] for envelopes built by this code).
    pub version: u16,
    /// The session this message belongs to.
    pub session: SessionId,
    /// The message body.
    pub message: Message,
}

impl Envelope {
    /// Wraps `message` for `session` under the current [`WIRE_VERSION`].
    pub fn new(session: SessionId, message: Message) -> Self {
        Self { version: WIRE_VERSION, session, message }
    }

    /// Encodes the envelope to its deterministic byte representation.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Body`] if the body cannot be encoded (a contained
    /// collection overflowed the length prefix) and [`WireError::Oversized`]
    /// if the body exceeds the `u32` length field.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let body = serde::to_bytes(&self.message).map_err(WireError::Body)?;
        let body_len =
            u32::try_from(body.len()).map_err(|_| WireError::Oversized { len: body.len() })?;
        let mut out = Vec::with_capacity(HEADER_BYTES + body.len());
        out.extend_from_slice(&WIRE_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.session.0.to_le_bytes());
        out.extend_from_slice(&body_len.to_le_bytes());
        out.extend_from_slice(&body);
        Ok(out)
    }

    /// Decodes an envelope, rejecting bad magic, unsupported versions,
    /// truncated input and trailing bytes.  Never panics on malformed input.
    ///
    /// # Errors
    ///
    /// Returns the [`WireError`] describing the first problem found.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < HEADER_BYTES {
            return Err(WireError::Truncated { needed: HEADER_BYTES, have: bytes.len() });
        }
        if bytes[..4] != WIRE_MAGIC {
            return Err(WireError::BadMagic { found: [bytes[0], bytes[1], bytes[2], bytes[3]] });
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { found: version });
        }
        let session = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
        let body_len = u32::from_le_bytes(bytes[14..18].try_into().expect("4 bytes")) as usize;
        let body = &bytes[HEADER_BYTES..];
        if body.len() < body_len {
            return Err(WireError::Truncated {
                // Saturate: a hostile length near `u32::MAX` must not overflow
                // `usize` on 32-bit targets (decode never panics).
                needed: HEADER_BYTES.saturating_add(body_len),
                have: bytes.len(),
            });
        }
        if body.len() > body_len {
            return Err(WireError::TrailingBytes { extra: body.len() - body_len });
        }
        let message = serde::from_bytes(body).map_err(WireError::Body)?;
        Ok(Self { version, session: SessionId(session), message })
    }
}

/// Errors produced by the wire codec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The input does not start with [`WIRE_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The envelope's version field is not a version this build speaks.
    UnsupportedVersion {
        /// The version found on the wire.
        found: u16,
    },
    /// The input ended before the envelope was complete.
    Truncated {
        /// Total bytes the envelope needs.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Bytes were left over after the declared body length.
    TrailingBytes {
        /// Number of surplus bytes.
        extra: usize,
    },
    /// The body exceeds the `u32` length field.
    Oversized {
        /// The offending body length.
        len: usize,
    },
    /// The body is not a valid [`Message`] encoding.
    Body(serde::Error),
}

impl WireError {
    /// The stable numeric code a service reports for this error.
    pub fn code(&self) -> u16 {
        match self {
            WireError::UnsupportedVersion { .. } => code::UNSUPPORTED_VERSION,
            _ => code::MALFORMED,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { found } => {
                write!(f, "bad envelope magic {found:02x?}")
            }
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire version {found} (this build speaks {WIRE_VERSION})")
            }
            WireError::Truncated { needed, have } => {
                write!(f, "truncated envelope: need {needed} bytes, have {have}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the envelope body")
            }
            WireError::Oversized { len } => {
                write!(f, "envelope body of {len} bytes exceeds the u32 length field")
            }
            WireError::Body(e) => write!(f, "malformed envelope body: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Body(e) => Some(e),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots: the durable-state document.
// ---------------------------------------------------------------------------

/// Magic bytes opening every snapshot document.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"LFSN";

/// The snapshot-format version this build writes.  The format is append-only
/// like the envelope codec: new fields extend [`SnapshotMsg`] under a new
/// version number, and older documents keep decoding under theirs.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Size of the fixed snapshot header in bytes: magic (4) + version (2) +
/// body length (4) + SHA3-256 body digest (32).
pub const SNAPSHOT_HEADER_BYTES: usize = 42;

/// One still-open session as persisted in a snapshot.  The challenge nonce is
/// *not* stored: session `n` always carries `Nonce::from_counter(n)`, so the
/// restore path re-derives it — a tampered document cannot smuggle in a
/// foreign nonce.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SessionSnapshot {
    /// The session counter (and nonce counter).
    pub id: u64,
    /// The challenged program input.
    pub input: Vec<u32>,
    /// Expiry deadline on the service clock.
    pub deadline_cycles: u64,
}

/// One shard's durable state: the issuance watermark plus its live sessions.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardSnapshot {
    /// Sessions this shard has issued — **rounded up** by the writer's
    /// reserve margin, never down, so counters handed out after the snapshot
    /// was taken register as consumed (not fresh) after a crash-restore.
    pub issued: u64,
    /// The sessions still awaiting evidence, in ascending id order.
    pub sessions: Vec<SessionSnapshot>,
}

/// The complete durable state of one
/// [`VerifierService`](crate::service::VerifierService): measurement
/// database, configuration, clock, per-shard nonce watermarks and live
/// sessions, and the statistics books.
///
/// The verification key is deliberately **absent** — it is provided again at
/// restore time, so a snapshot document never carries key material.  The
/// verdict cache is also absent: it is a pure performance memo that restarts
/// cold.
///
/// ```text
/// offset  size  field
/// 0       4     magic  "LFSN"
/// 4       2     version (little-endian u16, currently 1)
/// 6       4     body length (little-endian u32)
/// 10      32    SHA3-256 digest of the body
/// 42      n     body: serde encoding of `SnapshotMsg`
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SnapshotMsg {
    /// The attested program (must match the embedded database).
    pub program_id: String,
    /// The service configuration, including the partition coordinates.
    pub config: crate::service::ServiceConfig,
    /// The service clock at snapshot time; restore resumes from here and the
    /// restored sessions expire against it.
    pub now_cycles: u64,
    /// The round-robin shard cursor.
    pub next_open: u64,
    /// The statistics books at snapshot time.
    pub stats: crate::service::ServiceStats,
    /// Per-shard watermarks and live sessions, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// The reference measurement database.
    pub db: crate::measurement_db::MeasurementDatabase,
}

impl SnapshotMsg {
    /// Encodes the snapshot to its deterministic byte representation.  The
    /// body digest makes bit rot (and tampering by anything weaker than a
    /// second-preimage attack on SHA3-256) detectable before the body is
    /// parsed at all.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Codec`] if the body cannot be encoded and
    /// [`SnapshotError::Oversized`] if it exceeds the `u32` length field.
    pub fn encode(&self) -> Result<Vec<u8>, SnapshotError> {
        let body = serde::to_bytes(self).map_err(SnapshotError::Codec)?;
        let body_len =
            u32::try_from(body.len()).map_err(|_| SnapshotError::Oversized { len: body.len() })?;
        let digest = lofat_crypto::Sha3_256::digest(&body);
        let mut out = Vec::with_capacity(SNAPSHOT_HEADER_BYTES + body.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&body_len.to_le_bytes());
        out.extend_from_slice(digest.as_bytes());
        out.extend_from_slice(&body);
        Ok(out)
    }

    /// Decodes a snapshot document, refusing bad magic, unknown versions,
    /// truncation, trailing bytes and any body whose digest does not match.
    /// Never panics on malformed input.
    ///
    /// # Errors
    ///
    /// Returns the [`SnapshotError`] describing the first problem found.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < SNAPSHOT_HEADER_BYTES {
            return Err(SnapshotError::Truncated {
                needed: SNAPSHOT_HEADER_BYTES,
                have: bytes.len(),
            });
        }
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic {
                found: [bytes[0], bytes[1], bytes[2], bytes[3]],
            });
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let body_len = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes")) as usize;
        let stored_digest = &bytes[10..SNAPSHOT_HEADER_BYTES];
        let body = &bytes[SNAPSHOT_HEADER_BYTES..];
        if body.len() < body_len {
            return Err(SnapshotError::Truncated {
                // Saturate: a hostile length near `u32::MAX` must not overflow
                // `usize` on 32-bit targets (decode never panics).
                needed: SNAPSHOT_HEADER_BYTES.saturating_add(body_len),
                have: bytes.len(),
            });
        }
        if body.len() > body_len {
            return Err(SnapshotError::TrailingBytes { extra: body.len() - body_len });
        }
        let digest = lofat_crypto::Sha3_256::digest(body);
        if digest.as_bytes() != stored_digest {
            return Err(SnapshotError::DigestMismatch);
        }
        serde::from_bytes(body).map_err(SnapshotError::Codec)
    }
}

/// Errors produced by the snapshot codec and the restore path.
///
/// Unlike [`WireError`] this carries [`std::io::Error`] (for the file
/// helpers on [`VerifierService`](crate::service::VerifierService)), so it
/// is not `Clone`/`PartialEq`.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The input does not start with [`SNAPSHOT_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The document's version field is not a version this build reads.
    UnsupportedVersion {
        /// The version found in the document.
        found: u16,
    },
    /// The input ended before the document was complete.
    Truncated {
        /// Total bytes the document needs.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Bytes were left over after the declared body length.
    TrailingBytes {
        /// Number of surplus bytes.
        extra: usize,
    },
    /// The body exceeds the `u32` length field.
    Oversized {
        /// The offending body length.
        len: usize,
    },
    /// The body's SHA3-256 digest does not match the header — the document
    /// was corrupted (or tampered with) after it was written.
    DigestMismatch,
    /// The body is not a valid [`SnapshotMsg`] encoding.
    Codec(serde::Error),
    /// The document decoded but describes an inconsistent service (wrong
    /// shard count, a session outside its shard's congruence class or above
    /// the issuance watermark, …).  Restore refuses rather than guessing.
    Invalid {
        /// What the validation found.
        reason: String,
    },
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic { found } => {
                write!(f, "bad snapshot magic {found:02x?}")
            }
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated { needed, have } => {
                write!(f, "truncated snapshot: need {needed} bytes, have {have}")
            }
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the snapshot body")
            }
            SnapshotError::Oversized { len } => {
                write!(f, "snapshot body of {len} bytes exceeds the u32 length field")
            }
            SnapshotError::DigestMismatch => {
                write!(f, "snapshot body digest mismatch (corrupted or tampered document)")
            }
            SnapshotError::Codec(e) => write!(f, "malformed snapshot body: {e}"),
            SnapshotError::Invalid { reason } => write!(f, "inconsistent snapshot: {reason}"),
            SnapshotError::Io(e) => write!(f, "snapshot i/o: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Codec(e) => Some(e),
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn challenge_envelope() -> Envelope {
        Envelope::new(
            SessionId(7),
            Message::Challenge(ChallengeMsg {
                program_id: "fig4-loop".into(),
                input: vec![6, 2],
                nonce: Nonce::from_counter(99),
                deadline_cycles: 10_000,
            }),
        )
    }

    #[test]
    fn envelope_round_trips() {
        let envelope = challenge_envelope();
        let bytes = envelope.encode().unwrap();
        assert_eq!(Envelope::decode(&bytes).unwrap(), envelope);
    }

    #[test]
    fn verdict_round_trips() {
        let envelope = Envelope::new(
            SessionId(3),
            Message::Verdict(VerdictMsg::rejected(code::NONCE_MISMATCH, "stale")),
        );
        let bytes = envelope.encode().unwrap();
        let decoded = Envelope::decode(&bytes).unwrap();
        assert_eq!(decoded, envelope);
        let Message::Verdict(v) = decoded.message else { panic!("wrong kind") };
        assert!(!v.accepted);
        assert_eq!(v.reason_code, code::NONCE_MISMATCH);
    }

    #[test]
    fn truncation_is_rejected_at_every_cut() {
        let bytes = challenge_envelope().encode().unwrap();
        for cut in 0..bytes.len() {
            assert!(Envelope::decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = challenge_envelope().encode().unwrap();
        bytes[0] = b'X';
        assert!(matches!(Envelope::decode(&bytes), Err(WireError::BadMagic { .. })));

        let mut bytes = challenge_envelope().encode().unwrap();
        bytes[4] = 0xff;
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(WireError::UnsupportedVersion { found }) if found != WIRE_VERSION
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = challenge_envelope().encode().unwrap();
        bytes.push(0);
        assert_eq!(Envelope::decode(&bytes), Err(WireError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn message_kinds_are_named() {
        assert_eq!(challenge_envelope().message.kind(), "challenge");
        assert_eq!(Message::Verdict(VerdictMsg::accepted(None)).kind(), "verdict");
    }

    #[test]
    fn session_request_round_trips() {
        let envelope = Envelope::new(
            SessionId(0),
            Message::SessionRequest(SessionRequestMsg {
                program_id: "fig4-loop".into(),
                input: vec![4],
            }),
        );
        let bytes = envelope.encode().unwrap();
        let decoded = Envelope::decode(&bytes).unwrap();
        assert_eq!(decoded, envelope);
        assert_eq!(decoded.message.kind(), "session-request");
    }

    #[test]
    fn session_request_variant_does_not_shift_existing_encodings() {
        // The new variant is appended, so the original kinds keep their
        // discriminants: a challenge body still opens with variant index 0.
        let bytes = challenge_envelope().encode().unwrap();
        assert_eq!(&bytes[HEADER_BYTES..HEADER_BYTES + 4], &0u32.to_le_bytes());
        let verdict = Envelope::new(SessionId(1), Message::Verdict(VerdictMsg::accepted(None)))
            .encode()
            .unwrap();
        assert_eq!(&verdict[HEADER_BYTES..HEADER_BYTES + 4], &2u32.to_le_bytes());
        // ...and the new variant itself sits at index 3, which transports may
        // peek (without a full decode) to route session requests.
        let request = Envelope::new(
            SessionId(0),
            Message::SessionRequest(SessionRequestMsg { program_id: "p".into(), input: vec![] }),
        )
        .encode()
        .unwrap();
        assert_eq!(&request[HEADER_BYTES..HEADER_BYTES + 4], &3u32.to_le_bytes());
    }
}

//! Indirect-branch target CAM (§5.2).
//!
//! Indirect branches inside loops can target addresses that cannot be enumerated
//! statically.  Including full 32-bit targets in the path encoding would blow up the
//! path-indexed memory, so LO-FAT re-encodes each distinct target seen in a loop
//! into a small n-bit code using a content-addressable memory (two interleaved CAMs
//! in the prototype, for single-cycle constant-time lookup).  When more than 2ⁿ − 1
//! distinct targets appear, the engine reports the **all-zero code** so the verifier
//! learns that the encoding overflowed.

use std::collections::BTreeMap;

/// The code reported when the CAM runs out of encodable entries.
pub const OVERFLOW_CODE: u32 = 0;

/// A constant-time (modelled) content-addressable memory mapping 32-bit indirect
/// branch targets to n-bit codes.
#[derive(Debug, Clone)]
pub struct IndirectTargetCam {
    bits: u32,
    /// Target address → assigned code, in assignment order starting at 1.
    entries: BTreeMap<u32, u32>,
    /// Number of lookups that could not be assigned a code.
    overflows: u64,
    /// Total lookups performed.
    lookups: u64,
}

impl IndirectTargetCam {
    /// Creates an empty CAM with n-bit codes (capacity 2ⁿ − 1 targets).
    pub fn new(bits: u32) -> Self {
        Self { bits, entries: BTreeMap::new(), overflows: 0, lookups: 0 }
    }

    /// Number of bits per code.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Maximum number of distinct targets the CAM can encode.
    pub fn capacity(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Number of targets currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no target has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up (and, if necessary and possible, inserts) `target`, returning its
    /// n-bit code.  Returns [`OVERFLOW_CODE`] if the CAM is full and the target is
    /// not already present.
    pub fn encode(&mut self, target: u32) -> u32 {
        self.lookups += 1;
        if let Some(&code) = self.entries.get(&target) {
            return code;
        }
        if self.entries.len() as u32 >= self.capacity() {
            self.overflows += 1;
            return OVERFLOW_CODE;
        }
        let code = self.entries.len() as u32 + 1;
        self.entries.insert(target, code);
        code
    }

    /// The target → code table, in ascending target order (used to build the
    /// metadata record for the verifier).
    pub fn table(&self) -> Vec<(u32, u32)> {
        self.entries.iter().map(|(&t, &c)| (t, c)).collect()
    }

    /// Number of lookups that returned the overflow code.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Clears the CAM for re-use by a subsequent loop execution (the hardware re-uses
    /// the memory after a loop exits).
    ///
    /// Resets the overflow/lookup counters too: they are reported per activation
    /// (via [`crate::loop_monitor::MonitorOutput::cam_overflows`] at loop exit),
    /// so a recycled CAM must start from zero exactly like a freshly built one.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.overflows = 0;
        self.lookups = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_start_at_one() {
        let mut cam = IndirectTargetCam::new(4);
        assert_eq!(cam.capacity(), 15);
        let a = cam.encode(0x2000);
        let b = cam.encode(0x3000);
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(cam.encode(0x2000), 1, "repeated target keeps its code");
        assert_eq!(cam.len(), 2);
        assert_eq!(cam.lookups(), 3);
    }

    #[test]
    fn overflow_reports_all_zero_code() {
        let mut cam = IndirectTargetCam::new(2); // capacity 3
        assert_eq!(cam.encode(0x10), 1);
        assert_eq!(cam.encode(0x20), 2);
        assert_eq!(cam.encode(0x30), 3);
        assert_eq!(cam.encode(0x40), OVERFLOW_CODE);
        assert_eq!(cam.overflows(), 1);
        // Known targets still resolve after an overflow.
        assert_eq!(cam.encode(0x20), 2);
    }

    #[test]
    fn clear_reuses_memory() {
        let mut cam = IndirectTargetCam::new(2);
        cam.encode(0x10);
        cam.encode(0x20);
        cam.clear();
        assert!(cam.is_empty());
        assert_eq!(cam.encode(0x99), 1);
    }

    #[test]
    fn clear_resets_overflow_and_lookup_counters() {
        // 1-bit codes: capacity 1, so the second distinct target overflows.
        let mut cam = IndirectTargetCam::new(1);
        cam.encode(0x10);
        cam.encode(0x20);
        assert_eq!(cam.overflows(), 1);
        assert_eq!(cam.lookups(), 2);
        cam.clear();
        assert_eq!(cam.overflows(), 0, "recycled CAM must not re-report old overflows");
        assert_eq!(cam.lookups(), 0);
    }

    #[test]
    fn table_is_deterministic() {
        let mut cam = IndirectTargetCam::new(4);
        cam.encode(0x300);
        cam.encode(0x100);
        cam.encode(0x200);
        assert_eq!(cam.table(), vec![(0x100, 2), (0x200, 3), (0x300, 1)]);
    }
}

//! The end-to-end attestation protocol of Fig. 2.
//!
//! ```text
//!  Verifier V                                Prover P
//!     │      id_S, i, N  (challenge)            │
//!     │ ────────────────────────────────────▶   │  executes S(i, I) under LO-FAT
//!     │                                         │  P = (A, L), R = sign(P ‖ N; sk)
//!     │      P, R        (report)               │
//!     │ ◀────────────────────────────────────   │
//!     │  versig(R; pk), ver(P, CFG(S)|i)        │
//! ```
//!
//! [`run_attestation`] drives one round trip between an in-process verifier and
//! prover; the examples use it as the one-call entry point.
//!
//! Since the sans-I/O redesign this is a thin adapter over the session layer:
//! it opens a [`crate::session::VerifierSession`], moves the challenge and the
//! evidence through the [`crate::wire`] byte codec (so the in-process path
//! exercises exactly the bytes a remote deployment would), and maps the
//! session outcome back to the classic `Result` shape — acceptance returns the
//! [`ProtocolOutcome`], rejection returns [`LofatError::Rejected`] with the
//! same [`crate::verifier::RejectionReason`]s as before.  Multi-session and
//! remote deployments should use [`crate::session`] /
//! [`crate::service::VerifierService`] directly; high-throughput deployments
//! additionally shard the service ([`crate::service::ServiceConfig::shards`])
//! and drain verification through a [`crate::pool::ParallelVerifier`] worker
//! pool — both are proven verdict-equivalent to this single-threaded path by
//! `tests/e13_concurrent_service.rs`.

use crate::error::LofatError;
use crate::prover::{Adversary, NoAdversary, Prover, ProverRun};
use crate::session::{ProverSession, SessionDecision, SessionError};
use crate::verifier::{Challenge, Verdict, Verifier};
use crate::wire::{Envelope, SessionId};

/// Everything produced by one protocol round trip.
#[derive(Debug, Clone)]
pub struct ProtocolOutcome {
    /// The challenge the verifier issued.
    pub challenge: Challenge,
    /// The prover's run (report + execution results).
    pub prover_run: ProverRun,
    /// The verifier's verdict (present only when the report was accepted).
    pub verdict: Verdict,
}

/// Runs one attestation round trip with an honest prover.
///
/// # Errors
///
/// Propagates prover execution errors and verification rejections.
///
/// # Example
///
/// ```
/// use lofat::protocol::run_attestation;
/// use lofat::{Prover, Verifier};
/// use lofat_crypto::DeviceKey;
/// use lofat_rv32::asm::assemble;
///
/// let program = assemble(
///     ".text\nmain:\n    li t0, 3\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ecall\n",
/// )?;
/// let key = DeviceKey::from_seed("example");
/// let mut prover = Prover::new(program.clone(), "demo", key.clone());
/// let mut verifier = Verifier::new(program, "demo", key.verification_key())?;
/// let outcome = run_attestation(&mut verifier, &mut prover, vec![])?;
/// assert_eq!(outcome.prover_run.report.metadata.loop_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_attestation(
    verifier: &mut Verifier,
    prover: &mut Prover,
    input: Vec<u32>,
) -> Result<ProtocolOutcome, LofatError> {
    run_attestation_with_adversary(verifier, prover, input, &mut NoAdversary)
}

/// Runs one attestation round trip while `adversary` corrupts the prover's data
/// memory during execution (the report is still produced and verified; a detected
/// attack surfaces as [`LofatError::Rejected`]).
///
/// # Errors
///
/// Propagates prover execution errors and verification rejections.
pub fn run_attestation_with_adversary<A: Adversary + ?Sized>(
    verifier: &mut Verifier,
    prover: &mut Prover,
    input: Vec<u32>,
    adversary: &mut A,
) -> Result<ProtocolOutcome, LofatError> {
    // One in-process session with no deadline; the messages still travel
    // through the full wire codec so this path is bit-for-bit the remote one.
    let mut session = verifier.begin_session(SessionId(1), input, u64::MAX);
    let challenge = session.challenge().clone();
    let challenge_bytes = session.challenge_envelope().encode()?;
    let challenge_envelope = Envelope::decode(&challenge_bytes)?;

    let (evidence_envelope, prover_run) = ProverSession::new(prover)
        .respond_with_adversary(&challenge_envelope, adversary)
        .map_err(|e| match e {
            // The session-layer prover refuses mismatched programs up front;
            // legacy `run_attestation` let the verifier reject the report, so
            // restore that error shape here (note the swapped perspective:
            // the verifier expected its own id and found the prover's).
            LofatError::Session(SessionError::ProgramMismatch { expected, found }) => {
                LofatError::Rejected(crate::verifier::RejectionReason::ProgramIdMismatch {
                    expected: found,
                    found: expected,
                })
            }
            other => other,
        })?;
    let evidence_bytes = evidence_envelope.encode()?;
    let evidence = Envelope::decode(&evidence_bytes)?;

    let outcome = session.process_evidence(&evidence, verifier, 0).map_err(|e| match e {
        // A golden-replay failure is the verifier's own error, same as before
        // the redesign.
        SessionError::Verifier(inner) => *inner,
        other => LofatError::Session(other),
    })?;
    match outcome.decision {
        SessionDecision::Accepted(verdict) => {
            Ok(ProtocolOutcome { challenge, prover_run, verdict })
        }
        SessionDecision::Rejected(reason) => Err(LofatError::Rejected(reason)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lofat_crypto::DeviceKey;
    use lofat_rv32::asm::assemble;

    const PROGRAM: &str = r#"
        .data
        input:
            .space 16
        .text
        main:
            la   t0, input
            lw   t1, 0(t0)
            li   a0, 0
            beqz t1, done
        loop:
            addi a0, a0, 2
            addi t1, t1, -1
            bnez t1, loop
        done:
            ecall
    "#;

    fn setup() -> (Verifier, Prover) {
        let program = assemble(PROGRAM).unwrap();
        let key = DeviceKey::from_seed("protocol");
        let prover = Prover::new(program.clone(), "double", key.clone());
        let verifier = Verifier::new(program, "double", key.verification_key()).unwrap();
        (verifier, prover)
    }

    #[test]
    fn honest_round_trip_succeeds() {
        let (mut verifier, mut prover) = setup();
        let outcome = run_attestation(&mut verifier, &mut prover, vec![5]).unwrap();
        assert_eq!(outcome.prover_run.exit.register_a0, 10);
        assert_eq!(outcome.verdict.replay_exit.register_a0, 10);
    }

    #[test]
    fn each_round_uses_a_fresh_nonce() {
        let (mut verifier, mut prover) = setup();
        let first = run_attestation(&mut verifier, &mut prover, vec![2]).unwrap();
        let second = run_attestation(&mut verifier, &mut prover, vec![2]).unwrap();
        assert_ne!(first.challenge.nonce, second.challenge.nonce);
    }

    #[test]
    fn mismatched_program_ids_keep_the_legacy_rejection_shape() {
        let program = assemble(PROGRAM).unwrap();
        let key = DeviceKey::from_seed("protocol");
        let mut prover = Prover::new(program.clone(), "prover-prog", key.clone());
        let mut verifier = Verifier::new(program, "verifier-prog", key.verification_key()).unwrap();
        let err = run_attestation(&mut verifier, &mut prover, vec![1]).unwrap_err();
        assert!(matches!(
            err,
            LofatError::Rejected(crate::verifier::RejectionReason::ProgramIdMismatch {
                ref expected,
                ref found,
            }) if expected == "verifier-prog" && found == "prover-prog"
        ));
    }

    #[test]
    fn adversarial_round_trip_is_rejected() {
        let (mut verifier, mut prover) = setup();
        let input_addr = prover.program().symbol("input").unwrap();
        // The adversary boosts the iteration count in memory (attack class ②).
        let mut attack = move |cpu: &mut lofat_rv32::Cpu, retired: u64| {
            if retired == 1 {
                cpu.memory_mut().poke_bytes(input_addr, &9u32.to_le_bytes()).unwrap();
            }
        };
        let err = run_attestation_with_adversary(&mut verifier, &mut prover, vec![2], &mut attack)
            .unwrap_err();
        assert!(matches!(err, LofatError::Rejected(_)));
    }
}

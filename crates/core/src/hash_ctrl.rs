//! Hash engine controller (③⑦⑪ in Fig. 3).
//!
//! The controller sits between the branch filter / loop monitor and the streaming
//! SHA-3 engine.  It receives `(Src, Dest)` pairs, feeds them to the engine one
//! 64-bit word per cycle, and rides out the engine's 3-cycle busy windows using the
//! engine's small input cache buffer.  Because the controller runs in parallel with
//! the processor it never stalls the attested software; what it does track is its own
//! occupancy so the evaluation can show that no trace data is ever dropped (§5.3).

use crate::branches_mem::BranchPair;
use crate::error::LofatError;
use lofat_crypto::{Digest, HashEngine, HashEngineConfig};
use std::collections::VecDeque;

/// Statistics of the hash path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HashControllerStats {
    /// Pairs submitted for hashing.
    pub pairs_submitted: u64,
    /// Words absorbed by the engine so far.
    pub words_absorbed: u64,
    /// Cycles the controller has advanced the engine.
    pub cycles: u64,
    /// Maximum number of pairs waiting in the controller queue.
    pub max_queue_depth: usize,
}

/// The hash engine controller.
#[derive(Debug, Clone)]
pub struct HashController {
    engine: HashEngine,
    /// Pairs accepted but not yet offered to the engine's input buffer.
    queue: VecDeque<BranchPair>,
    stats: HashControllerStats,
}

impl HashController {
    /// Creates a controller driving a freshly initialised hash engine.
    pub fn new(config: HashEngineConfig) -> Self {
        Self {
            engine: HashEngine::new(config),
            queue: VecDeque::new(),
            stats: HashControllerStats::default(),
        }
    }

    /// Submits one `(Src, Dest)` pair for inclusion in the authenticator.
    pub fn submit(&mut self, pair: BranchPair) {
        self.queue.push_back(pair);
        self.stats.pairs_submitted += 1;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
        // Opportunistically push queued words into the engine.
        self.pump();
    }

    /// Submits a batch of pairs (a newly observed loop path).
    pub fn submit_all(&mut self, pairs: impl IntoIterator<Item = BranchPair>) {
        for pair in pairs {
            self.submit(pair);
        }
    }

    /// Advances the engine by one cycle and feeds it from the queue.
    pub fn pump(&mut self) {
        // Move queued pairs into the engine's input buffer while there is room; the
        // controller applies back-pressure instead of offering into a full buffer, so
        // the engine never observes a dropped word.
        while self.engine.buffered() < self.engine.config().input_buffer_words {
            let Some(pair) = self.queue.pop_front() else { break };
            self.engine.offer(pair.to_word()).expect("buffer has room");
            self.stats.words_absorbed += 1;
        }
        self.engine.step();
        self.stats.cycles += 1;
    }

    /// Number of pairs waiting in the controller queue (excluding the engine buffer).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.engine.buffered()
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &HashControllerStats {
        &self.stats
    }

    /// Statistics of the underlying streaming engine.
    pub fn engine_stats(&self) -> lofat_crypto::HashEngineStats {
        *self.engine.stats()
    }

    /// Drains all pending input and finalizes the authenticator `A`.
    ///
    /// # Errors
    ///
    /// Returns an error if the engine was already finalized.
    pub fn finalize(&mut self) -> Result<Digest, LofatError> {
        while !self.queue.is_empty() {
            self.pump();
        }
        Ok(self.engine.finalize()?)
    }
}

impl Default for HashController {
    fn default() -> Self {
        Self::new(HashEngineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lofat_crypto::Sha3_512;

    #[test]
    fn digest_matches_software_hash_of_same_words() {
        let mut ctrl = HashController::default();
        let pairs: Vec<BranchPair> =
            (0..50u32).map(|i| BranchPair::new(0x1000 + 4 * i, 0x2000 + 4 * i)).collect();
        ctrl.submit_all(pairs.clone());
        let digest = ctrl.finalize().unwrap();

        let mut reference = Sha3_512::new();
        for pair in &pairs {
            reference.update(pair.to_word().to_le_bytes());
        }
        assert_eq!(digest, reference.finalize());
    }

    #[test]
    fn nothing_is_dropped_even_under_bursts() {
        let mut ctrl = HashController::default();
        // Submit bursts far faster than the engine's sustainable rate; the controller
        // queue absorbs the excess (the hardware sizes the branches memory for this).
        for burst in 0..100u32 {
            for i in 0..20u32 {
                ctrl.submit(BranchPair::new(burst * 100 + i, i));
            }
        }
        let submitted = ctrl.stats().pairs_submitted;
        ctrl.finalize().unwrap();
        assert_eq!(submitted, 2000);
        assert_eq!(ctrl.engine_stats().words_absorbed, 2000);
        assert_eq!(ctrl.engine_stats().words_dropped, 0);
    }

    #[test]
    fn empty_stream_matches_empty_hash() {
        let mut ctrl = HashController::default();
        assert_eq!(ctrl.finalize().unwrap(), Sha3_512::digest(b""));
    }

    #[test]
    fn finalize_twice_fails() {
        let mut ctrl = HashController::default();
        ctrl.finalize().unwrap();
        assert!(ctrl.finalize().is_err());
    }

    #[test]
    fn pending_reflects_queue_and_engine_buffer() {
        let mut ctrl = HashController::default();
        for i in 0..10u32 {
            ctrl.submit(BranchPair::new(i, i));
        }
        assert!(ctrl.pending() > 0);
        ctrl.finalize().unwrap();
        assert_eq!(ctrl.pending(), 0);
    }
}

//! Hash engine controller (③⑦⑪ in Fig. 3).
//!
//! The controller sits between the branch filter / loop monitor and the streaming
//! SHA-3 engine.  It receives `(Src, Dest)` pairs, feeds them to the engine one
//! 64-bit word per cycle, and rides out the engine's 3-cycle busy windows using the
//! engine's small input cache buffer.  Because the controller runs in parallel with
//! the processor it never stalls the attested software; what it does track is its own
//! occupancy so the evaluation can show that no trace data is ever dropped (§5.3).

use crate::branches_mem::BranchPair;
use crate::error::LofatError;
use lofat_crypto::{Digest, HashEngine, HashEngineConfig};
use std::collections::VecDeque;

/// Statistics of the hash path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HashControllerStats {
    /// Pairs submitted for hashing.
    pub pairs_submitted: u64,
    /// Words absorbed by the engine so far.
    pub words_absorbed: u64,
    /// Cycles the controller has advanced the engine.
    pub cycles: u64,
    /// Maximum number of pairs waiting in the controller queue.
    pub max_queue_depth: usize,
}

/// The hash engine controller.
#[derive(Debug, Clone)]
pub struct HashController {
    engine: HashEngine,
    /// Pairs accepted but not yet offered to the engine's input buffer.
    queue: VecDeque<BranchPair>,
    stats: HashControllerStats,
}

impl HashController {
    /// Creates a controller driving a freshly initialised hash engine.
    pub fn new(config: HashEngineConfig) -> Self {
        Self {
            engine: HashEngine::new(config),
            queue: VecDeque::new(),
            stats: HashControllerStats::default(),
        }
    }

    /// Submits one `(Src, Dest)` pair for inclusion in the authenticator.
    pub fn submit(&mut self, pair: BranchPair) {
        self.queue.push_back(pair);
        self.stats.pairs_submitted += 1;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
        // Opportunistically push queued words into the engine.
        self.pump();
    }

    /// Submits a batch of pairs (a newly observed loop path).
    ///
    /// The whole batch is enqueued first, `max_queue_depth` is updated once for
    /// the resulting occupancy and the engine is pumped once — words are absorbed
    /// in runs instead of paying one offer/pump round trip per word.  An empty
    /// batch is a no-op (no pump), exactly like the per-pair loop it replaces.
    ///
    /// Invariants of batching: the digest, `pairs_submitted`, the engine's
    /// `words_absorbed`, `permutations`, total `busy_cycles` and `words_dropped`
    /// (always 0 — back-pressure) are identical to per-pair submission.  What
    /// batching deliberately changes is the *occupancy* accounting:
    /// `max_queue_depth` now reflects the batch high-water mark (the pre-batch
    /// code pumped between pairs, hiding it) and cycle counters advance once per
    /// pump rather than once per pair.
    pub fn submit_all(&mut self, pairs: impl IntoIterator<Item = BranchPair>) {
        let before = self.queue.len();
        self.queue.extend(pairs);
        self.finish_batch(before);
    }

    /// Hot-path variant of [`HashController::submit_all`]: drains `pairs` into the
    /// controller queue without consuming the caller's allocation, so the engine
    /// can reuse its scratch buffer across steps.
    pub fn submit_batch(&mut self, pairs: &mut Vec<BranchPair>) {
        if pairs.is_empty() {
            return;
        }
        let before = self.queue.len();
        self.queue.extend(pairs.drain(..));
        self.finish_batch(before);
    }

    /// Shared tail of the batch submission paths: accounts for everything
    /// enqueued past `before` and pumps once (no-op for an empty batch).
    fn finish_batch(&mut self, before: usize) {
        let pushed = self.queue.len() - before;
        if pushed == 0 {
            return;
        }
        self.stats.pairs_submitted += pushed as u64;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
        self.pump();
    }

    /// Advances the engine by one cycle and feeds it from the queue.
    #[inline]
    pub fn pump(&mut self) {
        // Idle fast path: nothing queued, nothing buffered, no permutation
        // running — the cycle counters advance and nothing else can change.
        if self.queue.is_empty() && self.engine.is_idle() {
            self.engine.tick_idle();
            self.stats.cycles += 1;
            return;
        }
        // Move queued pairs into the engine's input buffer while there is room; the
        // controller applies back-pressure instead of offering into a full buffer, so
        // the engine never observes a dropped word.
        while self.engine.buffered() < self.engine.config().input_buffer_words {
            let Some(pair) = self.queue.pop_front() else { break };
            self.engine.offer(pair.to_word()).expect("buffer has room");
            self.stats.words_absorbed += 1;
        }
        self.engine.step();
        self.stats.cycles += 1;
    }

    /// Number of pairs waiting in the controller queue (excluding the engine buffer).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.engine.buffered()
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &HashControllerStats {
        &self.stats
    }

    /// Statistics of the underlying streaming engine.
    pub fn engine_stats(&self) -> lofat_crypto::HashEngineStats {
        *self.engine.stats()
    }

    /// Drains all pending input and finalizes the authenticator `A`.
    ///
    /// # Errors
    ///
    /// Returns an error if the engine was already finalized.
    pub fn finalize(&mut self) -> Result<Digest, LofatError> {
        while !self.queue.is_empty() {
            self.pump();
        }
        Ok(self.engine.finalize()?)
    }

    /// Finalizes many independent controllers together, returning their
    /// authenticators in controller order.  Each controller's queue is pumped
    /// dry exactly as by [`HashController::finalize`] (per-controller cycle
    /// accounting is unchanged), then the underlying engines' digests are
    /// drained through the multi-lane batch path
    /// ([`HashEngine::finalize_many`]) in groups of four with a scalar tail.
    /// Digests are bit-identical to per-controller `finalize` calls.
    ///
    /// # Errors
    ///
    /// Returns an error if any controller was already finalized (no engine is
    /// finalized in that case).
    pub fn finalize_all<'a>(
        controllers: impl IntoIterator<Item = &'a mut HashController>,
    ) -> Result<Vec<Digest>, LofatError> {
        let controllers: Vec<&'a mut HashController> = controllers.into_iter().collect();
        let mut engines = Vec::with_capacity(controllers.len());
        for controller in controllers {
            while !controller.queue.is_empty() {
                controller.pump();
            }
            engines.push(&mut controller.engine);
        }
        Ok(HashEngine::finalize_many(engines)?)
    }
}

impl Default for HashController {
    fn default() -> Self {
        Self::new(HashEngineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lofat_crypto::Sha3_512;

    #[test]
    fn digest_matches_software_hash_of_same_words() {
        let mut ctrl = HashController::default();
        let pairs: Vec<BranchPair> =
            (0..50u32).map(|i| BranchPair::new(0x1000 + 4 * i, 0x2000 + 4 * i)).collect();
        ctrl.submit_all(pairs.clone());
        let digest = ctrl.finalize().unwrap();

        let mut reference = Sha3_512::new();
        for pair in &pairs {
            reference.update(pair.to_word().to_le_bytes());
        }
        assert_eq!(digest, reference.finalize());
    }

    #[test]
    fn nothing_is_dropped_even_under_bursts() {
        let mut ctrl = HashController::default();
        // Submit bursts far faster than the engine's sustainable rate; the controller
        // queue absorbs the excess (the hardware sizes the branches memory for this).
        for burst in 0..100u32 {
            for i in 0..20u32 {
                ctrl.submit(BranchPair::new(burst * 100 + i, i));
            }
        }
        let submitted = ctrl.stats().pairs_submitted;
        ctrl.finalize().unwrap();
        assert_eq!(submitted, 2000);
        assert_eq!(ctrl.engine_stats().words_absorbed, 2000);
        assert_eq!(ctrl.engine_stats().words_dropped, 0);
    }

    #[test]
    fn empty_stream_matches_empty_hash() {
        let mut ctrl = HashController::default();
        assert_eq!(ctrl.finalize().unwrap(), Sha3_512::digest(b""));
    }

    #[test]
    fn finalize_twice_fails() {
        let mut ctrl = HashController::default();
        ctrl.finalize().unwrap();
        assert!(ctrl.finalize().is_err());
    }

    #[test]
    fn finalize_all_matches_individual_finalizes() {
        // Batch sizes straddling the 4-lane boundary; each controller carries
        // a different stream (fed via `submit_all`, some still queued).
        for batch in 0usize..=9 {
            let mut batched: Vec<HashController> = (0..batch)
                .map(|c| {
                    let mut ctrl = HashController::default();
                    let pairs: Vec<BranchPair> = (0..30 * c as u32 + 5)
                        .map(|i| BranchPair::new(0x1000 + 4 * i, 0x2000 + 8 * c as u32 + i))
                        .collect();
                    ctrl.submit_all(pairs);
                    ctrl
                })
                .collect();
            let mut reference = batched.clone();
            let digests = HashController::finalize_all(batched.iter_mut()).unwrap();
            assert_eq!(digests.len(), batch);
            for (c, (digest, ctrl)) in digests.iter().zip(&mut reference).enumerate() {
                assert_eq!(digest, &ctrl.finalize().unwrap(), "batch {batch}, controller {c}");
            }
            for ctrl in &mut batched {
                assert!(ctrl.finalize().is_err(), "batch finalize marked the stream done");
            }
        }
    }

    #[test]
    fn finalize_all_rejects_already_finalized_controllers() {
        let mut done = HashController::default();
        done.finalize().unwrap();
        let mut fresh = HashController::default();
        fresh.submit(BranchPair::new(1, 2));
        let err = HashController::finalize_all([&mut fresh, &mut done]).unwrap_err();
        assert!(matches!(err, LofatError::Hash(_)));
        assert!(fresh.finalize().is_ok(), "the fresh controller is untouched");
    }

    #[test]
    fn pending_reflects_queue_and_engine_buffer() {
        let mut ctrl = HashController::default();
        for i in 0..10u32 {
            ctrl.submit(BranchPair::new(i, i));
        }
        assert!(ctrl.pending() > 0);
        ctrl.finalize().unwrap();
        assert_eq!(ctrl.pending(), 0);
    }
}

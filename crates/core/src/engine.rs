//! The LO-FAT engine: the composition of all Fig. 3 units into a trace-port sink.
//!
//! The engine implements [`lofat_rv32::trace::TraceSink`], so attaching it to a CPU
//! run is a one-liner; crucially it is a *pure observer* — it never influences the
//! CPU's cycle count, which is exactly the paper's "no processor stalls" property
//! (experiment E2 checks it by construction and by measurement).
//!
//! Internally the engine does incur latency (2 cycles per branch event and 5 cycles
//! per loop exit, §6.1), which it accounts in [`EngineStats`] without ever blocking
//! the trace stream (experiment E3).

use crate::branch_filter::BranchFilter;
use crate::config::{EngineConfig, BRANCH_EVENT_LATENCY, LOOP_EXIT_LATENCY};
use crate::error::LofatError;
use crate::hash_ctrl::HashController;
use crate::loop_monitor::{LoopMonitor, MonitorOutput};
use crate::metadata::Metadata;
use lofat_crypto::Digest;
use lofat_rv32::trace::{RetiredInst, TraceSink};
use lofat_rv32::Program;

/// Statistics gathered by the engine during an attested run.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineStats {
    /// Retired instructions observed on the trace port.
    pub instructions_observed: u64,
    /// Control-flow events filtered in by the branch filter.
    pub branch_events: u64,
    /// Loops entered (tracked activations).
    pub loops_entered: u64,
    /// Loops exited (records produced).
    pub loops_exited: u64,
    /// Loop entries that could not be tracked because the nesting capacity was full.
    pub untracked_loops: u64,
    /// Completed loop iterations counted by the loop counter memory.
    pub iterations_counted: u64,
    /// Newly observed loop paths (each hashed exactly once).
    pub new_paths: u64,
    /// `(Src, Dest)` pairs forwarded to the hash engine.
    pub pairs_hashed: u64,
    /// `(Src, Dest)` pairs whose hashing was avoided by loop compression.
    pub pairs_compressed: u64,
    /// CAM overflow events (indirect targets reported with the all-zero code).
    pub cam_overflows: u64,
    /// Deepest simultaneous loop nesting observed.
    pub max_nesting_observed: usize,
    /// Deepest call/recursion depth observed (linking branches minus returns); the
    /// paper's loop metadata covers recursive functions' iteration behaviour and this
    /// statistic exposes the recursion depth the engine had to follow.
    pub max_call_depth: usize,
    /// Internal engine latency in cycles (2 per branch event + 5 per loop exit);
    /// absorbed by buffering, never exposed to the processor.
    pub internal_latency_cycles: u64,
    /// Extra cycles the attested software had to spend because of attestation —
    /// always 0 for LO-FAT, reported for symmetry with the C-FLAT baseline.
    pub processor_overhead_cycles: u64,
}

impl EngineStats {
    /// Fraction of control-flow pairs that did not need hashing thanks to loop
    /// compression.
    pub fn compression_ratio(&self) -> f64 {
        let total = self.pairs_hashed + self.pairs_compressed;
        if total == 0 {
            0.0
        } else {
            self.pairs_compressed as f64 / total as f64
        }
    }
}

/// The result of an attested execution: the authenticator `A`, the loop metadata `L`
/// and the engine statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The cumulative SHA-3-512 authenticator over the executed `(Src, Dest)` pairs.
    pub authenticator: Digest,
    /// The loop auxiliary metadata.
    pub metadata: Metadata,
    /// Engine statistics (not part of the signed report, but used by the evaluation).
    pub stats: EngineStats,
}

impl Measurement {
    /// The byte string `A ‖ L` that the prover signs together with the nonce.
    pub fn signed_payload(&self) -> Vec<u8> {
        let mut payload = self.authenticator.as_bytes().to_vec();
        payload.extend_from_slice(&self.metadata.to_bytes());
        payload
    }
}

/// The LO-FAT engine.
#[derive(Debug, Clone)]
pub struct LofatEngine {
    config: EngineConfig,
    filter: BranchFilter,
    monitor: LoopMonitor,
    hash: HashController,
    metadata: Metadata,
    stats: EngineStats,
    /// Reusable monitor-output scratch: cleared and refilled by every monitor
    /// call, drained by [`LofatEngine::absorb_scratch`].  Owning it here (instead
    /// of allocating a fresh output per step) is what makes the steady-state
    /// trace path allocation-free.
    scratch: MonitorOutput,
    /// Current call depth (linking branches minus returns), for the recursion stat.
    call_depth: usize,
    finalized: bool,
}

impl LofatEngine {
    /// Creates an engine attesting the code region given in `config` (the whole
    /// address space if no region is configured).
    ///
    /// # Errors
    ///
    /// Returns [`LofatError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: EngineConfig) -> Result<Self, LofatError> {
        config.validate()?;
        let start = config.attest_start.unwrap_or(0);
        let end = config.attest_end.unwrap_or(u32::MAX);
        Ok(Self {
            filter: BranchFilter::new(start, end),
            monitor: LoopMonitor::new(config),
            hash: HashController::new(config.hash_engine),
            metadata: Metadata::new(),
            stats: EngineStats::default(),
            scratch: MonitorOutput::new(),
            call_depth: 0,
            finalized: false,
            config,
        })
    }

    /// Creates an engine attesting the whole code segment of `program`.
    ///
    /// # Errors
    ///
    /// Returns [`LofatError::InvalidConfig`] if the configuration is invalid.
    pub fn for_program(program: &Program, mut config: EngineConfig) -> Result<Self, LofatError> {
        config.attest_start = Some(config.attest_start.unwrap_or(program.text_base));
        config.attest_end = Some(config.attest_end.unwrap_or(program.text_end()));
        Self::new(config)
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Processes one retired instruction (the [`TraceSink`] entry point).
    #[inline]
    pub fn observe(&mut self, retired: &RetiredInst) {
        if self.finalized {
            return;
        }
        self.stats.instructions_observed += 1;

        if self.filter.in_region(retired.pc) {
            // 1. Loop-exit detection runs for every retired instruction in the
            //    region.  `needs_exit_check` is a single stack-top probe, so the
            //    common "no loop exits here" case touches no output buffer at all.
            if self.monitor.needs_exit_check(retired.pc) {
                self.monitor.check_exits(retired.pc, &mut self.scratch);
                self.absorb_scratch(0);
            }

            // 2. Control-flow instructions are filtered in and forwarded (the
            //    region test above is shared with the filter).
            if let Some(event) = self.filter.filter_in_region(retired) {
                self.stats.branch_events += 1;
                if event.kind.is_linking() {
                    self.call_depth += 1;
                    self.stats.max_call_depth = self.stats.max_call_depth.max(self.call_depth);
                } else if event.kind == lofat_rv32::trace::BranchKind::Return {
                    self.call_depth = self.call_depth.saturating_sub(1);
                }
                self.monitor.on_branch(&event, &mut self.scratch);
                self.absorb_scratch(BRANCH_EVENT_LATENCY);
            }
        }

        // 3. The hash path advances one cycle per processor cycle (it runs in
        //    parallel with the pipeline).
        self.hash.pump();
    }

    /// Drains the monitor-output scratch into the statistics, the hash controller
    /// and the metadata, leaving the scratch empty with its capacity intact.
    fn absorb_scratch(&mut self, base_latency: u64) {
        let output = &mut self.scratch;
        self.stats.internal_latency_cycles += base_latency;
        self.stats.internal_latency_cycles += LOOP_EXIT_LATENCY * output.loops_exited as u64;
        self.stats.loops_entered += output.loops_entered as u64;
        self.stats.loops_exited += output.loops_exited as u64;
        self.stats.untracked_loops += output.untracked_loops;
        self.stats.iterations_counted += output.iterations_counted;
        self.stats.new_paths += output.new_paths;
        self.stats.pairs_compressed += output.pairs_compressed;
        self.stats.cam_overflows += output.cam_overflows;
        self.stats.pairs_hashed += output.hash_now.len() as u64;
        self.stats.max_nesting_observed =
            self.stats.max_nesting_observed.max(self.monitor.max_nesting_observed());
        self.hash.submit_batch(&mut output.hash_now);
        self.metadata.loops.append(&mut output.completed);
    }

    /// Ends the attested execution: flushes active loops, drains the hash engine and
    /// returns the [`Measurement`].
    ///
    /// # Errors
    ///
    /// Returns [`LofatError::EngineFinalized`] if called twice.
    pub fn finalize(&mut self) -> Result<Measurement, LofatError> {
        if self.finalized {
            return Err(LofatError::EngineFinalized);
        }
        self.monitor.finalize(&mut self.scratch);
        self.absorb_scratch(0);
        let authenticator = self.hash.finalize()?;
        self.finalized = true;
        Ok(Measurement {
            authenticator,
            metadata: std::mem::take(&mut self.metadata),
            stats: self.stats,
        })
    }
}

impl TraceSink for LofatEngine {
    #[inline]
    fn retire(&mut self, inst: &RetiredInst) {
        self.observe(inst);
    }
}

/// Convenience: runs `program` to completion with a LO-FAT engine attached and
/// returns the measurement together with the CPU exit information.
///
/// # Errors
///
/// Propagates configuration, execution and finalization errors.
///
/// # Example
///
/// ```
/// use lofat::{attest_program, EngineConfig};
/// use lofat_rv32::asm::assemble;
///
/// let program = assemble(
///     ".text\nmain:\n    li t0, 5\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ecall\n",
/// )?;
/// let (measurement, exit) = attest_program(&program, EngineConfig::default(), 100_000)?;
/// assert_eq!(measurement.metadata.loop_count(), 1);
/// assert_eq!(exit.reason, lofat_rv32::ExitReason::Ecall);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn attest_program(
    program: &Program,
    config: EngineConfig,
    max_cycles: u64,
) -> Result<(Measurement, lofat_rv32::ExitInfo), LofatError> {
    let mut engine = LofatEngine::for_program(program, config)?;
    let mut cpu = lofat_rv32::Cpu::new(program)?;
    let exit = cpu.run_traced(max_cycles, &mut engine)?;
    let measurement = engine.finalize()?;
    Ok((measurement, exit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lofat_rv32::asm::assemble;
    use lofat_rv32::Cpu;

    fn assemble_or_panic(src: &str) -> Program {
        assemble(src).expect("assemble")
    }

    const LOOP_PROGRAM: &str = r#"
        .text
        main:
            li   a0, 0
            li   t0, 8
        loop:
            add  a0, a0, t0
            addi t0, t0, -1
            bnez t0, loop
            ecall
    "#;

    #[test]
    fn attestation_does_not_change_cpu_cycles() {
        let program = assemble_or_panic(LOOP_PROGRAM);
        // Un-attested run.
        let mut plain_cpu = Cpu::new(&program).unwrap();
        let plain_exit = plain_cpu.run(100_000).unwrap();
        // Attested run.
        let (measurement, attested_exit) =
            attest_program(&program, EngineConfig::default(), 100_000).unwrap();
        assert_eq!(plain_exit.cycles, attested_exit.cycles, "LO-FAT adds zero CPU overhead");
        assert_eq!(plain_exit.register_a0, attested_exit.register_a0);
        assert_eq!(measurement.stats.processor_overhead_cycles, 0);
    }

    #[test]
    fn loop_is_compressed_into_counters() {
        let program = assemble_or_panic(LOOP_PROGRAM);
        let (measurement, _) = attest_program(&program, EngineConfig::default(), 100_000).unwrap();
        let stats = measurement.stats;
        assert_eq!(measurement.metadata.loop_count(), 1);
        let record = &measurement.metadata.loops[0];
        // The loop body runs 8 times: the back edge is taken 7 times, the first of
        // which creates the loop (hashed as a normal branch), so 6 completed
        // iterations of a single path are counted; the final not-taken exit pass is
        // hashed directly as a partial path.
        assert_eq!(record.distinct_paths(), 1);
        assert_eq!(record.total_iterations(), 6);
        assert!(stats.pairs_compressed > 0, "repeated iterations are not re-hashed");
        assert!(stats.compression_ratio() > 0.0);
    }

    #[test]
    fn measurement_is_deterministic() {
        let program = assemble_or_panic(LOOP_PROGRAM);
        let (a, _) = attest_program(&program, EngineConfig::default(), 100_000).unwrap();
        let (b, _) = attest_program(&program, EngineConfig::default(), 100_000).unwrap();
        assert_eq!(a.authenticator, b.authenticator);
        assert_eq!(a.metadata, b.metadata);
        assert_eq!(a.signed_payload(), b.signed_payload());
    }

    #[test]
    fn different_control_flow_changes_authenticator() {
        let program_a = assemble_or_panic(LOOP_PROGRAM);
        let program_b = assemble_or_panic(&LOOP_PROGRAM.replace("li   t0, 8", "li   t0, 9"));
        let (a, _) = attest_program(&program_a, EngineConfig::default(), 100_000).unwrap();
        let (b, _) = attest_program(&program_b, EngineConfig::default(), 100_000).unwrap();
        // Same hash (same unique paths) but different iteration counts in L.
        assert_eq!(a.authenticator, b.authenticator);
        assert_ne!(a.metadata, b.metadata);
        assert_ne!(a.signed_payload(), b.signed_payload());
    }

    #[test]
    fn latency_accounting_matches_paper_constants() {
        let program = assemble_or_panic(LOOP_PROGRAM);
        let (measurement, _) = attest_program(&program, EngineConfig::default(), 100_000).unwrap();
        let stats = measurement.stats;
        assert_eq!(
            stats.internal_latency_cycles,
            BRANCH_EVENT_LATENCY * stats.branch_events + LOOP_EXIT_LATENCY * stats.loops_exited
        );
        assert!(stats.branch_events >= 8);
        assert_eq!(stats.loops_exited, 1);
    }

    #[test]
    fn disabling_compression_hashes_every_iteration() {
        let program = assemble_or_panic(LOOP_PROGRAM);
        let compressed =
            attest_program(&program, EngineConfig::default(), 100_000).unwrap().0.stats;
        let uncompressed_cfg = EngineConfig::builder().loop_compression(false).build().unwrap();
        let uncompressed = attest_program(&program, uncompressed_cfg, 100_000).unwrap().0.stats;
        assert!(uncompressed.pairs_hashed > compressed.pairs_hashed);
        assert_eq!(uncompressed.pairs_compressed, 0);
    }

    #[test]
    fn finalize_twice_is_an_error() {
        let program = assemble_or_panic(LOOP_PROGRAM);
        let mut engine = LofatEngine::for_program(&program, EngineConfig::default()).unwrap();
        let mut cpu = Cpu::new(&program).unwrap();
        cpu.run_traced(100_000, &mut engine).unwrap();
        engine.finalize().unwrap();
        assert!(matches!(engine.finalize(), Err(LofatError::EngineFinalized)));
    }

    #[test]
    fn attest_region_can_exclude_code() {
        let program = assemble_or_panic(LOOP_PROGRAM);
        // Restrict attestation to a region past the program: nothing is recorded.
        let config = EngineConfig::builder()
            .attest_region(program.text_end(), program.text_end() + 0x1000)
            .build()
            .unwrap();
        let mut engine = LofatEngine::new(config).unwrap();
        let mut cpu = Cpu::new(&program).unwrap();
        cpu.run_traced(100_000, &mut engine).unwrap();
        let measurement = engine.finalize().unwrap();
        assert_eq!(measurement.stats.branch_events, 0);
        assert_eq!(measurement.metadata.loop_count(), 0);
        assert_eq!(measurement.authenticator, lofat_crypto::Sha3_512::digest(b""));
    }

    #[test]
    fn no_trace_data_is_ever_dropped() {
        let program = assemble_or_panic(LOOP_PROGRAM);
        let mut engine = LofatEngine::for_program(&program, EngineConfig::default()).unwrap();
        let mut cpu = Cpu::new(&program).unwrap();
        cpu.run_traced(100_000, &mut engine).unwrap();
        let engine_stats = engine.hash.engine_stats();
        assert_eq!(engine_stats.words_dropped, 0);
    }
}

//! Analytical area and memory model (§5.2, §6.2).
//!
//! The paper sizes the loop-tracking memories analytically: "Tracking ℓ branches per
//! path in a loop requires 8 × 2^ℓ bits memory"; with the prototype configuration
//! (ℓ = 16, n = 4, 3 nested-loop levels) this amounts to ≈1.5 Mbit of path-indexed
//! memory, synthesised as 49 36-Kbit block RAMs (16 per loop level plus one shared),
//! ≈4 % of the Virtex-7 XC7Z020's registers, ≈6 % of its LUTs (≈20 % extra logic
//! relative to the Pulpino SoC), at a maximum clock of 80 MHz (150 MHz for the hash
//! engine alone when the CAM is removed from the critical path).
//!
//! [`AreaModel`] reproduces those formulas so experiment E5 can sweep ℓ, n and the
//! nesting depth and regenerate the paper's design point.

use crate::config::EngineConfig;

/// Capacity of one FPGA block RAM in bits (Xilinx 36-Kbit BRAM).
pub const BRAM_BITS: u64 = 36 * 1024;

/// Reference resources of the evaluation FPGA (Virtex-7 XC7Z020 on a ZedBoard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FpgaDevice {
    /// Number of slice registers available.
    pub registers: u64,
    /// Number of LUTs available.
    pub luts: u64,
    /// Number of 36-Kbit BRAMs available.
    pub brams: u64,
}

impl FpgaDevice {
    /// The XC7Z020 device used in the paper's evaluation.
    pub fn xc7z020() -> Self {
        Self { registers: 106_400, luts: 53_200, brams: 140 }
    }
}

/// Area estimate for one LO-FAT configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AreaEstimate {
    /// Path-indexed memory per tracked loop level, in bits (`8 × 2^ℓ`).
    pub path_memory_bits_per_loop: u64,
    /// Total loop-tracking memory in bits (per-loop memory × nesting depth).
    pub total_loop_memory_bits: u64,
    /// 36-Kbit BRAMs per tracked loop level.
    pub brams_per_loop: u64,
    /// Total BRAMs, including one shared BRAM for the branches memory / hash buffer.
    pub total_brams: u64,
    /// Estimated fraction of device registers used (0–1).
    pub register_utilisation: f64,
    /// Estimated fraction of device LUTs used (0–1).
    pub lut_utilisation: f64,
    /// Estimated additional logic relative to the Pulpino SoC (0–1).
    pub logic_overhead: f64,
    /// Estimated maximum clock frequency in MHz.
    pub max_clock_mhz: f64,
}

/// The analytical area model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AreaModel {
    device: FpgaDevice,
}

impl AreaModel {
    /// Creates the model for the paper's evaluation device.
    pub fn new() -> Self {
        Self { device: FpgaDevice::xc7z020() }
    }

    /// Creates the model for a custom device.
    pub fn with_device(device: FpgaDevice) -> Self {
        Self { device }
    }

    /// The modelled FPGA device.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// Path-indexed memory required per tracked loop, in bits: `8 × 2^ℓ` (§5.2).
    pub fn path_memory_bits(&self, max_path_bits: u32) -> u64 {
        8u64 << max_path_bits
    }

    /// Number of 36-Kbit BRAMs per tracked loop.
    ///
    /// The memory is banked for single-cycle access, so the count is rounded up to
    /// the next power of two (the paper reports 16 BRAMs per loop at ℓ = 16).
    pub fn brams_per_loop(&self, max_path_bits: u32) -> u64 {
        let needed = self.path_memory_bits(max_path_bits).div_ceil(BRAM_BITS);
        needed.next_power_of_two()
    }

    /// Full area estimate for a configuration.
    pub fn estimate(&self, config: &EngineConfig) -> AreaEstimate {
        let depth = config.max_nesting_depth as u64;
        let per_loop_bits = self.path_memory_bits(config.max_path_bits);
        let total_bits = per_loop_bits * depth;
        let brams_per_loop = self.brams_per_loop(config.max_path_bits);
        // One extra BRAM is shared by the branches memory and the hash input buffer.
        let total_brams = brams_per_loop * depth + 1;

        // Logic scales with the nesting depth (one loop tracker per level) and the
        // CAM width; calibrated to the paper's 20 % overhead / 4 % FF / 6 % LUT point
        // at (ℓ = 16, n = 4, depth = 3).
        let logic_overhead =
            0.10 + 0.025 * depth as f64 + 0.00625 * f64::from(config.indirect_target_bits);
        let register_utilisation = 0.04 * logic_overhead / 0.20;
        let lut_utilisation = 0.06 * logic_overhead / 0.20;

        // The CAM lookup is the critical path: 80 MHz with it, 150 MHz (the hash
        // engine's maximum) without.  Wider CAM codes slow the comparison slightly.
        let max_clock_mhz = if config.indirect_target_bits == 0 {
            150.0
        } else {
            80.0 - 1.5 * (f64::from(config.indirect_target_bits) - 4.0)
        };

        AreaEstimate {
            path_memory_bits_per_loop: per_loop_bits,
            total_loop_memory_bits: total_bits,
            brams_per_loop,
            total_brams,
            register_utilisation,
            lut_utilisation,
            logic_overhead,
            max_clock_mhz,
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prototype_reproduces_reported_numbers() {
        let model = AreaModel::new();
        let estimate = model.estimate(&EngineConfig::paper_prototype());
        // 8 × 2^16 bits = 512 Kbit per loop, ×3 = 1.5 Mbit.
        assert_eq!(estimate.path_memory_bits_per_loop, 8 << 16);
        assert_eq!(estimate.total_loop_memory_bits, 3 * (8 << 16));
        assert_eq!(estimate.total_loop_memory_bits, 1_572_864, "≈1.5 Mbit as reported");
        // 16 BRAMs per loop, 48 + 1 total.
        assert_eq!(estimate.brams_per_loop, 16);
        assert_eq!(estimate.total_brams, 49);
        // ≈20 % logic overhead, ≈4 % FF, ≈6 % LUT, 80 MHz.
        assert!((estimate.logic_overhead - 0.20).abs() < 0.01);
        assert!((estimate.register_utilisation - 0.04).abs() < 0.005);
        assert!((estimate.lut_utilisation - 0.06).abs() < 0.005);
        assert!((estimate.max_clock_mhz - 80.0).abs() < f64::EPSILON);
    }

    #[test]
    fn memory_halves_when_path_bits_shrink() {
        let model = AreaModel::new();
        assert_eq!(model.path_memory_bits(16), 2 * model.path_memory_bits(15));
        assert_eq!(model.path_memory_bits(8), 8 << 8);
        assert!(model.brams_per_loop(8) < model.brams_per_loop(16));
        assert_eq!(model.brams_per_loop(10), 1);
    }

    #[test]
    fn removing_the_cam_raises_the_clock() {
        let model = AreaModel::new();
        let mut config = EngineConfig::paper_prototype();
        config.indirect_target_bits = 0; // hypothetical CAM-less configuration
        let estimate = model.estimate(&config);
        assert!((estimate.max_clock_mhz - 150.0).abs() < f64::EPSILON);
    }

    #[test]
    fn deeper_nesting_costs_proportionally_more_brams() {
        let model = AreaModel::new();
        let shallow =
            model.estimate(&EngineConfig::builder().max_nesting_depth(1).build().unwrap());
        let deep = model.estimate(&EngineConfig::builder().max_nesting_depth(4).build().unwrap());
        assert_eq!(shallow.total_brams, 17);
        assert_eq!(deep.total_brams, 65);
        assert!(deep.logic_overhead > shallow.logic_overhead);
    }

    #[test]
    fn custom_device_is_respected() {
        let device = FpgaDevice { registers: 1000, luts: 2000, brams: 10 };
        let model = AreaModel::with_device(device);
        assert_eq!(model.device().brams, 10);
    }
}

//! Minimal JSON emission shared by the committed-document writers.
//!
//! The repo records machine-diffable artifacts as committed JSON documents —
//! the bench trajectories (`BENCH_e10.json`, `BENCH_service.json`, rendered by
//! `lofat-bench`) and the scenario-fleet manifests (rendered by `lofat-fleet`).
//! Every emitter renders through this one writer instead of hand-rolling
//! string concatenation per document, so the artifacts stay structurally
//! uniform (2-space indentation, stable field order).
//!
//! This is an *emitter only*: the workspace has no JSON parser and does not
//! need one (CI gates run under `python3` or byte-compare against committed
//! goldens).  Values are restricted to what the committed documents use —
//! objects, arrays, strings, integers and fixed-precision floats.

use std::fmt::Write as _;

/// An append-only pretty-printing JSON writer.
///
/// Containers are explicit (`begin_object`/`end_object`,
/// `begin_array`/`end_array`); commas and indentation are managed by the
/// writer.  The root container is whatever is begun first.
///
/// # Example
///
/// ```
/// use lofat::json::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object(None);
/// w.field_str("bench", "demo");
/// w.begin_array(Some("samples"));
/// w.begin_object(None);
/// w.field_u64("workers", 4);
/// w.field_f64("rate", 1234.5678, 1);
/// w.end_object();
/// w.end_array();
/// w.end_object();
/// assert!(w.finish().contains("\"workers\": 4"));
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once it holds at least one item.
    stack: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn item_prefix(&mut self) {
        if let Some(has_items) = self.stack.last_mut() {
            if *has_items {
                self.out.push(',');
            }
            *has_items = true;
            self.out.push('\n');
            for _ in 0..self.stack.len() {
                self.out.push_str("  ");
            }
        }
    }

    fn name_prefix(&mut self, name: Option<&str>) {
        self.item_prefix();
        if let Some(name) = name {
            self.out.push('"');
            self.push_escaped(name);
            self.out.push_str("\": ");
        }
    }

    fn push_escaped(&mut self, text: &str) {
        for c in text.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
    }

    /// Opens an object; `name` is required inside objects, `None` inside
    /// arrays (and for the root).
    pub fn begin_object(&mut self, name: Option<&str>) {
        self.name_prefix(name);
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.close_container('}');
    }

    /// Opens an array (same naming rule as [`JsonWriter::begin_object`]).
    pub fn begin_array(&mut self, name: Option<&str>) {
        self.name_prefix(name);
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.close_container(']');
    }

    fn close_container(&mut self, closer: char) {
        let had_items = self.stack.pop().expect("close without matching open");
        if had_items {
            self.out.push('\n');
            for _ in 0..self.stack.len() {
                self.out.push_str("  ");
            }
        }
        self.out.push(closer);
    }

    /// A string field.
    pub fn field_str(&mut self, name: &str, value: &str) {
        self.name_prefix(Some(name));
        self.out.push('"');
        self.push_escaped(value);
        self.out.push('"');
    }

    /// An unsigned-integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) {
        self.name_prefix(Some(name));
        let _ = write!(self.out, "{value}");
    }

    /// A boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) {
        self.name_prefix(Some(name));
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// A fixed-precision float field (`decimals` digits after the point).
    /// Non-finite values are emitted as `null` — JSON has no NaN/Infinity.
    pub fn field_f64(&mut self, name: &str, value: f64, decimals: usize) {
        self.name_prefix(Some(name));
        if value.is_finite() {
            let _ = write!(self.out, "{value:.decimals$}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Renders the document (with a trailing newline, as committed files
    /// want).  All containers must be closed.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed JSON container");
        let mut out = self.out;
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_renders_with_commas_and_indentation() {
        let mut w = JsonWriter::new();
        w.begin_object(None);
        w.field_str("bench", "demo");
        w.field_u64("schema_version", 2);
        w.begin_array(Some("sweep"));
        for workers in [1u64, 2] {
            w.begin_object(None);
            w.field_u64("workers", workers);
            w.field_f64("rate", 0.5, 1);
            w.end_object();
        }
        w.end_array();
        w.begin_object(Some("empty"));
        w.end_object();
        w.end_object();
        let doc = w.finish();
        assert_eq!(
            doc,
            "{\n  \"bench\": \"demo\",\n  \"schema_version\": 2,\n  \"sweep\": [\n    {\n      \
             \"workers\": 1,\n      \"rate\": 0.5\n    },\n    {\n      \"workers\": 2,\n      \
             \"rate\": 0.5\n    }\n  ],\n  \"empty\": {}\n}\n"
        );
    }

    #[test]
    fn strings_are_escaped_and_non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_object(None);
        w.field_str("note", "a \"quoted\" \\ line\nnext");
        w.field_f64("bad", f64::NAN, 2);
        w.field_bool("ok", true);
        w.end_object();
        let doc = w.finish();
        assert!(doc.contains("a \\\"quoted\\\" \\\\ line\\nnext"));
        assert!(doc.contains("\"bad\": null"));
        assert!(doc.contains("\"ok\": true"));
    }
}

//! Loop auxiliary metadata `L` (⑧⑨⑩ in Fig. 3, §5.1 "Loop metadata").
//!
//! The metadata generator assembles, per executed loop, the unique loop path
//! encodings in order of first occurrence, the number of iterations of each path and
//! the indirect branch targets encountered in the loop.  `L` is appended to the final
//! hash value `A` and covered by the attestation signature; the verifier uses it to
//! reconstruct (and judge) the compressed part of the execution path.

/// One indirect-branch target observed inside a loop, with the n-bit code the CAM
/// assigned to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IndirectTargetRecord {
    /// The 32-bit target address.
    pub target: u32,
    /// The code used for it inside path IDs (0 means the CAM overflowed).
    pub code: u32,
}

/// One unique path through a loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PathRecord {
    /// The path ID (sentinel-prefixed encoding; 0 if the encoder overflowed).
    pub path_id: u32,
    /// Zero-based index of this path's first occurrence within the loop execution.
    pub first_occurrence: usize,
    /// Number of iterations that followed this path.
    pub iterations: u64,
}

/// Metadata describing one execution of one loop (one activation from entry to exit).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LoopRecord {
    /// Address of the loop entry node (target of the backward branch).
    pub entry: u32,
    /// Address of the loop exit node (the block following the backward branch).
    pub exit: u32,
    /// Nesting depth at which the loop executed (1 = outermost).
    pub nesting_depth: usize,
    /// Unique paths in order of first occurrence, with iteration counts.
    pub paths: Vec<PathRecord>,
    /// Indirect-branch targets encountered in the loop, with their CAM codes.
    pub indirect_targets: Vec<IndirectTargetRecord>,
    /// Whether any iteration overflowed the path encoder (ℓ bits exceeded).
    pub encoder_overflowed: bool,
}

impl LoopRecord {
    /// Total number of counted iterations across all paths.
    pub fn total_iterations(&self) -> u64 {
        self.paths.iter().map(|p| p.iterations).sum()
    }

    /// Number of distinct paths observed.
    pub fn distinct_paths(&self) -> usize {
        self.paths.len()
    }
}

/// The auxiliary metadata `L` of one attested execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Metadata {
    /// Loop records in the order the loops exited.
    pub loops: Vec<LoopRecord>,
}

impl Metadata {
    /// Creates empty metadata (a loop-free execution).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of loop executions recorded.
    pub fn loop_count(&self) -> usize {
        self.loops.len()
    }

    /// Total counted iterations across all loops.
    pub fn total_iterations(&self) -> u64 {
        self.loops.iter().map(LoopRecord::total_iterations).sum()
    }

    /// Total number of distinct paths across all loops.
    pub fn total_distinct_paths(&self) -> usize {
        self.loops.iter().map(LoopRecord::distinct_paths).sum()
    }

    /// Deterministic binary encoding of the metadata, as transmitted to the verifier
    /// and covered by the attestation signature.
    ///
    /// Layout (all little-endian):
    /// `loop_count:u32` then per loop: `entry:u32, exit:u32, depth:u64,
    /// overflowed:u8, path_count:u32, {path_id:u32, first_occurrence:u64,
    /// iterations:u64}*, target_count:u32, {target:u32, code:u32}*`.
    ///
    /// The `usize` fields (`nesting_depth`, `first_occurrence`) are encoded at
    /// their full width, matching the wire codec (which carries `usize` as
    /// `u64`).  This must stay injective over everything the wire can decode:
    /// an earlier u32 truncation here meant two distinct wire reports shared
    /// one signature, so an attacker flipping a high byte of either field
    /// produced an *authenticated* `MetadataMismatch` that spent the live
    /// session — a remote denial of service the wire fuzzer
    /// (`tests/fuzz_wire_net.rs`) caught on its first full run.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.loops.len() as u32).to_le_bytes());
        for l in &self.loops {
            out.extend_from_slice(&l.entry.to_le_bytes());
            out.extend_from_slice(&l.exit.to_le_bytes());
            out.extend_from_slice(&(l.nesting_depth as u64).to_le_bytes());
            out.push(u8::from(l.encoder_overflowed));
            out.extend_from_slice(&(l.paths.len() as u32).to_le_bytes());
            for p in &l.paths {
                out.extend_from_slice(&p.path_id.to_le_bytes());
                out.extend_from_slice(&(p.first_occurrence as u64).to_le_bytes());
                out.extend_from_slice(&p.iterations.to_le_bytes());
            }
            out.extend_from_slice(&(l.indirect_targets.len() as u32).to_le_bytes());
            for t in &l.indirect_targets {
                out.extend_from_slice(&t.target.to_le_bytes());
                out.extend_from_slice(&t.code.to_le_bytes());
            }
        }
        out
    }

    /// Size of the serialised metadata in bytes — the quantity experiment E7 sweeps
    /// ("the length of the auxiliary metadata that must be sent to V depends on the
    /// number of loops executed, the number of different paths per loop, and the
    /// number of indirect branch targets", §6.1).
    pub fn size_bytes(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metadata {
        Metadata {
            loops: vec![
                LoopRecord {
                    entry: 0x1010,
                    exit: 0x1024,
                    nesting_depth: 1,
                    paths: vec![
                        PathRecord { path_id: 0b1011, first_occurrence: 0, iterations: 5 },
                        PathRecord { path_id: 0b10011, first_occurrence: 1, iterations: 2 },
                    ],
                    indirect_targets: vec![IndirectTargetRecord { target: 0x2000, code: 1 }],
                    encoder_overflowed: false,
                },
                LoopRecord {
                    entry: 0x1040,
                    exit: 0x1050,
                    nesting_depth: 2,
                    paths: vec![PathRecord { path_id: 0b11, first_occurrence: 0, iterations: 9 }],
                    indirect_targets: vec![],
                    encoder_overflowed: true,
                },
            ],
        }
    }

    #[test]
    fn aggregate_counts() {
        let m = sample();
        assert_eq!(m.loop_count(), 2);
        assert_eq!(m.total_iterations(), 16);
        assert_eq!(m.total_distinct_paths(), 3);
        assert_eq!(m.loops[0].total_iterations(), 7);
        assert_eq!(m.loops[0].distinct_paths(), 2);
    }

    #[test]
    fn serialisation_is_deterministic_and_self_consistent() {
        let m = sample();
        let a = m.to_bytes();
        let b = m.to_bytes();
        assert_eq!(a, b);
        assert_eq!(m.size_bytes(), a.len());
        // Header + 2 loop headers (entry + exit + depth:u64 + overflowed +
        // path count + target count) + 3 paths (id + first_occurrence:u64 +
        // iterations) + 1 target.
        let expected = 4 + 2 * (4 + 4 + 8 + 1 + 4 + 4) + 3 * (4 + 8 + 8) + (4 + 4);
        assert_eq!(a.len(), expected);
    }

    #[test]
    fn different_metadata_serialises_differently() {
        let a = sample();
        let mut b = sample();
        b.loops[0].paths[0].iterations += 1;
        assert_ne!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn empty_metadata_is_four_bytes() {
        assert_eq!(Metadata::new().to_bytes(), vec![0, 0, 0, 0]);
        assert_eq!(Metadata::new().size_bytes(), 4);
    }

    #[test]
    fn size_grows_with_paths_and_targets() {
        let base = sample().size_bytes();
        let mut more = sample();
        more.loops[0].paths.push(PathRecord { path_id: 0b111, first_occurrence: 2, iterations: 1 });
        more.loops[1].indirect_targets.push(IndirectTargetRecord { target: 0x3000, code: 2 });
        assert!(more.size_bytes() > base);
    }
}

//! Engine configuration.
//!
//! §5.2 of the paper: "LO-FAT is designed such that the maximum number of branches
//! per loop path and the maximum number of possible target addresses (of indirect
//! branches) to track is configurable in a trade-off between granularity and
//! availability of on-chip memory."  The prototype configuration is ℓ = 16 branches
//! per loop path, n = 4 bits per indirect target (up to 15 targets plus the all-zero
//! overflow code) and 3 levels of nested loops.

use crate::error::LofatError;
use lofat_crypto::HashEngineConfig;

/// Internal latency charged per branch event (§6.1: "2 clock cycles for branch
/// instructions and loop status tracking").
pub const BRANCH_EVENT_LATENCY: u64 = 2;
/// Internal latency charged at loop exit (§6.1: "5 clock cycles at loop exit for
/// completing path ID generation and loop counter memory access and update").
pub const LOOP_EXIT_LATENCY: u64 = 5;

/// Configuration of the LO-FAT engine.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineConfig {
    /// ℓ — maximum number of path-encoding bits tracked per loop path.
    pub max_path_bits: u32,
    /// n — number of bits used to re-encode indirect-branch targets inside loops.
    pub indirect_target_bits: u32,
    /// Maximum nesting depth of simultaneously tracked loops.
    pub max_nesting_depth: usize,
    /// Loop compression: hash each unique loop path once and count iterations
    /// (the paper's scheme).  Disabling it hashes every iteration (the naive baseline
    /// used by the E9 ablation).
    pub loop_compression: bool,
    /// Configuration of the streaming hash engine.
    pub hash_engine: HashEngineConfig,
    /// Start of the attested code region (inclusive); `None` means the whole program.
    pub attest_start: Option<u32>,
    /// End of the attested code region (exclusive); `None` means the whole program.
    pub attest_end: Option<u32>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_path_bits: 16,
            indirect_target_bits: 4,
            max_nesting_depth: 3,
            loop_compression: true,
            hash_engine: HashEngineConfig::default(),
            attest_start: None,
            attest_end: None,
        }
    }
}

impl EngineConfig {
    /// The paper's prototype configuration (ℓ = 16, n = 4, 3 nested levels).
    pub fn paper_prototype() -> Self {
        Self::default()
    }

    /// Starts building a custom configuration.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }

    /// Maximum number of distinct indirect-branch targets encodable per loop
    /// (2ⁿ − 1; the all-zero code is reserved for overflow).
    pub fn max_indirect_targets(&self) -> u32 {
        (1u32 << self.indirect_target_bits) - 1
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`LofatError::InvalidConfig`] for out-of-range parameters.
    pub fn validate(&self) -> Result<(), LofatError> {
        if self.max_path_bits == 0 || self.max_path_bits > 30 {
            return Err(LofatError::InvalidConfig {
                message: format!("max_path_bits must be in 1..=30, got {}", self.max_path_bits),
            });
        }
        if self.indirect_target_bits == 0 || self.indirect_target_bits > 16 {
            return Err(LofatError::InvalidConfig {
                message: format!(
                    "indirect_target_bits must be in 1..=16, got {}",
                    self.indirect_target_bits
                ),
            });
        }
        if self.max_nesting_depth == 0 {
            return Err(LofatError::InvalidConfig {
                message: "max_nesting_depth must be at least 1".into(),
            });
        }
        if let (Some(start), Some(end)) = (self.attest_start, self.attest_end) {
            if start >= end {
                return Err(LofatError::InvalidConfig {
                    message: format!("attested region {start:#x}..{end:#x} is empty"),
                });
            }
        }
        Ok(())
    }
}

/// Builder for [`EngineConfig`].
///
/// # Example
///
/// ```
/// use lofat::EngineConfig;
///
/// let config = EngineConfig::builder()
///     .max_path_bits(8)
///     .indirect_target_bits(2)
///     .max_nesting_depth(2)
///     .build()?;
/// assert_eq!(config.max_indirect_targets(), 3);
/// # Ok::<(), lofat::LofatError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets ℓ, the maximum number of path-encoding bits per loop path.
    pub fn max_path_bits(mut self, bits: u32) -> Self {
        self.config.max_path_bits = bits;
        self
    }

    /// Sets n, the number of bits per indirect-branch target code.
    pub fn indirect_target_bits(mut self, bits: u32) -> Self {
        self.config.indirect_target_bits = bits;
        self
    }

    /// Sets the maximum nesting depth of simultaneously tracked loops.
    pub fn max_nesting_depth(mut self, depth: usize) -> Self {
        self.config.max_nesting_depth = depth;
        self
    }

    /// Enables or disables loop compression (enabled in the paper's design).
    pub fn loop_compression(mut self, enabled: bool) -> Self {
        self.config.loop_compression = enabled;
        self
    }

    /// Sets the hash-engine model configuration.
    pub fn hash_engine(mut self, hash_engine: HashEngineConfig) -> Self {
        self.config.hash_engine = hash_engine;
        self
    }

    /// Restricts attestation to the code region `[start, end)`.
    pub fn attest_region(mut self, start: u32, end: u32) -> Self {
        self.config.attest_start = Some(start);
        self.config.attest_end = Some(end);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`LofatError::InvalidConfig`] for out-of-range parameters.
    pub fn build(self) -> Result<EngineConfig, LofatError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_prototype() {
        let config = EngineConfig::paper_prototype();
        assert_eq!(config.max_path_bits, 16);
        assert_eq!(config.indirect_target_bits, 4);
        assert_eq!(config.max_nesting_depth, 3);
        assert!(config.loop_compression);
        assert_eq!(config.max_indirect_targets(), 15);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn builder_roundtrip() {
        let config = EngineConfig::builder()
            .max_path_bits(8)
            .indirect_target_bits(2)
            .max_nesting_depth(1)
            .loop_compression(false)
            .attest_region(0x1000, 0x2000)
            .build()
            .unwrap();
        assert_eq!(config.max_path_bits, 8);
        assert_eq!(config.max_indirect_targets(), 3);
        assert!(!config.loop_compression);
        assert_eq!(config.attest_start, Some(0x1000));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(EngineConfig::builder().max_path_bits(0).build().is_err());
        assert!(EngineConfig::builder().max_path_bits(40).build().is_err());
        assert!(EngineConfig::builder().indirect_target_bits(0).build().is_err());
        assert!(EngineConfig::builder().max_nesting_depth(0).build().is_err());
        assert!(EngineConfig::builder().attest_region(0x2000, 0x1000).build().is_err());
    }

    #[test]
    fn latency_constants_match_paper() {
        assert_eq!(BRANCH_EVENT_LATENCY, 2);
        assert_eq!(LOOP_EXIT_LATENCY, 5);
    }
}

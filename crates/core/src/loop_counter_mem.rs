//! Loop counter memory (§5.1, ⑥ in Fig. 3).
//!
//! The completed path ID of each loop iteration indexes an on-chip memory holding
//! one iteration counter per unique path.  "A counter value of zero indicates the
//! first time a particular path is executed" — only then does the engine hash the
//! path's `(Src, Dest)` pairs; subsequent iterations of the same path only increment
//! the counter.  The memory also remembers the order in which new paths first
//! occurred, because the metadata reports path encodings "in order of first
//! occurrence".

/// Result of recording one completed loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathObservation {
    /// This path ID was seen for the first time; its `(Src, Dest)` pairs must be hashed.
    NewPath {
        /// Zero-based first-occurrence index of the path within this loop execution.
        order: usize,
    },
    /// The path was already known; only its counter was incremented.
    Repeated {
        /// Iteration count after the increment.
        count: u64,
    },
}

/// Per-loop path-indexed iteration counters.
///
/// Stored as `(path_id, count)` entries in first-occurrence order — the order the
/// metadata reports — with a last-hit probe in front: steady-state loops repeat
/// the same path over and over, so the common record is one compare and one add.
/// The linear fallback scan mirrors the associative lookup of the hardware's
/// on-chip counter memory (the number of distinct paths per loop is small by the
/// paper's own premise).
#[derive(Debug, Clone, Default)]
pub struct LoopCounterMemory {
    /// `(path_id, iteration count)` in order of first occurrence.
    entries: Vec<(u32, u64)>,
    /// Index of the entry that served the most recent record.
    last_hit: usize,
}

impl LoopCounterMemory {
    /// Creates an empty counter memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed iteration that followed the path `path_id`.
    #[inline]
    pub fn record(&mut self, path_id: u32) -> PathObservation {
        if let Some(&mut (id, ref mut count)) = self.entries.get_mut(self.last_hit) {
            if id == path_id {
                *count += 1;
                return PathObservation::Repeated { count: *count };
            }
        }
        if let Some(index) = self.entries.iter().position(|&(id, _)| id == path_id) {
            self.last_hit = index;
            let count = &mut self.entries[index].1;
            *count += 1;
            PathObservation::Repeated { count: *count }
        } else {
            self.entries.push((path_id, 1));
            self.last_hit = self.entries.len() - 1;
            PathObservation::NewPath { order: self.entries.len() - 1 }
        }
    }

    /// Iteration count of a path (0 if never seen).
    pub fn count(&self, path_id: u32) -> u64 {
        self.entries.iter().find(|&&(id, _)| id == path_id).map(|&(_, c)| c).unwrap_or(0)
    }

    /// Number of distinct paths observed.
    pub fn distinct_paths(&self) -> usize {
        self.entries.len()
    }

    /// Total number of iterations recorded across all paths.
    pub fn total_iterations(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| c).sum()
    }

    /// Path IDs in order of first occurrence.
    pub fn first_occurrence_order(&self) -> Vec<u32> {
        self.entries.iter().map(|&(id, _)| id).collect()
    }

    /// `(path_id, count)` pairs in order of first occurrence.
    pub fn entries(&self) -> Vec<(u32, u64)> {
        self.entries.clone()
    }

    /// Borrowed view of the `(path_id, count)` pairs in first-occurrence order
    /// (the allocation-free variant of [`LoopCounterMemory::entries`]).
    pub fn entries_slice(&self) -> &[(u32, u64)] {
        &self.entries
    }

    /// Clears the memory for re-use by a subsequent loop execution.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.last_hit = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_occurrence_is_new_path() {
        let mut mem = LoopCounterMemory::new();
        assert_eq!(mem.record(0b1011), PathObservation::NewPath { order: 0 });
        assert_eq!(mem.record(0b1011), PathObservation::Repeated { count: 2 });
        assert_eq!(mem.record(0b10011), PathObservation::NewPath { order: 1 });
        assert_eq!(mem.count(0b1011), 2);
        assert_eq!(mem.count(0b10011), 1);
        assert_eq!(mem.count(0xdead), 0);
        assert_eq!(mem.distinct_paths(), 2);
        assert_eq!(mem.total_iterations(), 3);
    }

    #[test]
    fn entries_preserve_first_occurrence_order() {
        let mut mem = LoopCounterMemory::new();
        mem.record(7);
        mem.record(3);
        mem.record(7);
        mem.record(9);
        assert_eq!(mem.first_occurrence_order(), &[7, 3, 9]);
        assert_eq!(mem.entries(), vec![(7, 2), (3, 1), (9, 1)]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut mem = LoopCounterMemory::new();
        mem.record(1);
        mem.clear();
        assert_eq!(mem.distinct_paths(), 0);
        assert_eq!(mem.total_iterations(), 0);
        assert_eq!(mem.record(1), PathObservation::NewPath { order: 0 });
    }
}

//! Loop counter memory (§5.1, ⑥ in Fig. 3).
//!
//! The completed path ID of each loop iteration indexes an on-chip memory holding
//! one iteration counter per unique path.  "A counter value of zero indicates the
//! first time a particular path is executed" — only then does the engine hash the
//! path's `(Src, Dest)` pairs; subsequent iterations of the same path only increment
//! the counter.  The memory also remembers the order in which new paths first
//! occurred, because the metadata reports path encodings "in order of first
//! occurrence".

use std::collections::BTreeMap;

/// Result of recording one completed loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathObservation {
    /// This path ID was seen for the first time; its `(Src, Dest)` pairs must be hashed.
    NewPath {
        /// Zero-based first-occurrence index of the path within this loop execution.
        order: usize,
    },
    /// The path was already known; only its counter was incremented.
    Repeated {
        /// Iteration count after the increment.
        count: u64,
    },
}

/// Per-loop path-indexed iteration counters.
#[derive(Debug, Clone, Default)]
pub struct LoopCounterMemory {
    /// Path ID → iteration count.
    counters: BTreeMap<u32, u64>,
    /// Path IDs in order of first occurrence.
    first_occurrence: Vec<u32>,
}

impl LoopCounterMemory {
    /// Creates an empty counter memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed iteration that followed the path `path_id`.
    pub fn record(&mut self, path_id: u32) -> PathObservation {
        let counter = self.counters.entry(path_id).or_insert(0);
        *counter += 1;
        if *counter == 1 {
            self.first_occurrence.push(path_id);
            PathObservation::NewPath { order: self.first_occurrence.len() - 1 }
        } else {
            PathObservation::Repeated { count: *counter }
        }
    }

    /// Iteration count of a path (0 if never seen).
    pub fn count(&self, path_id: u32) -> u64 {
        self.counters.get(&path_id).copied().unwrap_or(0)
    }

    /// Number of distinct paths observed.
    pub fn distinct_paths(&self) -> usize {
        self.first_occurrence.len()
    }

    /// Total number of iterations recorded across all paths.
    pub fn total_iterations(&self) -> u64 {
        self.counters.values().sum()
    }

    /// Path IDs in order of first occurrence.
    pub fn first_occurrence_order(&self) -> &[u32] {
        &self.first_occurrence
    }

    /// `(path_id, count)` pairs in order of first occurrence.
    pub fn entries(&self) -> Vec<(u32, u64)> {
        self.first_occurrence.iter().map(|&id| (id, self.count(id))).collect()
    }

    /// Clears the memory for re-use by a subsequent loop execution.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.first_occurrence.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_occurrence_is_new_path() {
        let mut mem = LoopCounterMemory::new();
        assert_eq!(mem.record(0b1011), PathObservation::NewPath { order: 0 });
        assert_eq!(mem.record(0b1011), PathObservation::Repeated { count: 2 });
        assert_eq!(mem.record(0b10011), PathObservation::NewPath { order: 1 });
        assert_eq!(mem.count(0b1011), 2);
        assert_eq!(mem.count(0b10011), 1);
        assert_eq!(mem.count(0xdead), 0);
        assert_eq!(mem.distinct_paths(), 2);
        assert_eq!(mem.total_iterations(), 3);
    }

    #[test]
    fn entries_preserve_first_occurrence_order() {
        let mut mem = LoopCounterMemory::new();
        mem.record(7);
        mem.record(3);
        mem.record(7);
        mem.record(9);
        assert_eq!(mem.first_occurrence_order(), &[7, 3, 9]);
        assert_eq!(mem.entries(), vec![(7, 2), (3, 1), (9, 1)]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut mem = LoopCounterMemory::new();
        mem.record(1);
        mem.clear();
        assert_eq!(mem.distinct_paths(), 0);
        assert_eq!(mem.total_iterations(), 0);
        assert_eq!(mem.record(1), PathObservation::NewPath { order: 0 });
    }
}

//! The attestation report `R = sign(A ‖ L ‖ N; sk)` (Fig. 2).

use crate::metadata::Metadata;
use lofat_crypto::{Digest, Nonce, Signature};

/// The attestation report the prover returns to the verifier.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AttestationReport {
    /// Identifier of the attested program (`id_S` in the protocol).
    pub program_id: String,
    /// The cumulative authenticator `A` over the executed `(Src, Dest)` pairs.
    pub authenticator: Digest,
    /// The loop auxiliary metadata `L`.
    pub metadata: Metadata,
    /// The verifier's freshness nonce `N`, echoed back.
    pub nonce: Nonce,
    /// Signature over `program_id ‖ A ‖ L ‖ N` under the device key.
    pub signature: Signature,
}

impl AttestationReport {
    /// The exact byte string covered by the signature.
    pub fn signed_bytes(
        program_id: &str,
        authenticator: &Digest,
        metadata: &Metadata,
        nonce: &Nonce,
    ) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(program_id.len() as u32).to_le_bytes());
        bytes.extend_from_slice(program_id.as_bytes());
        bytes.extend_from_slice(authenticator.as_bytes());
        bytes.extend_from_slice(&metadata.to_bytes());
        bytes.extend_from_slice(nonce.as_bytes());
        bytes
    }

    /// The byte string covered by this report's signature.
    pub fn payload(&self) -> Vec<u8> {
        Self::signed_bytes(&self.program_id, &self.authenticator, &self.metadata, &self.nonce)
    }

    /// The signed bytes *shared* by every report with this program id,
    /// authenticator and metadata: [`AttestationReport::payload`] minus the
    /// trailing nonce.  Two honest reports for the same measurement differ
    /// only in the nonce (and therefore the signature), so this prefix is
    /// what the verifier's verdict cache keys on — and the boundary at which
    /// it snapshots the in-flight signature MAC.
    pub fn signed_prefix(&self) -> Vec<u8> {
        let mut bytes = self.payload();
        bytes.truncate(bytes.len() - self.nonce.as_bytes().len());
        bytes
    }

    /// Total size of the report on the wire (authenticator + metadata + nonce +
    /// signature + program id), in bytes.  Experiment E7 tracks how the metadata
    /// portion grows with the workload's loop structure.
    pub fn wire_size(&self) -> usize {
        self.payload().len() + self.signature.len()
    }

    /// Serialises the report with the deterministic wire codec (the encoding
    /// used inside [`crate::wire::EvidenceMsg`] envelopes).
    ///
    /// # Errors
    ///
    /// Fails only if a contained collection overflows the codec's `u32`
    /// length prefix.
    pub fn to_wire_bytes(&self) -> Result<Vec<u8>, serde::Error> {
        serde::to_bytes(self)
    }

    /// Decodes a report previously encoded with
    /// [`AttestationReport::to_wire_bytes`], rejecting truncated or trailing
    /// input.
    ///
    /// # Errors
    ///
    /// Returns the decode error for malformed input.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Self, serde::Error> {
        serde::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::{LoopRecord, PathRecord};
    use lofat_crypto::Sha3_512;

    fn report() -> AttestationReport {
        let metadata = Metadata {
            loops: vec![LoopRecord {
                entry: 0x1000,
                exit: 0x1010,
                nesting_depth: 1,
                paths: vec![PathRecord { path_id: 3, first_occurrence: 0, iterations: 4 }],
                indirect_targets: vec![],
                encoder_overflowed: false,
            }],
        };
        AttestationReport {
            program_id: "syringe-pump".into(),
            authenticator: Sha3_512::digest(b"path"),
            metadata,
            nonce: Nonce::from_counter(7),
            signature: Signature::from_bytes(vec![0u8; 64]),
        }
    }

    #[test]
    fn payload_binds_all_fields() {
        let base = report();
        let mut other = report();
        other.program_id = "other".into();
        assert_ne!(base.payload(), other.payload());

        let mut other = report();
        other.nonce = Nonce::from_counter(8);
        assert_ne!(base.payload(), other.payload());

        let mut other = report();
        other.metadata.loops[0].paths[0].iterations = 5;
        assert_ne!(base.payload(), other.payload());

        let mut other = report();
        other.authenticator = Sha3_512::digest(b"other path");
        assert_ne!(base.payload(), other.payload());
    }

    #[test]
    fn payload_is_prefix_then_nonce() {
        let r = report();
        let mut rebuilt = r.signed_prefix();
        rebuilt.extend_from_slice(r.nonce.as_bytes());
        assert_eq!(rebuilt, r.payload());

        let mut other = report();
        other.nonce = Nonce::from_counter(99);
        assert_eq!(r.signed_prefix(), other.signed_prefix());
    }

    #[test]
    fn wire_size_includes_signature() {
        let r = report();
        assert_eq!(r.wire_size(), r.payload().len() + 64);
    }
}

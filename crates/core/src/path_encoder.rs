//! Loop path encoder (§5.1, Fig. 4).
//!
//! Inside a tracked loop, every control-flow decision appends bits to a shift
//! register: a conditional branch contributes its taken (`1`) / not-taken (`0`) bit,
//! an unconditional direct jump contributes a `1`, and an indirect branch contributes
//! the n-bit code assigned by the [`crate::cam::IndirectTargetCam`].  The resulting
//! *path ID* uniquely identifies the path taken through the loop body in this
//! iteration and indexes the loop counter memory.
//!
//! The register is initialised with a sentinel `1` so that encodings of different
//! lengths stay distinct, mirroring [`lofat_cfg::paths::encode_path_bits`] which the
//! verifier uses to enumerate the valid IDs.

/// Encoder state for the current loop iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathEncoder {
    /// Shift register holding the sentinel and the decision bits.
    value: u64,
    /// Number of decision bits currently encoded (excluding the sentinel).
    bits_used: u32,
    /// ℓ — maximum decision bits per path.
    max_bits: u32,
    /// Set once more than `max_bits` bits were pushed; the path ID is then reported
    /// as the all-zero overflow code.
    overflowed: bool,
}

/// Path ID value reported when the encoder overflowed its configured capacity.
pub const OVERFLOW_PATH_ID: u32 = 0;

impl PathEncoder {
    /// Creates an empty encoder accepting up to `max_bits` decision bits.
    pub fn new(max_bits: u32) -> Self {
        Self { value: 1, bits_used: 0, max_bits, overflowed: false }
    }

    /// Appends a single taken/not-taken bit (conditional branches and direct jumps).
    pub fn push_bit(&mut self, bit: bool) {
        self.push_bits(u64::from(bit), 1);
    }

    /// Appends an n-bit indirect-target code from the CAM.
    pub fn push_code(&mut self, code: u32, bits: u32) {
        self.push_bits(u64::from(code), bits);
    }

    fn push_bits(&mut self, value: u64, bits: u32) {
        if self.bits_used + bits > self.max_bits {
            self.overflowed = true;
            return;
        }
        self.value = (self.value << bits) | (value & ((1 << bits) - 1));
        self.bits_used += bits;
    }

    /// Number of decision bits encoded so far.
    pub fn bits_used(&self) -> u32 {
        self.bits_used
    }

    /// Returns `true` if at least one decision bit was recorded.
    pub fn has_bits(&self) -> bool {
        self.bits_used > 0
    }

    /// Returns `true` if the encoder exceeded its capacity.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// The current path ID (all-zero [`OVERFLOW_PATH_ID`] if the encoder overflowed).
    pub fn path_id(&self) -> u32 {
        if self.overflowed {
            OVERFLOW_PATH_ID
        } else {
            self.value as u32
        }
    }

    /// Resets the encoder for the next iteration of the loop.
    pub fn reset(&mut self) {
        self.value = 1;
        self.bits_used = 0;
        self.overflowed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two Fig. 4 paths: "011" and "0011" (sentinel-prefixed numeric IDs).
    #[test]
    fn fig4_paths_encode_to_paper_values() {
        let mut enc = PathEncoder::new(16);
        for bit in [false, true, true] {
            enc.push_bit(bit);
        }
        assert_eq!(enc.path_id(), 0b1_011);
        enc.reset();
        for bit in [false, false, true, true] {
            enc.push_bit(bit);
        }
        assert_eq!(enc.path_id(), 0b1_0011);
    }

    #[test]
    fn encoder_matches_verifier_encoding() {
        let bits = [true, false, true, true, false];
        let mut enc = PathEncoder::new(16);
        for &b in &bits {
            enc.push_bit(b);
        }
        assert_eq!(enc.path_id(), lofat_cfg::paths::encode_path_bits(&bits));
    }

    #[test]
    fn indirect_codes_take_n_bits() {
        let mut enc = PathEncoder::new(16);
        enc.push_bit(true);
        enc.push_code(0b0101, 4);
        assert_eq!(enc.bits_used(), 5);
        assert_eq!(enc.path_id(), 0b11_0101);
    }

    #[test]
    fn overflow_reports_all_zero_id() {
        let mut enc = PathEncoder::new(3);
        enc.push_bit(true);
        enc.push_bit(true);
        enc.push_bit(false);
        assert!(!enc.overflowed());
        enc.push_bit(true);
        assert!(enc.overflowed());
        assert_eq!(enc.path_id(), OVERFLOW_PATH_ID);
        // Reset clears the overflow condition.
        enc.reset();
        assert!(!enc.overflowed());
        assert_eq!(enc.path_id(), 1);
    }

    #[test]
    fn empty_path_id_is_sentinel_only() {
        let enc = PathEncoder::new(8);
        assert_eq!(enc.path_id(), 1);
        assert!(!enc.has_bits());
    }

    #[test]
    fn code_wider_than_remaining_capacity_overflows() {
        let mut enc = PathEncoder::new(4);
        enc.push_bit(true);
        enc.push_code(0xF, 4);
        assert!(enc.overflowed());
    }
}

//! The verifier `V` (Fig. 2).
//!
//! The verifier holds the program binary, its statically derived CFG and loop
//! structure, and the verification key.  Verification of a report proceeds in three
//! stages, mirroring §3/§6.3 of the paper:
//!
//! 1. **Authenticity and freshness** — the signature over `A ‖ L ‖ N` must verify and
//!    the nonce must match the outstanding challenge.
//! 2. **Static plausibility** — every loop path encoding reported in `L` for a loop
//!    whose valid path set the verifier can enumerate (innermost, call-free loops)
//!    must be one of the CFG-valid encodings; "other path encodings are considered
//!    invalid and detected by V" (§5.1, Fig. 4).
//! 3. **Golden replay** — because the verifier knows the program, the challenge input
//!    and LO-FAT's deterministic measurement rules, it recomputes the expected
//!    authenticator `A` and metadata `L` by replaying the program on its own trusted
//!    simulator and compares them against the report.  This is how the verifier
//!    "checks whether the reported path resembles a valid path of the CFG under
//!    input i".

use crate::config::EngineConfig;
use crate::engine::{attest_program, Measurement};
use crate::error::LofatError;
use crate::prover::{INPUT_LEN_SYMBOL, INPUT_SYMBOL};
use crate::report::AttestationReport;
use lofat_cfg::paths::enumerate_loop_paths;
use lofat_cfg::{Cfg, LoopNest};
use lofat_crypto::sign::HmacVerifier;
use lofat_crypto::{Nonce, SignatureVerifier, VerificationKey};
use lofat_rv32::{Cpu, ExitInfo, Program};
use std::collections::BTreeMap;
use std::fmt;

/// Maximum number of paths enumerated per loop for the static plausibility check.
const PATH_ENUMERATION_LIMIT: usize = 4096;

/// Why a report was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectionReason {
    /// The report names a different program than the challenge.
    ProgramIdMismatch {
        /// Program id expected by the verifier.
        expected: String,
        /// Program id found in the report.
        found: String,
    },
    /// The echoed nonce does not match the challenge (replay / stale report).
    NonceMismatch,
    /// The signature over `A ‖ L ‖ N` did not verify.
    BadSignature,
    /// A loop path encoding is not a valid path of the loop's body in the CFG.
    InvalidLoopPath {
        /// Loop entry address the record refers to.
        loop_entry: u32,
        /// The offending path ID.
        path_id: u32,
    },
    /// The authenticator differs from the expected value for the challenge input
    /// (the executed path deviated from the expected control flow).
    AuthenticatorMismatch,
    /// The loop metadata differs from the expected value (e.g. manipulated loop
    /// counters or unexpected loop paths).
    MetadataMismatch,
}

impl RejectionReason {
    /// The stable numeric code carried in [`crate::wire::VerdictMsg::reason_code`].
    ///
    /// Codes are part of the wire contract (see [`crate::wire::code`]): they
    /// never change meaning, and new reasons get new numbers.
    pub fn code(&self) -> u16 {
        match self {
            RejectionReason::ProgramIdMismatch { .. } => crate::wire::code::PROGRAM_ID_MISMATCH,
            RejectionReason::NonceMismatch => crate::wire::code::NONCE_MISMATCH,
            RejectionReason::BadSignature => crate::wire::code::BAD_SIGNATURE,
            RejectionReason::InvalidLoopPath { .. } => crate::wire::code::INVALID_LOOP_PATH,
            RejectionReason::AuthenticatorMismatch => crate::wire::code::AUTHENTICATOR_MISMATCH,
            RejectionReason::MetadataMismatch => crate::wire::code::METADATA_MISMATCH,
        }
    }
}

impl fmt::Display for RejectionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectionReason::ProgramIdMismatch { expected, found } => {
                write!(f, "program id mismatch: expected `{expected}`, report names `{found}`")
            }
            RejectionReason::NonceMismatch => write!(f, "nonce does not match the challenge"),
            RejectionReason::BadSignature => write!(f, "signature verification failed"),
            RejectionReason::InvalidLoopPath { loop_entry, path_id } => write!(
                f,
                "loop at {loop_entry:#010x} reports path id {path_id:#b} which is not a valid CFG path"
            ),
            RejectionReason::AuthenticatorMismatch => {
                write!(f, "authenticator does not match the expected control flow")
            }
            RejectionReason::MetadataMismatch => {
                write!(f, "loop metadata does not match the expected control flow")
            }
        }
    }
}

/// A successful verification.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Exit information of the verifier's golden replay.
    pub replay_exit: ExitInfo,
    /// The expected measurement the report was compared against.
    pub expected: Measurement,
}

/// An attestation challenge (`id_S`, `i`, `N`), as sent from `V` to `P`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Challenge {
    /// Identifier of the program to attest.
    pub program_id: String,
    /// Program input `i`.
    pub input: Vec<u32>,
    /// Freshness nonce `N`.
    pub nonce: Nonce,
}

/// The verifier.
#[derive(Debug, Clone)]
pub struct Verifier {
    program: Program,
    program_id: String,
    key: HmacVerifier,
    config: EngineConfig,
    max_cycles: u64,
    /// Valid path-ID sets for loops amenable to static enumeration, keyed by the
    /// loop entry (header) address.
    valid_paths: BTreeMap<u32, Vec<u32>>,
    nonce_counter: u64,
}

impl Verifier {
    /// Creates a verifier for `program`, performing the one-time offline CFG and
    /// loop-structure analysis.
    ///
    /// # Errors
    ///
    /// Fails if the program cannot be analysed.
    pub fn new(
        program: Program,
        program_id: impl Into<String>,
        key: VerificationKey,
    ) -> Result<Self, LofatError> {
        let cfg = Cfg::from_program(&program)?;
        let loops = cfg.natural_loops();
        let valid_paths = Self::enumerate_valid_paths(&cfg, &loops);
        Ok(Self {
            program,
            program_id: program_id.into(),
            key: HmacVerifier::new(key),
            config: EngineConfig::default(),
            max_cycles: crate::prover::DEFAULT_MAX_CYCLES,
            valid_paths,
            nonce_counter: 0,
        })
    }

    /// Replaces the engine configuration used for golden replay (must match the
    /// prover's configuration).
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the replay cycle budget.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// The program identifier this verifier attests.
    pub fn program_id(&self) -> &str {
        &self.program_id
    }

    /// The statically enumerated valid path IDs per loop entry address.
    pub fn valid_loop_paths(&self) -> &BTreeMap<u32, Vec<u32>> {
        &self.valid_paths
    }

    /// Issues a fresh challenge for input `i`.
    pub fn challenge(&mut self, input: Vec<u32>) -> Challenge {
        self.nonce_counter += 1;
        Challenge {
            program_id: self.program_id.clone(),
            input,
            nonce: Nonce::from_counter(self.nonce_counter),
        }
    }

    /// Opens a sans-I/O protocol session for `input`: issues a fresh challenge
    /// (consuming the next nonce, exactly like [`Verifier::challenge`]) and
    /// wraps it in a [`crate::session::VerifierSession`] with the given expiry
    /// deadline on the caller's cycle clock (`u64::MAX` disables expiry).
    ///
    /// Judging the session's evidence still happens through this verifier —
    /// pass `&self` to
    /// [`VerifierSession::process_evidence`](crate::session::VerifierSession::process_evidence).
    pub fn begin_session(
        &mut self,
        id: crate::wire::SessionId,
        input: Vec<u32>,
        deadline_cycles: u64,
    ) -> crate::session::VerifierSession {
        let challenge = self.challenge(input);
        crate::session::VerifierSession::new(id, challenge, deadline_cycles)
    }

    /// Verifies `report` against `challenge`.
    ///
    /// # Errors
    ///
    /// Returns [`LofatError::Rejected`] with the specific [`RejectionReason`] when
    /// the report must be rejected, or other variants when the verifier itself fails
    /// (e.g. the golden replay cannot be executed).
    pub fn verify(
        &self,
        report: &AttestationReport,
        challenge: &Challenge,
    ) -> Result<Verdict, LofatError> {
        // 1. Authenticity and freshness.
        if report.program_id != self.program_id {
            return Err(LofatError::Rejected(RejectionReason::ProgramIdMismatch {
                expected: self.program_id.clone(),
                found: report.program_id.clone(),
            }));
        }
        if report.nonce != challenge.nonce {
            return Err(LofatError::Rejected(RejectionReason::NonceMismatch));
        }
        if self.key.verify(&report.payload(), &report.signature).is_err() {
            return Err(LofatError::Rejected(RejectionReason::BadSignature));
        }

        // 2. Static plausibility of the reported loop paths.
        for record in &report.metadata.loops {
            if record.encoder_overflowed || !record.indirect_targets.is_empty() {
                continue;
            }
            if let Some(valid) = self.valid_paths.get(&record.entry) {
                for path in &record.paths {
                    if !valid.contains(&path.path_id) {
                        return Err(LofatError::Rejected(RejectionReason::InvalidLoopPath {
                            loop_entry: record.entry,
                            path_id: path.path_id,
                        }));
                    }
                }
            }
        }

        // 3. Golden replay under the challenge input.
        let (expected, replay_exit) = self.expected_measurement(&challenge.input)?;
        if expected.authenticator != report.authenticator {
            return Err(LofatError::Rejected(RejectionReason::AuthenticatorMismatch));
        }
        if expected.metadata != report.metadata {
            return Err(LofatError::Rejected(RejectionReason::MetadataMismatch));
        }
        Ok(Verdict { replay_exit, expected })
    }

    /// Computes the expected measurement for `input` by golden replay.
    ///
    /// # Errors
    ///
    /// Fails if the replay execution faults or exceeds the cycle budget.
    pub fn expected_measurement(
        &self,
        input: &[u32],
    ) -> Result<(Measurement, ExitInfo), LofatError> {
        if input.is_empty() {
            let (measurement, exit) = attest_program(&self.program, self.config, self.max_cycles)?;
            return Ok((measurement, exit));
        }
        let mut engine = crate::engine::LofatEngine::for_program(&self.program, self.config)?;
        let mut cpu = Cpu::new(&self.program)?;
        let addr = self
            .program
            .symbol(INPUT_SYMBOL)
            .ok_or_else(|| LofatError::MissingSymbol { name: INPUT_SYMBOL.into() })?;
        let bytes: Vec<u8> = input.iter().flat_map(|w| w.to_le_bytes()).collect();
        cpu.memory_mut().poke_bytes(addr, &bytes)?;
        if let Some(len_addr) = self.program.symbol(INPUT_LEN_SYMBOL) {
            cpu.memory_mut().poke_bytes(len_addr, &(input.len() as u32).to_le_bytes())?;
        }
        let exit = cpu.run_traced(self.max_cycles, &mut engine)?;
        let measurement = engine.finalize()?;
        Ok((measurement, exit))
    }

    /// Enumerates the valid path-ID sets of loops amenable to static enumeration:
    /// innermost natural loops whose bodies are free of calls and indirect jumps.
    fn enumerate_valid_paths(cfg: &Cfg, loops: &LoopNest) -> BTreeMap<u32, Vec<u32>> {
        let mut valid = BTreeMap::new();
        for (index, info) in loops.iter().enumerate() {
            let is_innermost = !loops.iter().enumerate().any(|(other_index, other)| {
                other_index != index
                    && other.body.is_subset(&info.body)
                    && other.body.len() < info.body.len()
            });
            if !is_innermost {
                continue;
            }
            let Ok(enumeration) = enumerate_loop_paths(cfg, info, PATH_ENUMERATION_LIMIT) else {
                continue;
            };
            if enumeration.paths.is_empty() {
                continue;
            }
            let entry_addr = cfg.block(info.header).start;
            valid.insert(entry_addr, enumeration.path_ids());
        }
        valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::PathRecord;
    use crate::prover::Prover;
    use lofat_crypto::DeviceKey;
    use lofat_rv32::asm::assemble;

    const PROGRAM: &str = r#"
        .data
        input:
            .space 64
        input_len:
            .word 0
        .text
        main:
            la   t0, input
            la   t1, input_len
            lw   t1, 0(t1)
            li   a0, 0
            beqz t1, done
        loop:
            lw   t2, 0(t0)
            add  a0, a0, t2
            addi t0, t0, 4
            addi t1, t1, -1
            bnez t1, loop
        done:
            ecall
    "#;

    fn setup() -> (Prover, Verifier) {
        let program = assemble(PROGRAM).unwrap();
        let key = DeviceKey::from_seed("device");
        let prover = Prover::new(program.clone(), "sum", key.clone());
        let verifier = Verifier::new(program, "sum", key.verification_key()).unwrap();
        (prover, verifier)
    }

    #[test]
    fn honest_report_is_accepted() {
        let (mut prover, mut verifier) = setup();
        let challenge = verifier.challenge(vec![2, 4, 6]);
        let run = prover.attest(&challenge.input, challenge.nonce).unwrap();
        let verdict = verifier.verify(&run.report, &challenge).unwrap();
        assert_eq!(verdict.replay_exit.register_a0, 12);
        assert_eq!(verdict.expected.authenticator, run.report.authenticator);
    }

    #[test]
    fn stale_nonce_is_rejected() {
        let (mut prover, mut verifier) = setup();
        let challenge = verifier.challenge(vec![1]);
        let run = prover.attest(&challenge.input, challenge.nonce).unwrap();
        let newer = verifier.challenge(vec![1]);
        let err = verifier.verify(&run.report, &newer).unwrap_err();
        assert!(matches!(err, LofatError::Rejected(RejectionReason::NonceMismatch)));
    }

    #[test]
    fn forged_signature_is_rejected() {
        let (_prover, mut verifier) = setup();
        let program = assemble(PROGRAM).unwrap();
        // A prover with a *different* key cannot produce acceptable reports.
        let mut rogue = Prover::new(program, "sum", DeviceKey::from_seed("rogue"));
        let challenge = verifier.challenge(vec![1, 2]);
        let run = rogue.attest(&challenge.input, challenge.nonce).unwrap();
        let err = verifier.verify(&run.report, &challenge).unwrap_err();
        assert!(matches!(err, LofatError::Rejected(RejectionReason::BadSignature)));
    }

    #[test]
    fn wrong_program_id_is_rejected() {
        let (mut prover, mut verifier) = setup();
        let challenge = verifier.challenge(vec![1]);
        let mut run = prover.attest(&challenge.input, challenge.nonce).unwrap();
        run.report.program_id = "other".into();
        let err = verifier.verify(&run.report, &challenge).unwrap_err();
        assert!(matches!(err, LofatError::Rejected(RejectionReason::ProgramIdMismatch { .. })));
    }

    #[test]
    fn tampered_metadata_is_rejected() {
        let (mut prover, mut verifier) = setup();
        let challenge = verifier.challenge(vec![3, 3, 3, 3]);
        let mut run = prover.attest(&challenge.input, challenge.nonce).unwrap();
        // The (software) adversary cannot re-sign, so any tampering breaks the
        // signature check first.
        run.report.metadata.loops[0].paths[0].iterations += 1;
        let err = verifier.verify(&run.report, &challenge).unwrap_err();
        assert!(matches!(err, LofatError::Rejected(RejectionReason::BadSignature)));
    }

    #[test]
    fn loop_counter_manipulation_detected_by_replay() {
        let (mut prover, mut verifier) = setup();
        let challenge = verifier.challenge(vec![1, 1, 1, 1, 1, 1]);
        // The adversary shortens the loop by corrupting the in-memory length field
        // (non-control-data attack ② of Fig. 1).
        let input_len = prover.program().symbol("input_len").unwrap();
        let mut attack = |cpu: &mut lofat_rv32::Cpu, retired: u64| {
            if retired == 2 {
                cpu.memory_mut().poke_bytes(input_len, &3u32.to_le_bytes()).unwrap();
            }
        };
        let run =
            prover.attest_with_adversary(&challenge.input, challenge.nonce, &mut attack).unwrap();
        assert_eq!(run.exit.register_a0, 3);
        let err = verifier.verify(&run.report, &challenge).unwrap_err();
        assert!(matches!(
            err,
            LofatError::Rejected(
                RejectionReason::MetadataMismatch | RejectionReason::AuthenticatorMismatch
            )
        ));
    }

    #[test]
    fn invalid_loop_path_detected_statically() {
        let (mut prover, mut verifier) = setup();
        // Build a syntactically valid report whose loop path encoding is not a valid
        // CFG path; re-sign it with the correct key to isolate the static check.
        let challenge = verifier.challenge(vec![1, 2, 3]);
        let run = prover.attest(&challenge.input, challenge.nonce).unwrap();
        let mut metadata = run.report.metadata.clone();
        metadata.loops[0].paths.push(PathRecord {
            path_id: 0b1_1111,
            first_occurrence: 1,
            iterations: 1,
        });
        let payload = AttestationReport::signed_bytes(
            "sum",
            &run.report.authenticator,
            &metadata,
            &challenge.nonce,
        );
        use lofat_crypto::Signer;
        let mut signer = lofat_crypto::HmacSigner::new(DeviceKey::from_seed("device"));
        let forged = AttestationReport {
            program_id: "sum".into(),
            authenticator: run.report.authenticator.clone(),
            metadata,
            nonce: challenge.nonce,
            signature: signer.sign(&payload).unwrap(),
        };
        let err = verifier.verify(&forged, &challenge).unwrap_err();
        assert!(matches!(
            err,
            LofatError::Rejected(RejectionReason::InvalidLoopPath { path_id: 0b1_1111, .. })
        ));
    }

    #[test]
    fn verifier_precomputes_valid_paths_for_simple_loops() {
        let (_, verifier) = setup();
        assert_eq!(verifier.valid_loop_paths().len(), 1);
        let paths = verifier.valid_loop_paths().values().next().unwrap();
        assert_eq!(paths, &vec![0b11], "the sum loop has a single valid path `1`");
    }
}

//! Branch filter (① in Fig. 3).
//!
//! The branch filter is tightly coupled to the processor: per clock cycle it sees the
//! retired program counter and instruction, filters in every branch, jump and return
//! instruction, and emits a concise representation of the executed transfer — its
//! `(Src, Dest)` pair plus the classification bits the loop monitor needs (taken or
//! not, linking or not, backward or not).  Everything outside the attested code
//! region is ignored.

use crate::branches_mem::BranchPair;
use lofat_rv32::trace::{BranchKind, RetiredInst};

/// One filtered control-flow event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchEvent {
    /// `(Src, Dest)` pair: the branch address and the address execution continued at.
    pub pair: BranchPair,
    /// Classification of the control-flow instruction.
    pub kind: BranchKind,
    /// Whether the transfer was taken (always `true` for jumps).
    pub taken: bool,
    /// The (taken) target address of the instruction.
    pub target: u32,
    /// `true` for a taken, non-linking, backward transfer — the §5.1 heuristic that
    /// marks a loop entry at `target`.
    pub loop_heuristic: bool,
}

/// Statistics of the branch filter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BranchFilterStats {
    /// Retired instructions observed on the trace port.
    pub instructions_observed: u64,
    /// Retired instructions inside the attested region.
    pub instructions_in_region: u64,
    /// Control-flow events filtered in.
    pub branch_events: u64,
}

/// The branch filter.
#[derive(Debug, Clone)]
pub struct BranchFilter {
    attest_start: u32,
    attest_end: u32,
    stats: BranchFilterStats,
}

impl BranchFilter {
    /// Creates a filter for the attested code region `[start, end)`.
    pub fn new(attest_start: u32, attest_end: u32) -> Self {
        Self { attest_start, attest_end, stats: BranchFilterStats::default() }
    }

    /// Returns `true` if `pc` lies inside the attested region.
    #[inline]
    pub fn in_region(&self, pc: u32) -> bool {
        pc >= self.attest_start && pc < self.attest_end
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &BranchFilterStats {
        &self.stats
    }

    /// Filters one retired instruction; returns a [`BranchEvent`] for control-flow
    /// instructions inside the attested region and `None` otherwise.
    pub fn filter(&mut self, retired: &RetiredInst) -> Option<BranchEvent> {
        self.stats.instructions_observed += 1;
        if !self.in_region(retired.pc) {
            return None;
        }
        self.stats.instructions_in_region += 1;
        self.filter_in_region(retired)
    }

    /// Filters one retired instruction already known to lie inside the attested
    /// region (the caller performed the [`BranchFilter::in_region`] test).
    ///
    /// Hot-path variant used by the engine: the per-instruction counters
    /// (`instructions_observed`, `instructions_in_region`) are *not* maintained
    /// here — the engine keeps its own authoritative instruction count in
    /// [`crate::engine::EngineStats`] — only `branch_events` is.  Use
    /// [`BranchFilter::filter`] when this filter's own instruction statistics
    /// matter.
    #[inline]
    pub fn filter_in_region(&mut self, retired: &RetiredInst) -> Option<BranchEvent> {
        let info = retired.branch?;
        self.stats.branch_events += 1;
        let backward = info.taken && info.target <= retired.pc;
        let linking = info.kind.is_linking();
        Some(BranchEvent {
            pair: BranchPair::new(retired.pc, retired.next_pc),
            kind: info.kind,
            taken: info.taken,
            target: info.target,
            loop_heuristic: backward && !linking && info.kind != BranchKind::Return,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lofat_rv32::isa::{BranchCond, Instruction, Reg};
    use lofat_rv32::trace::BranchInfo;

    fn retired(pc: u32, kind: BranchKind, taken: bool, target: u32) -> RetiredInst {
        RetiredInst {
            cycle: 0,
            pc,
            inst: Instruction::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::T0,
                rs2: Reg::ZERO,
                offset: 0,
            },
            next_pc: if taken { target } else { pc + 4 },
            branch: Some(BranchInfo { kind, taken, target }),
        }
    }

    fn plain(pc: u32) -> RetiredInst {
        RetiredInst { cycle: 0, pc, inst: Instruction::Ecall, next_pc: pc + 4, branch: None }
    }

    #[test]
    fn non_branches_are_filtered_out() {
        let mut filter = BranchFilter::new(0x1000, 0x2000);
        assert!(filter.filter(&plain(0x1000)).is_none());
        assert_eq!(filter.stats().instructions_observed, 1);
        assert_eq!(filter.stats().branch_events, 0);
    }

    #[test]
    fn out_of_region_branches_ignored() {
        let mut filter = BranchFilter::new(0x1000, 0x2000);
        let event = filter.filter(&retired(0x3000, BranchKind::Conditional, true, 0x2f00));
        assert!(event.is_none());
        assert_eq!(filter.stats().instructions_in_region, 0);
    }

    #[test]
    fn loop_heuristic_fires_only_for_taken_nonlinking_backward() {
        let mut filter = BranchFilter::new(0x1000, 0x2000);
        // Taken backward conditional branch → heuristic fires.
        let e = filter.filter(&retired(0x1100, BranchKind::Conditional, true, 0x1080)).unwrap();
        assert!(e.loop_heuristic);
        // Not-taken backward branch → no.
        let e = filter.filter(&retired(0x1100, BranchKind::Conditional, false, 0x1080)).unwrap();
        assert!(!e.loop_heuristic);
        // Backward call (linking) → no: subroutine calls are not loop entries (§5.1).
        let e = filter.filter(&retired(0x1100, BranchKind::DirectCall, true, 0x1080)).unwrap();
        assert!(!e.loop_heuristic);
        // Backward return → no.
        let e = filter.filter(&retired(0x1100, BranchKind::Return, true, 0x1004)).unwrap();
        assert!(!e.loop_heuristic);
        // Forward jump → no.
        let e = filter.filter(&retired(0x1100, BranchKind::DirectJump, true, 0x1200)).unwrap();
        assert!(!e.loop_heuristic);
    }

    #[test]
    fn pair_records_actual_destination() {
        let mut filter = BranchFilter::new(0x1000, 0x2000);
        let taken = filter.filter(&retired(0x1010, BranchKind::Conditional, true, 0x1004)).unwrap();
        assert_eq!(taken.pair, BranchPair::new(0x1010, 0x1004));
        let not_taken =
            filter.filter(&retired(0x1010, BranchKind::Conditional, false, 0x1004)).unwrap();
        assert_eq!(not_taken.pair, BranchPair::new(0x1010, 0x1014));
    }
}

//! The prover `P` (Fig. 2): the embedded device running the attested program with the
//! LO-FAT hardware attached.
//!
//! The prover loads the verifier-supplied input `i` into the program's input buffer,
//! executes the program while the [`crate::engine::LofatEngine`] observes the trace
//! port, and signs the resulting measurement together with the verifier's nonce using
//! the device key held in the hardware-protected key register.
//!
//! The adversary of the paper controls data memory through memory-corruption
//! vulnerabilities; [`Adversary`] models that capability as a fault-injection hook
//! that may rewrite writable memory between instructions (but can never touch the
//! `rx` code segment or the engine's own state).

use crate::config::EngineConfig;
use crate::engine::{EngineStats, LofatEngine};
use crate::error::LofatError;
use crate::report::AttestationReport;
use lofat_crypto::{DeviceKey, HmacSigner, Nonce, Signer};
use lofat_rv32::{Cpu, ExitInfo, Program};

/// Default cycle budget for an attested run.
pub const DEFAULT_MAX_CYCLES: u64 = 10_000_000;

/// Name of the data-segment symbol the prover writes the verifier input to.
pub const INPUT_SYMBOL: &str = "input";
/// Name of the optional symbol receiving the number of input words.
pub const INPUT_LEN_SYMBOL: &str = "input_len";

/// A run-time adversary with full control over writable data memory (§3).
pub trait Adversary {
    /// Called before every executed instruction with the number of instructions
    /// retired so far; may corrupt any writable memory through the CPU handle.
    fn tamper(&mut self, cpu: &mut Cpu, instructions_retired: u64);
}

/// The benign case: nobody tampers with memory.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAdversary;

impl Adversary for NoAdversary {
    fn tamper(&mut self, _cpu: &mut Cpu, _instructions_retired: u64) {}
}

impl<F: FnMut(&mut Cpu, u64)> Adversary for F {
    fn tamper(&mut self, cpu: &mut Cpu, instructions_retired: u64) {
        self(cpu, instructions_retired)
    }
}

/// Outcome of one attested execution on the prover.
#[derive(Debug, Clone)]
pub struct ProverRun {
    /// The signed attestation report to send to the verifier.
    pub report: AttestationReport,
    /// CPU exit information (cycles, instructions, result register).
    pub exit: ExitInfo,
    /// Engine statistics of this run.
    pub stats: EngineStats,
}

/// The prover device.
#[derive(Debug, Clone)]
pub struct Prover {
    program: Program,
    program_id: String,
    config: EngineConfig,
    signer: HmacSigner,
    max_cycles: u64,
}

impl Prover {
    /// Creates a prover for `program`, identified as `program_id`, holding
    /// `device_key` in its protected key register.
    pub fn new(program: Program, program_id: impl Into<String>, device_key: DeviceKey) -> Self {
        Self {
            program,
            program_id: program_id.into(),
            config: EngineConfig::default(),
            signer: HmacSigner::new(device_key),
            max_cycles: DEFAULT_MAX_CYCLES,
        }
    }

    /// Replaces the engine configuration (default: the paper prototype).
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the cycle budget for attested runs.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// The attested program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The program identifier (`id_S`).
    pub fn program_id(&self) -> &str {
        &self.program_id
    }

    /// Wraps this prover in a sans-I/O [`crate::session::ProverSession`] that
    /// answers challenge envelopes with evidence envelopes.
    pub fn session(&mut self) -> crate::session::ProverSession<'_> {
        crate::session::ProverSession::new(self)
    }

    /// Runs the attested program on input `input` and produces a signed report bound
    /// to `nonce`.
    ///
    /// # Errors
    ///
    /// Fails if the program needs an input buffer it does not define, if execution
    /// faults or exceeds the cycle budget, or if the engine cannot be finalized.
    pub fn attest(&mut self, input: &[u32], nonce: Nonce) -> Result<ProverRun, LofatError> {
        self.attest_with_adversary(input, nonce, &mut NoAdversary)
    }

    /// Like [`Prover::attest`], but with a run-time adversary corrupting data memory.
    ///
    /// # Errors
    ///
    /// Same as [`Prover::attest`].
    pub fn attest_with_adversary<A: Adversary + ?Sized>(
        &mut self,
        input: &[u32],
        nonce: Nonce,
        adversary: &mut A,
    ) -> Result<ProverRun, LofatError> {
        let mut engine = LofatEngine::for_program(&self.program, self.config)?;
        let mut cpu = Cpu::new(&self.program)?;
        self.load_input(&mut cpu, input)?;

        let exit = loop {
            let retired = cpu.instructions();
            adversary.tamper(&mut cpu, retired);
            if let Some(exit) = cpu.step(&mut engine)? {
                break exit;
            }
            if cpu.cycles() > self.max_cycles {
                return Err(LofatError::Execution(lofat_rv32::Rv32Error::CycleLimitExceeded {
                    limit: self.max_cycles,
                }));
            }
        };

        let measurement = engine.finalize()?;
        let payload = AttestationReport::signed_bytes(
            &self.program_id,
            &measurement.authenticator,
            &measurement.metadata,
            &nonce,
        );
        let signature = self.signer.sign(&payload).map_err(LofatError::Signature)?;
        Ok(ProverRun {
            report: AttestationReport {
                program_id: self.program_id.clone(),
                authenticator: measurement.authenticator,
                metadata: measurement.metadata,
                nonce,
                signature,
            },
            exit,
            stats: measurement.stats,
        })
    }

    /// Writes the verifier input into the program's input buffer.
    fn load_input(&self, cpu: &mut Cpu, input: &[u32]) -> Result<(), LofatError> {
        if input.is_empty() {
            return Ok(());
        }
        let addr = self
            .program
            .symbol(INPUT_SYMBOL)
            .ok_or_else(|| LofatError::MissingSymbol { name: INPUT_SYMBOL.into() })?;
        let bytes: Vec<u8> = input.iter().flat_map(|w| w.to_le_bytes()).collect();
        cpu.memory_mut().poke_bytes(addr, &bytes)?;
        if let Some(len_addr) = self.program.symbol(INPUT_LEN_SYMBOL) {
            cpu.memory_mut().poke_bytes(len_addr, &(input.len() as u32).to_le_bytes())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lofat_rv32::asm::assemble;

    const SUM_INPUT_PROGRAM: &str = r#"
        .data
        input:
            .space 64
        input_len:
            .word 0
        .text
        main:
            la   t0, input
            la   t1, input_len
            lw   t1, 0(t1)
            li   a0, 0
            beqz t1, done
        loop:
            lw   t2, 0(t0)
            add  a0, a0, t2
            addi t0, t0, 4
            addi t1, t1, -1
            bnez t1, loop
        done:
            ecall
    "#;

    fn prover() -> Prover {
        let program = assemble(SUM_INPUT_PROGRAM).unwrap();
        Prover::new(program, "sum", DeviceKey::from_seed("test-device"))
    }

    #[test]
    fn attest_produces_signed_report_and_result() {
        let mut prover = prover();
        let run = prover.attest(&[5, 7, 11], Nonce::from_counter(1)).unwrap();
        assert_eq!(run.exit.register_a0, 23);
        assert_eq!(run.report.program_id, "sum");
        assert_eq!(run.report.nonce, Nonce::from_counter(1));
        // The signature verifies under the matching verification key.
        let vk = DeviceKey::from_seed("test-device").verification_key();
        let verifier = lofat_crypto::sign::HmacVerifier::new(vk);
        use lofat_crypto::SignatureVerifier;
        assert!(verifier.verify(&run.report.payload(), &run.report.signature).is_ok());
    }

    #[test]
    fn different_inputs_produce_different_reports() {
        let mut prover = prover();
        let a = prover.attest(&[1, 2, 3], Nonce::from_counter(1)).unwrap();
        let b = prover.attest(&[1, 2, 3, 4], Nonce::from_counter(1)).unwrap();
        // One extra loop iteration shows up in the metadata.
        assert_ne!(a.report.metadata, b.report.metadata);
    }

    #[test]
    fn missing_input_symbol_is_reported() {
        let program = assemble(".text\nmain:\n    ecall\n").unwrap();
        let mut prover = Prover::new(program, "noinput", DeviceKey::from_seed("k"));
        let err = prover.attest(&[1], Nonce::from_counter(0)).unwrap_err();
        assert!(matches!(err, LofatError::MissingSymbol { .. }));
        // No input is fine.
        assert!(prover.attest(&[], Nonce::from_counter(0)).is_ok());
    }

    #[test]
    fn adversary_hook_runs_and_can_corrupt_data() {
        let mut prover = prover();
        let honest = prover.attest(&[1, 1, 1, 1], Nonce::from_counter(3)).unwrap();
        // The adversary rewrites the loop bound in memory after the input is loaded
        // but before the program reads it (a non-control-data attack).
        let input_len = prover.program().symbol("input_len").unwrap();
        let mut attack = |cpu: &mut Cpu, retired: u64| {
            if retired == 2 {
                cpu.memory_mut().poke_bytes(input_len, &2u32.to_le_bytes()).unwrap();
            }
        };
        let tampered = prover
            .attest_with_adversary(&[1, 1, 1, 1], Nonce::from_counter(3), &mut attack)
            .unwrap();
        assert_eq!(tampered.exit.register_a0, 2, "the attack shortened the loop");
        assert_ne!(
            honest.report.metadata, tampered.report.metadata,
            "the loop-counter manipulation is visible in the attested metadata"
        );
    }

    #[test]
    fn cycle_budget_is_enforced() {
        let program = assemble(".text\nmain:\nspin:\n    j spin\n").unwrap();
        let mut prover =
            Prover::new(program, "spin", DeviceKey::from_seed("k")).with_max_cycles(1_000);
        let err = prover.attest(&[], Nonce::from_counter(0)).unwrap_err();
        assert!(matches!(err, LofatError::Execution(_)));
    }
}

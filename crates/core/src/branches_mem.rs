//! Branches memory (② in Fig. 3).
//!
//! The branch filter writes a concise representation of every executed branch — its
//! `(Src, Dest)` address pair — into a dedicated on-chip memory.  For non-loop
//! branches the pair is forwarded to the hash engine immediately; for branches inside
//! a loop the pairs of the *current path* stay buffered until the path completes, at
//! which point they are either hashed (first occurrence of the path) or discarded
//! (repeated path — the iteration counter covers them).

/// A `(Src, Dest)` address pair of one executed control-flow transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct BranchPair {
    /// Address of the control-flow instruction.
    pub src: u32,
    /// Address execution continued at.
    pub dest: u32,
}

impl BranchPair {
    /// Creates a pair.
    pub fn new(src: u32, dest: u32) -> Self {
        Self { src, dest }
    }

    /// Packs the pair into the 64-bit word absorbed by the hash engine
    /// (`Src` in the upper half, `Dest` in the lower half).
    pub fn to_word(self) -> u64 {
        (u64::from(self.src) << 32) | u64::from(self.dest)
    }
}

/// Per-path buffer of `(Src, Dest)` pairs awaiting the hash decision.
#[derive(Debug, Clone, Default)]
pub struct BranchesMemory {
    pairs: Vec<BranchPair>,
    /// High-water mark, for sizing the on-chip memory.
    max_occupancy: usize,
}

impl BranchesMemory {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pair for the current path.
    pub fn push(&mut self, pair: BranchPair) {
        self.pairs.push(pair);
        self.max_occupancy = self.max_occupancy.max(self.pairs.len());
    }

    /// Number of pairs currently buffered.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` if no pair is buffered.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Largest number of pairs ever buffered at once.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Takes all buffered pairs, leaving the buffer empty.
    pub fn drain(&mut self) -> Vec<BranchPair> {
        std::mem::take(&mut self.pairs)
    }

    /// Moves all buffered pairs into `out`, keeping this buffer's capacity.
    ///
    /// This is the hot-path variant of [`BranchesMemory::drain`]: the steady-state
    /// trace path re-uses both the buffer and the destination allocation, so a
    /// path completing inside a loop costs no heap traffic.
    pub fn drain_into(&mut self, out: &mut Vec<BranchPair>) {
        out.append(&mut self.pairs);
    }

    /// Discards all buffered pairs (repeated path — already covered by the counter).
    pub fn discard(&mut self) -> usize {
        let n = self.pairs.len();
        self.pairs.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_packing_places_src_high() {
        let pair = BranchPair::new(0x1000, 0x2004);
        assert_eq!(pair.to_word(), 0x0000_1000_0000_2004);
    }

    #[test]
    fn drain_and_discard() {
        let mut mem = BranchesMemory::new();
        mem.push(BranchPair::new(1, 2));
        mem.push(BranchPair::new(3, 4));
        assert_eq!(mem.len(), 2);
        assert_eq!(mem.max_occupancy(), 2);
        let drained = mem.drain();
        assert_eq!(drained.len(), 2);
        assert!(mem.is_empty());

        mem.push(BranchPair::new(5, 6));
        assert_eq!(mem.discard(), 1);
        assert!(mem.is_empty());
        assert_eq!(mem.max_occupancy(), 2, "high-water mark survives clearing");
    }
}

//! `VerifierService` — a multi-session verifier front-end.
//!
//! The paper's verifier fronts *many* embedded provers; this module scales the
//! single-session state machine of [`crate::session`] to thousands of
//! interleaved sessions against one shared [`MeasurementDatabase`]:
//!
//! * sessions are keyed by [`SessionId`] and live until decided or expired
//!   (then they are evicted eagerly, so memory tracks outstanding work);
//! * nonces are single-use across **all** sessions: session `n` carries
//!   nonce `n`, so replayed evidence is recognised with O(1) memory — no
//!   replay cache to grow with fleet size;
//! * stale sessions expire on a service-local cycle clock
//!   ([`VerifierService::advance_clock`] / [`VerifierService::expire_stale`]);
//! * verification is the database mode of [`MeasurementDatabase`]: signature
//!   and nonce checks plus a constant-time reference lookup — no golden replay
//!   on the hot path, which is what lets one service instance front a large
//!   device fleet;
//! * every interaction updates [`ServiceStats`], including per-reason-code
//!   rejection counts.
//!
//! The service is sans-I/O like the sessions: [`VerifierService::handle_bytes`]
//! maps request bytes to response bytes and never panics on malformed input.

use crate::error::LofatError;
use crate::measurement_db::MeasurementDatabase;
use crate::session::{SessionError, VerifierSession};
use crate::verifier::{Challenge, RejectionReason};
use crate::wire::{code, Envelope, Message, SessionId, VerdictMsg, WireError};
use lofat_crypto::sign::HmacVerifier;
use lofat_crypto::{Nonce, SignatureVerifier, VerificationKey};
use std::collections::BTreeMap;
use std::fmt;

/// Tunables of a [`VerifierService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServiceConfig {
    /// Cycles (on the service clock) a session stays valid after opening.
    pub session_deadline_cycles: u64,
    /// Maximum number of live sessions; [`VerifierService::open_session`]
    /// refuses beyond this.
    pub max_live_sessions: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self { session_deadline_cycles: 1_000_000, max_live_sessions: 65_536 }
    }
}

/// Counters the service maintains across all sessions.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// Sessions opened over the service lifetime.
    pub sessions_opened: u64,
    /// Evidence submissions accepted.
    pub accepted: u64,
    /// Evidence submissions rejected — any reason code except
    /// [`code::SESSION_EXPIRED`], which counts in
    /// [`ServiceStats::expired`] instead (expiry is a lifecycle event, not a
    /// judgement of the evidence).
    pub rejected: u64,
    /// Sessions that expired before (or at) evidence submission.
    pub expired: u64,
    /// Submissions carrying an already-spent nonce.  Covers re-submissions
    /// to decided sessions and cross-session nonce reuse; because replay
    /// detection is O(1) (no per-session history), first-time evidence that
    /// arrives after its session was swept by
    /// [`VerifierService::expire_stale`] is indistinguishable from a replay
    /// and lands here too.
    pub replays_blocked: u64,
    /// Envelopes that failed wire-level decoding.
    pub wire_errors: u64,
    /// Rejections by stable reason code ([`code`]).
    pub rejections_by_code: BTreeMap<u16, u64>,
}

impl ServiceStats {
    fn record_rejection(&mut self, reason_code: u16) {
        self.rejected += 1;
        *self.rejections_by_code.entry(reason_code).or_insert(0) += 1;
    }
}

/// Errors returned by service entry points that cannot answer with a verdict.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// No reference measurement is precomputed for this input.
    UnknownInput {
        /// The input that has no database entry.
        input: Vec<u32>,
    },
    /// The live-session limit was reached.
    AtCapacity {
        /// Live sessions at the time of the call.
        live: usize,
        /// The configured limit.
        max: usize,
    },
    /// The session id is not (or no longer) known.
    UnknownSession(SessionId),
    /// A wire codec failure while building an outgoing envelope.
    Wire(WireError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownInput { input } => {
                write!(f, "no reference measurement precomputed for input {input:?}")
            }
            ServiceError::AtCapacity { live, max } => {
                write!(f, "live-session limit reached ({live}/{max})")
            }
            ServiceError::UnknownSession(id) => write!(f, "unknown {id}"),
            ServiceError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

/// A verifier front-end running many interleaved attestation sessions against
/// one shared measurement database and verification key.
///
/// # Example
///
/// ```
/// use lofat::service::{ServiceConfig, VerifierService};
/// use lofat::session::ProverSession;
/// use lofat::{EngineConfig, MeasurementDatabase, Prover, Verifier};
/// use lofat_crypto::DeviceKey;
/// use lofat_rv32::asm::assemble;
///
/// let program = assemble(
///     ".text\nmain:\n    li t0, 4\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ecall\n",
/// )?;
/// let key = DeviceKey::from_seed("fleet");
/// let mut prover = Prover::new(program.clone(), "demo", key.clone());
///
/// // Offline: build the reference database once.
/// let verifier = Verifier::new(program, "demo", key.verification_key())?;
/// let db = MeasurementDatabase::build(&verifier, EngineConfig::default(), vec![vec![]])?;
///
/// // Online: the service fronts provers without a simulator in the loop.
/// let mut service =
///     VerifierService::new(db, key.verification_key(), ServiceConfig::default());
/// let id = service.open_session(vec![])?;
/// let challenge_bytes = service.challenge_envelope(id)?.encode()?;
/// let evidence_bytes = ProverSession::new(&mut prover).handle_bytes(&challenge_bytes)?;
/// let verdict_bytes = service.handle_bytes(&evidence_bytes)?;
/// # let _ = verdict_bytes;
/// assert_eq!(service.stats().accepted, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct VerifierService {
    db: MeasurementDatabase,
    key: HmacVerifier,
    config: ServiceConfig,
    sessions: BTreeMap<SessionId, VerifierSession>,
    /// Sessions (and therefore nonces) issued so far: session `n` carries
    /// `Nonce::from_counter(n)`, so replay detection needs no cache — a nonce
    /// is consumed iff it was issued and its session is no longer live.
    next_session: u64,
    now_cycles: u64,
    stats: ServiceStats,
}

impl VerifierService {
    /// Creates a service over a prebuilt measurement database and the fleet's
    /// verification key.
    pub fn new(db: MeasurementDatabase, key: VerificationKey, config: ServiceConfig) -> Self {
        Self {
            db,
            key: HmacVerifier::new(key),
            config,
            sessions: BTreeMap::new(),
            next_session: 0,
            now_cycles: 0,
            stats: ServiceStats::default(),
        }
    }

    /// The program this service attests.
    pub fn program_id(&self) -> &str {
        self.db.program_id()
    }

    /// The service-local cycle clock.
    pub fn now_cycles(&self) -> u64 {
        self.now_cycles
    }

    /// Advances the service clock (deadlines are measured against it).
    pub fn advance_clock(&mut self, cycles: u64) {
        self.now_cycles = self.now_cycles.saturating_add(cycles);
    }

    /// Number of sessions currently awaiting evidence.  Decided and expired
    /// sessions are evicted eagerly (their nonces stay permanently consumed),
    /// so this — and the [`ServiceConfig::max_live_sessions`] bound — tracks
    /// outstanding work only.
    pub fn live_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Service-level statistics.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Looks up a held session.
    pub fn session(&self, id: SessionId) -> Option<&VerifierSession> {
        self.sessions.get(&id)
    }

    /// Opens a session for `input`, returning its id.  The challenge nonce is
    /// unique across the service lifetime (single-use by construction).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownInput`] when no reference measurement
    /// exists for `input` and [`ServiceError::AtCapacity`] at the live-session
    /// limit.
    pub fn open_session(&mut self, input: Vec<u32>) -> Result<SessionId, ServiceError> {
        if self.db.reference(&input).is_none() {
            return Err(ServiceError::UnknownInput { input });
        }
        if self.sessions.len() >= self.config.max_live_sessions {
            // Capacity pressure triggers a sweep, so abandoned challenges
            // (provers that never answered) can never wedge the service even
            // if the embedder forgets to call `expire_stale` itself.
            self.expire_stale();
        }
        if self.sessions.len() >= self.config.max_live_sessions {
            return Err(ServiceError::AtCapacity {
                live: self.sessions.len(),
                max: self.config.max_live_sessions,
            });
        }
        self.next_session += 1;
        let id = SessionId(self.next_session);
        let challenge = Challenge {
            program_id: self.db.program_id().to_string(),
            input,
            // Session `n` always carries nonce `n` — the pairing the derived
            // replay check in `nonce_consumed` relies on.
            nonce: Nonce::from_counter(self.next_session),
        };
        let deadline = self.now_cycles.saturating_add(self.config.session_deadline_cycles);
        self.sessions.insert(id, VerifierSession::new(id, challenge, deadline));
        self.stats.sessions_opened += 1;
        Ok(id)
    }

    /// The challenge envelope for an open session.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownSession`] for unknown ids.
    pub fn challenge_envelope(&self, id: SessionId) -> Result<Envelope, ServiceError> {
        self.sessions
            .get(&id)
            .map(VerifierSession::challenge_envelope)
            .ok_or(ServiceError::UnknownSession(id))
    }

    /// Removes expired sessions (all held sessions are awaiting evidence —
    /// decided ones are evicted at decision time), returning how many were
    /// swept; each counts as [`ServiceStats::expired`].
    pub fn expire_stale(&mut self) -> usize {
        let now = self.now_cycles;
        let stale: Vec<SessionId> = self
            .sessions
            .iter()
            .filter(|(_, s)| now > s.deadline_cycles())
            .map(|(id, _)| *id)
            .collect();
        let expired = stale.len();
        for id in stale {
            // The challenge nonce can never be answered again.
            self.evict_session(id);
            self.stats.expired += 1;
        }
        expired
    }

    /// Judges one evidence envelope and returns the verdict.  Infallible by
    /// design: every failure mode maps to a rejecting [`VerdictMsg`] with a
    /// stable [`code`], and the statistics are updated either way.
    pub fn submit_evidence(&mut self, envelope: &Envelope) -> VerdictMsg {
        let verdict = self.judge(envelope);
        match verdict.reason_code {
            code::ACCEPTED => self.stats.accepted += 1,
            // Expiry is its own lifecycle category (consistent with
            // `expire_stale`, which produces no verdict): it does not also
            // count as a rejection, so accepted + rejected + expired
            // reconciles with decided sessions.
            code::SESSION_EXPIRED => self.stats.expired += 1,
            code::SESSION_DECIDED | code::NONCE_REPLAYED => {
                self.stats.replays_blocked += 1;
                self.stats.record_rejection(verdict.reason_code);
            }
            _ => self.stats.record_rejection(verdict.reason_code),
        }
        verdict
    }

    /// Batch entry point: judges evidence envelopes in order and returns the
    /// verdicts in the same order.
    pub fn verify_evidence<'a>(
        &mut self,
        envelopes: impl IntoIterator<Item = &'a Envelope>,
    ) -> Vec<VerdictMsg> {
        envelopes.into_iter().map(|envelope| self.submit_evidence(envelope)).collect()
    }

    /// Fully sans-I/O surface: request bytes in, verdict-envelope bytes out.
    /// Malformed requests yield a rejecting verdict addressed to session 0
    /// rather than an error.
    ///
    /// # Errors
    ///
    /// Only fails if the *outgoing* verdict envelope cannot be encoded, which
    /// would be a bug, not an input property.
    pub fn handle_bytes(&mut self, bytes: &[u8]) -> Result<Vec<u8>, ServiceError> {
        let (session, verdict) = match Envelope::decode(bytes) {
            Ok(envelope) => {
                let verdict = self.submit_evidence(&envelope);
                (envelope.session, verdict)
            }
            Err(wire_error) => {
                self.stats.wire_errors += 1;
                self.stats.record_rejection(wire_error.code());
                (SessionId(0), VerdictMsg::rejected(wire_error.code(), wire_error.to_string()))
            }
        };
        Envelope::new(session, Message::Verdict(verdict)).encode().map_err(ServiceError::Wire)
    }

    /// The verification pipeline for one envelope.  Does not touch the
    /// statistics; [`VerifierService::submit_evidence`] does.
    fn judge(&mut self, envelope: &Envelope) -> VerdictMsg {
        let id = envelope.session;
        let Some(session) = self.sessions.get(&id) else {
            // Decided sessions are evicted eagerly, so a replayed envelope
            // usually lands here: report it as the replay it is.
            if let Message::Evidence(evidence) = &envelope.message {
                if self.nonce_consumed(&evidence.report.nonce) {
                    return VerdictMsg::rejected(
                        code::NONCE_REPLAYED,
                        format!(
                            "nonce {} is spent: its session already reached a verdict or expired",
                            evidence.report.nonce
                        ),
                    );
                }
            }
            return VerdictMsg::rejected(code::UNKNOWN_SESSION, format!("unknown {id}"));
        };
        let evidence = match session.accept_evidence(envelope, self.now_cycles) {
            Ok(evidence) => evidence,
            Err(e) => {
                let verdict = VerdictMsg::rejected(e.code(), e.to_string());
                if matches!(e, SessionError::Expired { .. }) {
                    self.evict_session(id);
                }
                return verdict;
            }
        };
        let report = &evidence.report;

        // The three checks below reject *without* spending the session:
        // anyone can address garbage (or replayed) evidence at a live session
        // id, and an unauthenticated failure must not let them lock the
        // honest prover out.  The session is only spent by evidence that is
        // signed under the fleet key *and* bound to this session's nonce.

        // Cross-session replay: a nonce consumed by any decided/expired
        // session can never be accepted again, no matter where it is sent.
        if self.nonce_consumed(&report.nonce) {
            return VerdictMsg::rejected(
                code::NONCE_REPLAYED,
                format!(
                    "nonce {} is spent: its session already reached a verdict or expired",
                    report.nonce
                ),
            );
        }

        // Per-session nonce binding (evidence routed to the wrong session).
        if report.nonce != session.nonce() {
            return VerdictMsg::rejected(
                RejectionReason::NonceMismatch.code(),
                RejectionReason::NonceMismatch.to_string(),
            );
        }

        // Authenticity.
        if self.key.verify(&report.payload(), &report.signature).is_err() {
            return VerdictMsg::rejected(
                RejectionReason::BadSignature.code(),
                RejectionReason::BadSignature.to_string(),
            );
        }

        // Measurement comparison: [`MeasurementDatabase::check`] is the one
        // implementation of the reference comparison.
        let input = &session.challenge().input;
        let verdict = match self.db.check(input, report) {
            Ok(reference) => VerdictMsg::accepted(Some(reference.expected_result)),
            Err(LofatError::Rejected(reason)) => {
                VerdictMsg::rejected(reason.code(), reason.to_string())
            }
            Err(other) => VerdictMsg::rejected(code::UNKNOWN_INPUT, other.to_string()),
        };
        // Authenticated decision: the session is spent.  Evicting (rather
        // than keeping a Decided tombstone) keeps the session map bounded by
        // *outstanding* work, so decided sessions never count against
        // `max_live_sessions`; `nonce_consumed` still blocks replays.
        self.sessions.remove(&id);
        verdict
    }

    /// Removes an expired session; its nonce stays consumed by construction.
    fn evict_session(&mut self, id: SessionId) {
        self.sessions.remove(&id);
    }

    /// Replay check with O(1) memory: session `n` carries
    /// `Nonce::from_counter(n)`, so a nonce is consumed iff it was issued
    /// (its counter is in `1..=next_session`, and the bytes match exactly)
    /// and its session has been decided or expired (no longer live).
    fn nonce_consumed(&self, nonce: &Nonce) -> bool {
        let counter = u64::from_le_bytes(nonce.as_bytes()[..8].try_into().expect("8 bytes"));
        counter >= 1
            && counter <= self.next_session
            && Nonce::from_counter(counter) == *nonce
            && !self.sessions.contains_key(&SessionId(counter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::prover::Prover;
    use crate::session::ProverSession;
    use crate::verifier::Verifier;
    use lofat_crypto::DeviceKey;
    use lofat_rv32::asm::assemble;

    const PROGRAM: &str = r#"
        .data
        input:
            .space 8
        .text
        main:
            la   t0, input
            lw   t1, 0(t0)
            li   a0, 0
            beqz t1, done
        loop:
            addi a0, a0, 3
            addi t1, t1, -1
            bnez t1, loop
        done:
            ecall
    "#;

    fn setup(inputs: impl IntoIterator<Item = Vec<u32>>) -> (VerifierService, Prover) {
        let program = assemble(PROGRAM).unwrap();
        let key = DeviceKey::from_seed("svc-device");
        let prover = Prover::new(program.clone(), "triple", key.clone());
        let verifier = Verifier::new(program, "triple", key.verification_key()).unwrap();
        let db = MeasurementDatabase::build(&verifier, EngineConfig::default(), inputs).unwrap();
        let service = VerifierService::new(db, key.verification_key(), ServiceConfig::default());
        (service, prover)
    }

    fn evidence_for(service: &VerifierService, prover: &mut Prover, id: SessionId) -> Envelope {
        let challenge = service.challenge_envelope(id).unwrap();
        let (evidence, _run) = ProverSession::new(prover).respond(&challenge).unwrap();
        evidence
    }

    #[test]
    fn honest_sessions_are_accepted() {
        let (mut service, mut prover) = setup(vec![vec![2], vec![3]]);
        let a = service.open_session(vec![2]).unwrap();
        let b = service.open_session(vec![3]).unwrap();
        let ev_a = evidence_for(&service, &mut prover, a);
        let ev_b = evidence_for(&service, &mut prover, b);
        // Interleaved: answer b first.
        let verdicts = service.verify_evidence([&ev_b, &ev_a]);
        assert!(verdicts.iter().all(|v| v.accepted), "{verdicts:?}");
        assert_eq!(verdicts[0].expected_result, Some(9));
        assert_eq!(verdicts[1].expected_result, Some(6));
        assert_eq!(service.stats().accepted, 2);
    }

    #[test]
    fn unknown_inputs_cannot_open_sessions() {
        let (mut service, _) = setup(vec![vec![1]]);
        let err = service.open_session(vec![9]).unwrap_err();
        assert!(matches!(err, ServiceError::UnknownInput { .. }));
    }

    #[test]
    fn capacity_is_enforced() {
        let (mut service, _) = setup(vec![vec![1]]);
        service.config.max_live_sessions = 2;
        service.open_session(vec![1]).unwrap();
        service.open_session(vec![1]).unwrap();
        let err = service.open_session(vec![1]).unwrap_err();
        assert!(matches!(err, ServiceError::AtCapacity { live: 2, max: 2 }));
    }

    #[test]
    fn capacity_pressure_sweeps_expired_sessions() {
        let (mut service, _) = setup(vec![vec![1]]);
        service.config.max_live_sessions = 2;
        service.config.session_deadline_cycles = 10;
        service.open_session(vec![1]).unwrap();
        service.open_session(vec![1]).unwrap();
        service.advance_clock(11);
        // At capacity, but both sessions are stale: open_session sweeps them
        // instead of wedging on AtCapacity.
        assert!(service.open_session(vec![1]).is_ok());
        assert_eq!(service.stats().expired, 2);
        assert_eq!(service.live_sessions(), 1);
    }

    #[test]
    fn malformed_bytes_yield_a_verdict_not_a_panic() {
        let (mut service, _) = setup(vec![vec![1]]);
        let reply = service.handle_bytes(b"garbage").unwrap();
        let envelope = Envelope::decode(&reply).unwrap();
        let Message::Verdict(v) = envelope.message else { panic!("expected verdict") };
        assert!(!v.accepted);
        assert_eq!(v.reason_code, code::MALFORMED);
        assert_eq!(service.stats().wire_errors, 1);
    }

    #[test]
    fn expired_sessions_are_swept() {
        let (mut service, _) = setup(vec![vec![1]]);
        service.config.session_deadline_cycles = 10;
        let _id = service.open_session(vec![1]).unwrap();
        assert_eq!(service.expire_stale(), 0);
        service.advance_clock(11);
        assert_eq!(service.expire_stale(), 1);
        assert_eq!(service.live_sessions(), 0);
        assert_eq!(service.stats().expired, 1);
    }
}
